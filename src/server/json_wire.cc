#include "server/json_wire.h"

#include <cmath>
#include <string>

namespace subdex {

namespace {

Status BadField(std::string_view what, const char* requirement) {
  return Status::InvalidArgument("'" + std::string(what) + "' " +
                                 requirement);
}

}  // namespace

Result<double> WireNumber(const JsonValue& value, std::string_view what) {
  if (!value.is_number()) return BadField(what, "must be a number");
  const double d = value.number();
  if (!std::isfinite(d)) return BadField(what, "must be a finite number");
  return d;
}

Result<size_t> WireIndex(const JsonValue& value, std::string_view what) {
  Result<double> number = WireNumber(value, what);
  if (!number.ok()) return number.status();
  const double d = number.value();
  if (!(d >= 0) || d != std::floor(d)) {
    return BadField(what, "must be a non-negative integer");
  }
  if (d > kWireMaxCount) return BadField(what, "is implausibly large");
  return static_cast<size_t>(d);
}

Status WireCountField(const JsonValue& obj, std::string_view key,
                      size_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  Result<size_t> index = WireIndex(*v, key);
  if (!index.ok()) return index.status();
  *out = index.value();
  return Status::Ok();
}

Status WireMsField(const JsonValue& obj, std::string_view key, double* out,
                   WireSign sign) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  Result<double> number = WireNumber(*v, key);
  if (!number.ok()) return number.status();
  const double d = number.value();
  if (sign == WireSign::kPositive ? !(d > 0) : !(d >= 0)) {
    return BadField(key, sign == WireSign::kPositive
                             ? "must be a positive number"
                             : "must be a non-negative number");
  }
  *out = d;
  return Status::Ok();
}

}  // namespace subdex
