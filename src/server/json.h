#ifndef SUBDEX_SERVER_JSON_H_
#define SUBDEX_SERVER_JSON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace subdex {

/// A JSON document node — the wire format of subdexd's request and
/// response bodies. Self-contained (no third-party dependency): the
/// server's API surface is small and fully specified, so a strict,
/// ~300-line recursive-descent parser beats vendoring a JSON library the
/// build image does not carry.
///
/// Objects preserve insertion order (responses render deterministically);
/// duplicate keys are rejected at parse time. Numbers are doubles, like
/// JavaScript's — the API's integers (counts, indexes) all fit a double
/// exactly.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Enforces a nesting-depth cap so adversarial bodies cannot
  /// overflow the stack.
  SUBDEX_MUST_USE_RESULT static Result<JsonValue> Parse(std::string_view text);

  SUBDEX_NODISCARD Kind kind() const { return kind_; }
  SUBDEX_NODISCARD bool is_null() const { return kind_ == Kind::kNull; }
  SUBDEX_NODISCARD bool is_bool() const { return kind_ == Kind::kBool; }
  SUBDEX_NODISCARD bool is_number() const { return kind_ == Kind::kNumber; }
  SUBDEX_NODISCARD bool is_string() const { return kind_ == Kind::kString; }
  SUBDEX_NODISCARD bool is_array() const { return kind_ == Kind::kArray; }
  SUBDEX_NODISCARD bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one returns the type's zero value
  /// (the server validates kinds before reading, and a zero beats UB on a
  /// missed check).
  SUBDEX_NODISCARD bool bool_value() const { return is_bool() && bool_; }
  SUBDEX_NODISCARD double number() const { return is_number() ? number_ : 0.0; }
  SUBDEX_NODISCARD const std::string& str() const { return string_; }

  SUBDEX_NODISCARD const std::vector<JsonValue>& items() const {
    return items_;
  }
  SUBDEX_NODISCARD
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object lookup; null when absent (or not an object).
  SUBDEX_NODISCARD const JsonValue* Find(std::string_view key) const;

  /// Object insertion (replaces an existing key). No-op on non-objects.
  void Set(std::string key, JsonValue value);
  /// Array append. No-op on non-arrays.
  void Append(JsonValue value);

  /// Compact serialization (no insignificant whitespace). Numbers render
  /// as the shortest decimal that parses back to the same double, so
  /// Parse(Dump(v)) is the identity on every value the server emits.
  SUBDEX_NODISCARD std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace subdex

#endif  // SUBDEX_SERVER_JSON_H_
