#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

// POLLRDHUP (peer closed its write side) is a Linux extension; without it
// the watcher still catches full closes via the always-reported POLLHUP.
#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/metrics.h"
#include "util/string_util.h"

namespace subdex {

namespace {

struct HttpMetrics {
  Counter& requests;
  Counter& shed;
  Counter& disconnects;
  Counter& parse_errors;
  Gauge& queue_depth;
  Histogram& latency_ms;

  static HttpMetrics& Get() {
    static HttpMetrics m{
        MetricsRegistry::Global().GetCounter(
            "subdex_server_requests_total",
            "HTTP requests parsed and dispatched to a handler"),
        MetricsRegistry::Global().GetCounter(
            "subdex_server_shed_total",
            "Connections shed with 429 because the request queue was full"),
        MetricsRegistry::Global().GetCounter(
            "subdex_server_disconnects_total",
            "In-flight requests whose client hung up (cancellation tripped)"),
        MetricsRegistry::Global().GetCounter(
            "subdex_server_parse_errors_total",
            "Connections closed with a 4xx before reaching a handler"),
        MetricsRegistry::Global().GetGauge(
            "subdex_server_queue_depth",
            "Accepted connections waiting for a worker"),
        MetricsRegistry::Global().GetHistogram(
            "subdex_server_request_latency_ms",
            MetricsRegistry::LatencyBucketsMs(),
            "Wall-clock handler latency per request"),
    };
    return m;
  }
};

// Every accepted fd gets SO_SNDTIMEO in SetSocketTimeouts, so a stalled
// peer times the send out — it cannot hang the worker.
// lint: unbounded(send is bounded by the socket SO_SNDTIMEO)
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone or stalled past the socket timeout
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     HttpStatusReason(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    head += name + ": " + value + "\r\n";
  }
  head += "Connection: close\r\n\r\n";
  if (SendAll(fd, head)) {
    // Discard justified: the client may already be gone; response delivery
    // is best-effort and the connection closes either way.
    (void)SendAll(fd, response.body);
  }
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  // Discard justified: a failed setsockopt only loses the stall guard;
  // the connection still works and the worker is bounded by peer behavior.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Reads and parses one request off `fd`. Returns true on success; on
/// failure `*error_status` is the 4xx to answer with, or 0 when the
/// connection should close silently (peer vanished before sending one).
// The body derives a wall-clock deadline from request_read_deadline_ms
// and clamps SO_RCVTIMEO before every recv, so the read budget is capped.
// lint: unbounded(bounded by options.request_read_deadline_ms)
bool ReadRequest(int fd, const HttpServer::Options& options,
                 HttpRequest* request, int* error_status) {
  *error_status = 0;
  std::string buffer;
  size_t header_end = std::string::npos;
  char chunk[4096];
  // Total read budget: each recv is individually bounded by the socket
  // timeout, but a trickling peer (a byte per second) would pass every
  // per-recv check forever. Clamp the remaining budget onto SO_RCVTIMEO
  // before each recv so the last one cannot overshoot the deadline.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::milliseconds(options.request_read_deadline_ms);
  auto recv_some = [fd, &options, deadline](char* buf, size_t cap) {
    for (;;) {
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now())
              .count();
      if (remaining_ms <= 0) {
        errno = EAGAIN;  // deadline spent: report as a timeout
        return static_cast<ssize_t>(-1);
      }
      if (remaining_ms < options.socket_timeout_ms) {
        SetSocketTimeouts(fd, static_cast<int>(remaining_ms));
      }
      ssize_t n = ::recv(fd, buf, cap, 0);
      if (n < 0 && errno == EINTR) continue;
      return n;
    }
  };
  while (header_end == std::string::npos) {
    ssize_t n = recv_some(chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) *error_status = 408;
      return false;
    }
    if (n == 0) return false;  // clean close before a full request
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (header_end == std::string::npos &&
        buffer.size() > options.max_header_bytes) {
      *error_status = 431;
      return false;
    }
  }

  // Request line: METHOD SP target SP HTTP/1.x
  size_t line_end = buffer.find("\r\n");
  std::string_view line(buffer.data(), line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1 ||
      line.substr(sp2 + 1).substr(0, 7) != "HTTP/1.") {
    *error_status = 400;
    return false;
  }
  request->method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Query strings are not part of the subdexd API; split them off so
  // routing sees a clean path.
  request->target = std::string(target.substr(0, target.find('?')));
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    *error_status = 400;
    return false;
  }

  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = buffer.find("\r\n", pos);
    std::string_view header(buffer.data() + pos, eol - pos);
    pos = eol + 2;
    size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      *error_status = 400;
      return false;
    }
    request->headers.emplace_back(ToLower(header.substr(0, colon)),
                                  std::string(Trim(header.substr(colon + 1))));
  }

  size_t content_length = 0;
  if (const std::string* value = request->Header("content-length")) {
    int parsed = 0;
    if (!ParseInt(*value, &parsed) || parsed < 0) {
      *error_status = 400;
      return false;
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > options.max_body_bytes) {
    *error_status = 413;
    return false;
  }

  request->body = buffer.substr(header_end + 4);
  while (request->body.size() < content_length) {
    ssize_t n = recv_some(chunk, sizeof(chunk));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *error_status = 408;  // deadline spent mid-body
      return false;
    }
    if (n <= 0) {
      *error_status = 400;  // promised body never arrived
      return false;
    }
    request->body.append(chunk, static_cast<size_t>(n));
  }
  request->body.resize(content_length);
  return true;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  return HttpResponse::Json(
      status, "{\"error\":\"" + message + "\"}");
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain; version=0.0.4";
  r.body = std::move(body);
  return r;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  int one = 1;
  // Discard justified: REUSEADDR is an optimization for quick restarts;
  // bind reports the fatal cases either way.
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid listen host '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("cannot listen on " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  started_ = true;
  threads_.emplace_back([this] { AcceptLoop(); });
  for (size_t i = 0; i < options_.num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  threads_.emplace_back([this] { WatchLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!started_) return;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  {
    MutexLock lock(watch_mu_);
    watch_stopping_ = true;
  }
  watch_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  // Queued but unserved connections get an explicit 503 instead of a
  // silent RST, so clients know to retry elsewhere/later.
  std::deque<int> leftover;
  {
    MutexLock lock(mu_);
    leftover.swap(queue_);
  }
  for (int fd : leftover) {
    // Like the 429 shed path, the shutdown 503 advertises when to retry —
    // restarts are quick, and clients distinguish "come back" from "gone".
    HttpResponse response = ErrorResponse(503, "server shutting down");
    response.extra_headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_seconds));
    WriteResponse(fd, response);
    ::close(fd);
  }
  HttpMetrics::Get().queue_depth.Set(0);

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// Lifecycle loop: every round is one 50ms poll followed by a stopping_
// re-check, and accept4 only runs on a POLLIN-ready listener.
// lint: unbounded(50ms poll rounds with a stopping_ re-check each round)
void HttpServer::AcceptLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    pollfd p{listen_fd_, POLLIN, 0};
    int ready = ::poll(&p, 1, 50);
    if (ready <= 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    SetSocketTimeouts(fd, options_.socket_timeout_ms);

    bool shed = false;
    {
      MutexLock lock(mu_);
      if (stopping_) {
        shed = true;  // answered below; the 429 doubles as "going away"
      } else if (queue_.size() >= options_.queue_capacity) {
        shed = true;
      } else {
        queue_.push_back(fd);
        HttpMetrics::Get().queue_depth.Set(
            static_cast<int64_t>(queue_.size()));
      }
    }
    if (shed) {
      HttpMetrics::Get().shed.Increment();
      HttpResponse response =
          ErrorResponse(429, "request queue full, retry later");
      response.extra_headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
      WriteResponse(fd, response);
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

// Workers park until work arrives by design; Stop sets stopping_ under
// mu_ and broadcasts queue_cv_, so shutdown always wakes them.
// lint: unbounded(parked until work or shutdown; Stop broadcasts the cv)
void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) lock.WaitOnce(queue_cv_);
      if (stopping_) return;  // leftovers get 503 from Stop()
      fd = queue_.front();
      queue_.pop_front();
      HttpMetrics::Get().queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  HttpRequest request;
  int error_status = 0;
  if (!ReadRequest(fd, options_, &request, &error_status)) {
    if (error_status != 0) {
      HttpMetrics::Get().parse_errors.Increment();
      WriteResponse(fd, ErrorResponse(error_status, "malformed request"));
    }
    ::close(fd);
    return;
  }
  HttpMetrics::Get().requests.Increment();

  CancellationToken disconnect;
  {
    MutexLock lock(watch_mu_);
    watches_.push_back(Watch{fd, disconnect});
  }
  const auto start = std::chrono::steady_clock::now();
  HttpResponse response = handler_(request, disconnect);
  HttpMetrics::Get().latency_ms.Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
  {
    // Unregister before closing, so the watcher never polls a recycled fd.
    MutexLock lock(watch_mu_);
    for (size_t i = 0; i < watches_.size(); ++i) {
      if (watches_[i].fd == fd) {
        watches_[i] = watches_.back();
        watches_.pop_back();
        break;
      }
    }
  }
  if (disconnect.cancelled()) HttpMetrics::Get().disconnects.Increment();
  WriteResponse(fd, response);
  ::close(fd);
}

void HttpServer::WatchLoop() {
  MutexLock lock(watch_mu_);
  while (!watch_stopping_) {
    // Discard justified: both wakeup reasons (timeout tick, stop notify)
    // re-evaluate the same state below.
    (void)lock.WaitOnceFor(
        watch_cv_, std::chrono::milliseconds(options_.watch_interval_ms));
    if (watch_stopping_) return;
    if (watches_.empty()) continue;
    std::vector<pollfd> fds;
    fds.reserve(watches_.size());
    for (const Watch& w : watches_) {
      fds.push_back(pollfd{w.fd, POLLRDHUP, 0});
    }
    // Non-blocking sweep (timeout 0) under the lock: watches_ cannot
    // change between building fds and reading revents.
    // lock-lint: nonblocking — poll with timeout 0 returns immediately.
    // lint: unbounded(poll with timeout 0 never blocks)
    if (::poll(fds.data(), fds.size(), 0) <= 0) continue;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLRDHUP | POLLHUP | POLLERR)) {
        watches_[i].token.RequestCancel();
      }
    }
  }
}

}  // namespace subdex
