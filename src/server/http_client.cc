#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace subdex {

namespace {

/// RAII socket: every early return below must close the fd.
class OwnedFd {
 public:
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() {
    if (fd_ >= 0) close(fd_);
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

const std::string* HttpClientResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

Result<HttpClientResponse> HttpFetch(const HttpClientOptions& options,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type) {
  OwnedFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) return ErrnoStatus("socket");

  timeval timeout = {};
  timeout.tv_sec = options.timeout_ms / 1000;
  timeout.tv_usec = (options.timeout_ms % 1000) * 1000;
  // Discard justified: setting a socket timeout can only fail on a bad fd
  // or bad option, both impossible here; a missing timeout degrades to
  // blocking reads, which the caller's own deadline still bounds.
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout));
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &timeout,
                   sizeof(timeout));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("http client: host must be an IPv4 "
                                   "literal, got '" +
                                   options.host + "'");
  }
  if (connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    return ErrnoStatus("connect " + options.host + ":" +
                       std::to_string(options.port));
  }

  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " +
                        options.host + "\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: " + content_type + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd.get(), request.data() + sent, request.size() - sent,
                     MSG_NOSIGNAL);
    if (n <= 0) return ErrnoStatus("send");
    sent += static_cast<size_t>(n);
  }

  std::string text;
  char buf[4096];
  for (;;) {
    ssize_t n = recv(fd.get(), buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      // A server that sheds (429/503) answers and closes without draining
      // the request, so the close carries RST and this recv fails even
      // though the full response already arrived. Treat an error after
      // data as end-of-stream — the parse below still rejects a response
      // the RST actually truncated mid-head.
      if (!text.empty()) break;
      return ErrnoStatus("recv");
    }
    text.append(buf, static_cast<size_t>(n));
  }

  // Parse "HTTP/1.1 NNN reason\r\n" + headers + "\r\n\r\n" + body.
  if (text.rfind("HTTP/1.1 ", 0) != 0 || text.size() < 12) {
    return Status::IoError("http client: malformed status line");
  }
  HttpClientResponse out;
  int parsed_status = 0;
  if (!ParseInt(text.substr(9, 3), &parsed_status)) {
    return Status::IoError("http client: unparseable status code");
  }
  out.status = parsed_status;
  const size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("http client: truncated response head");
  }
  size_t line_start = text.find("\r\n") + 2;
  while (line_start < head_end) {
    size_t line_end = text.find("\r\n", line_start);
    const std::string_view line(text.data() + line_start,
                                line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      out.headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                               std::string(Trim(line.substr(colon + 1))));
    }
    line_start = line_end + 2;
  }
  out.body = text.substr(head_end + 4);
  return out;
}

}  // namespace subdex
