#ifndef SUBDEX_SERVER_JSON_WIRE_H_
#define SUBDEX_SERVER_JSON_WIRE_H_

/// Bounds-checked readers for numbers arriving over the wire.
///
/// A JSON number in a request body is attacker-controlled: used raw as a
/// size, index, or allocation count it is a remote allocation / OOB
/// primitive (a `"k": 1e300` must die at the parse boundary, not inside a
/// resize). This header is the funnel those values must flow through —
/// subdex-lint rule L3 bans `JsonValue::number()` everywhere else in
/// src/server/ and src/loadgen/, so every raw read outside these
/// functions is a lint failure, not a review judgement call.
///
/// All readers reject non-numbers, NaN/infinity, and out-of-range values
/// with an InvalidArgument whose message names the offending field; the
/// keyed `Wire*Field` forms treat an absent key as "keep the default" and
/// leave `*out` untouched.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "server/json.h"
#include "util/status.h"

namespace subdex {

/// Largest count the wire may name. Well under 2^53 (every integer below
/// it is exact in a double) and far above any legitimate knob, so the cap
/// rejects only garbage, never a real workload.
inline constexpr double kWireMaxCount = 1e15;

/// A finite number. `what` names the field for the error message.
SUBDEX_NODISCARD Result<double> WireNumber(const JsonValue& value,
                                           std::string_view what);

/// A non-negative integer usable as a container index or element count:
/// finite, integral, in [0, kWireMaxCount].
SUBDEX_NODISCARD Result<size_t> WireIndex(const JsonValue& value,
                                          std::string_view what);

/// A count knob: optional `key` on `obj`; absent leaves `*out` untouched,
/// present must satisfy the WireIndex contract.
SUBDEX_NODISCARD Status WireCountField(const JsonValue& obj,
                                       std::string_view key, size_t* out);

/// A millisecond duration: optional `key` on `obj`; absent leaves `*out`
/// untouched, present must be finite and >= 0 — or > 0 under kPositive
/// (deadlines: a zero deadline is always already expired, so it is a
/// caller bug, not a short budget).
enum class WireSign { kNonNegative, kPositive };
SUBDEX_NODISCARD Status WireMsField(const JsonValue& obj,
                                    std::string_view key, double* out,
                                    WireSign sign = WireSign::kNonNegative);

}  // namespace subdex

#endif  // SUBDEX_SERVER_JSON_WIRE_H_
