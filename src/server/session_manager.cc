#include "server/session_manager.h"

#include <algorithm>
#include <vector>

#include "util/metrics.h"

namespace subdex {

namespace {

struct SessionMetrics {
  Counter& created;
  Counter& removed;
  Counter& reaped;
  Gauge& active;

  static SessionMetrics& Get() {
    static SessionMetrics m{
        MetricsRegistry::Global().GetCounter(
            "subdex_server_sessions_created_total",
            "Exploration sessions created"),
        MetricsRegistry::Global().GetCounter(
            "subdex_server_sessions_removed_total",
            "Sessions removed by explicit DELETE"),
        MetricsRegistry::Global().GetCounter(
            "subdex_server_sessions_reaped_total",
            "Sessions expired by the TTL reaper"),
        MetricsRegistry::Global().GetGauge("subdex_server_sessions_active",
                                           "Live exploration sessions"),
    };
    return m;
  }
};

// SplitMix64 finalizer: turns the sequential session counter into an
// opaque-looking (but deterministic) id suffix, so ids don't read as an
// invitation to guess neighboring sessions while tests stay reproducible.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string HexSuffix(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

void ServerSession::DiscardDurability() {
  if (journal == nullptr) return;
  // Discard justified: the session is already gone; a failed unlink only
  // means the next boot replays a deleted session's journal and finishes
  // the erase then.
  (void)journal->EraseFiles();
}

int64_t ServerSession::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SessionManager::SessionManager(Options options)
    : options_(std::move(options)) {}

SessionManager::~SessionManager() { Stop(); }

void SessionManager::Start() {
  if (reaper_running_) return;
  {
    MutexLock lock(reaper_mu_);
    reaper_stop_ = false;
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
  reaper_running_ = true;
}

void SessionManager::Stop() {
  if (!reaper_running_) return;
  {
    MutexLock lock(reaper_mu_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  reaper_.join();
  reaper_running_ = false;
}

namespace {

std::chrono::milliseconds ClampTtl(double ttl_ms,
                                   const SessionManager::Options& options) {
  std::chrono::milliseconds ttl =
      ttl_ms <= 0
          ? options.default_ttl
          : std::chrono::milliseconds(static_cast<int64_t>(ttl_ms));
  return std::max(std::chrono::milliseconds(1),
                  std::min(ttl, options.max_ttl));
}

}  // namespace

Result<std::shared_ptr<ServerSession>> SessionManager::Create(
    const std::string& dataset, std::shared_ptr<const SubjectiveDatabase> db,
    const EngineConfig& config, double ttl_ms, const SessionSetup& setup) {
  if (db == nullptr || !db->finalized()) {
    return Status::InvalidArgument("dataset is not finalized");
  }
  // Admission control at the session level: the cap bounds the number of
  // live engines (each owns caches and possibly a pool). The check-then-
  // increment is racy only in the benign direction of a brief overshoot
  // by at most the number of concurrent creates.
  if (active_.load(std::memory_order_relaxed) >= options_.max_sessions) {
    return Status::FailedPrecondition(
        "session capacity reached (" +
        std::to_string(options_.max_sessions) + "); retry later");
  }

  uint64_t serial = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto session = std::make_shared<ServerSession>();
  session->id = "s" + std::to_string(serial) + "-" + HexSuffix(MixId(serial));
  session->dataset = dataset;
  session->db = std::move(db);
  session->engine = std::make_unique<SdeEngine>(session->db.get(), config);
  session->ttl = ClampTtl(ttl_ms, options_);
  session->last_used_ms.store(ServerSession::NowMs(),
                              std::memory_order_relaxed);
  if (setup != nullptr) {
    // Attachments happen before publication: no request thread can see a
    // session whose journal pointer is still being written.
    Status status = setup(*session);
    if (!status.ok()) return status;
  }

  Shard& shard = shards_[ShardIndexOf(session->id)];
  {
    MutexLock lock(shard.mu);
    shard.sessions.emplace(session->id, session);
  }
  size_t active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  SessionMetrics::Get().created.Increment();
  SessionMetrics::Get().active.Set(static_cast<int64_t>(active));
  return session;
}

Result<std::shared_ptr<ServerSession>> SessionManager::Restore(
    const std::string& id, const std::string& dataset,
    std::shared_ptr<const SubjectiveDatabase> db, const EngineConfig& config,
    double ttl_ms) {
  if (db == nullptr || !db->finalized()) {
    return Status::InvalidArgument("dataset is not finalized");
  }
  if (active_.load(std::memory_order_relaxed) >= options_.max_sessions) {
    return Status::FailedPrecondition(
        "session capacity reached while recovering '" + id + "'");
  }
  // Ids are "s<serial>-<hex>"; push the counter past the recovered serial
  // so post-recovery creates never mint a colliding id. fetch-max via CAS
  // (recovery is single-threaded, but the counter itself is shared).
  if (id.size() > 1 && id[0] == 's') {
    uint64_t serial = 0;
    bool numeric = false;
    for (size_t i = 1; i < id.size() && id[i] != '-'; ++i) {
      if (id[i] < '0' || id[i] > '9') {
        numeric = false;
        break;
      }
      serial = serial * 10 + static_cast<uint64_t>(id[i] - '0');
      numeric = true;
    }
    if (numeric) {
      uint64_t current = next_id_.load(std::memory_order_relaxed);
      while (current < serial &&
             !next_id_.compare_exchange_weak(current, serial,
                                             std::memory_order_relaxed)) {
      }
    }
  }

  auto session = std::make_shared<ServerSession>();
  session->id = id;
  session->dataset = dataset;
  session->db = std::move(db);
  session->engine = std::make_unique<SdeEngine>(session->db.get(), config);
  session->ttl = ClampTtl(ttl_ms, options_);
  session->recovered = true;
  session->last_used_ms.store(ServerSession::NowMs(),
                              std::memory_order_relaxed);

  Shard& shard = shards_[ShardIndexOf(session->id)];
  {
    MutexLock lock(shard.mu);
    if (!shard.sessions.emplace(session->id, session).second) {
      return Status::InvalidArgument("session '" + id +
                                     "' already exists; duplicate journal?");
    }
  }
  size_t active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  SessionMetrics::Get().active.Set(static_cast<int64_t>(active));
  return session;
}

bool SessionManager::Expired(const ServerSession& session,
                             int64_t now_ms) const {
  if (session.in_flight.load(std::memory_order_acquire) > 0) return false;
  int64_t idle =
      now_ms - session.last_used_ms.load(std::memory_order_relaxed);
  return idle > session.ttl.count();
}

SessionLease SessionManager::Acquire(const std::string& id) {
  Shard& shard = shards_[ShardIndexOf(id)];
  std::shared_ptr<ServerSession> session;
  bool expired = false;
  {
    MutexLock lock(shard.mu);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return SessionLease();
    if (Expired(*it->second, ServerSession::NowMs())) {
      // Lazy expiry: precise TTL semantics even between reaper sweeps.
      session = std::move(it->second);
      shard.sessions.erase(it);
      expired = true;
    } else {
      session = it->second;
    }
  }
  if (expired) {
    size_t active = active_.fetch_sub(1, std::memory_order_relaxed) - 1;
    SessionMetrics::Get().reaped.Increment();
    SessionMetrics::Get().active.Set(static_cast<int64_t>(active));
    // Outside the shard lock: unlinking journal files is disk I/O.
    session->DiscardDurability();
    return SessionLease();
  }
  return SessionLease(std::move(session));
}

bool SessionManager::Remove(const std::string& id) {
  Shard& shard = shards_[ShardIndexOf(id)];
  {
    MutexLock lock(shard.mu);
    if (shard.sessions.erase(id) == 0) return false;
  }
  size_t active = active_.fetch_sub(1, std::memory_order_relaxed) - 1;
  SessionMetrics::Get().removed.Increment();
  SessionMetrics::Get().active.Set(static_cast<int64_t>(active));
  return true;
}

size_t SessionManager::ReapExpired() {
  const int64_t now = ServerSession::NowMs();
  size_t reaped = 0;
  for (Shard& shard : shards_) {
    // Collect victims under the shard lock, destroy engines outside it:
    // an engine teardown (pool join) must not block Acquire/Create on the
    // same shard.
    std::vector<std::shared_ptr<ServerSession>> victims;
    {
      MutexLock lock(shard.mu);
      for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
        if (Expired(*it->second, now)) {
          victims.push_back(std::move(it->second));
          it = shard.sessions.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const std::shared_ptr<ServerSession>& victim : victims) {
      victim->DiscardDurability();
    }
    reaped += victims.size();
  }
  if (reaped > 0) {
    size_t active =
        active_.fetch_sub(reaped, std::memory_order_relaxed) - reaped;
    SessionMetrics::Get().reaped.Increment(reaped);
    SessionMetrics::Get().active.Set(static_cast<int64_t>(active));
  }
  return reaped;
}

size_t SessionManager::ActiveCount() const {
  return active_.load(std::memory_order_relaxed);
}

void SessionManager::ReaperLoop() {
  const auto interval = std::chrono::milliseconds(
      std::max<int64_t>(1, options_.reap_interval.count()));
  for (;;) {
    {
      MutexLock lock(reaper_mu_);
      // Discard justified: timeout tick and stop notify both re-check
      // reaper_stop_; the sweep below runs on either wakeup.
      if (!reaper_stop_) (void)lock.WaitOnceFor(reaper_cv_, interval);
      if (reaper_stop_) return;
    }
    // reaper_mu_ is released before the sweep: "session.shard" is never
    // acquired under "session.reaper", keeping the two locks unordered in
    // the hierarchy (pinned by SessionManagerLockDiscipline in
    // server_test.cc, enforced by the armed-detector CI stage).
    // Discard justified: the sweep's count feeds metrics inside
    // ReapExpired; the loop itself has no use for it.
    (void)ReapExpired();
  }
}

}  // namespace subdex
