#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace subdex {

namespace {

// Deep enough for any legitimate subdexd body (the API nests at most ~4
// levels), shallow enough that the recursive parser can never exhaust a
// thread's stack on crafted input.
constexpr int kMaxDepth = 64;

// Same shortest-round-trip rendering contract as the metrics exporter's
// bucket bounds: the decimal must parse back to the identical double.
std::string FormatNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN literals
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Single-pass recursive-descent parser over the input span. Errors carry
/// the byte offset so clients can localize the problem in their body.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipSpace();
    Result<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Result<JsonValue> Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::Str(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (object.Find(key.value()) != nullptr) {
        return Error("duplicate object key '" + key.value() + "'");
      }
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipSpace();
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object.Set(std::move(key).value(), std::move(value).value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    for (;;) {
      SkipSpace();
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.Append(std::move(value).value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument(
            "JSON parse error: raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return Error("invalid \\u escape").status();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half and combine.
            unsigned low = 0;
            if (!(Consume('\\') && Consume('u') && ParseHex4(&low)) ||
                low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate in \\u escape").status();
            }
            unsigned cp =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            AppendUtf8(cp, &out);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate in \\u escape").status();
          } else {
            AppendUtf8(code, &out);
          }
          break;
        }
        default:
          return Error("invalid escape character").status();
      }
    }
    return Error("unterminated string").status();
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
      // fallthrough: digits validated below
    }
    size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) return Error("invalid number");
    // No leading zeros ("00", "01") per RFC 8259.
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      return Error("invalid number (leading zero)");
    }
    if (Consume('.')) {
      size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return Error("invalid number (empty fraction)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return Error("invalid number (empty exponent)");
    }
    std::string token(text_.substr(start, pos_ - start));
    return JsonValue::Number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) return;
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  if (kind_ != Kind::kArray) return;
  items_.push_back(std::move(value));
}

std::string JsonValue::Dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out = FormatNumber(number_);
      break;
    case Kind::kString:
      AppendEscaped(string_, &out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendEscaped(members_[i].first, &out);
        out.push_back(':');
        out += members_[i].second.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

}  // namespace subdex
