#include "server/session_journal.h"

#include <cstdint>
#include <filesystem>
#include <map>
#include <system_error>
#include <utility>

#include "util/fault_point.h"
#include "util/metrics.h"

namespace subdex {

namespace {

namespace fs = std::filesystem;

constexpr char kSegmentSuffix[] = ".sjl";
constexpr char kMirrorSuffix[] = ".log";

struct JournalMetrics {
  Counter& appends;
  Counter& write_failures;
  Counter& rotations;
  Counter& torn_tails;

  static JournalMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static JournalMetrics m{
        reg.GetCounter("subdex_journal_appends_total",
                       "Records appended to session journals"),
        reg.GetCounter("subdex_journal_write_failures_total",
                       "Journal append/fsync/rotate failures; each one "
                       "latches its session read-only"),
        reg.GetCounter("subdex_journal_rotations_total",
                       "Journal segment rotations"),
        reg.GetCounter("subdex_journal_torn_tails_total",
                       "Half-written final records truncated during "
                       "recovery"),
    };
    return m;
  }
};

/// "s12-ab34cd56.000007.sjl" -> ("s12-ab34cd56", 7). False when the name
/// is not a segment of any session (foreign files are skipped, not
/// errors: operators drop READMEs into data directories).
bool ParseSegmentName(const std::string& name, std::string* id,
                      uint64_t* seq) {
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= suffix_len ||
      name.compare(name.size() - suffix_len, suffix_len, kSegmentSuffix) !=
          0) {
    return false;
  }
  std::string stem = name.substr(0, name.size() - suffix_len);
  size_t dot = stem.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == stem.size()) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = dot + 1; i < stem.size(); ++i) {
    char c = stem[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = stem.substr(0, dot);
  *seq = value;
  return true;
}

}  // namespace

const char* JournalFsyncName(JournalFsync policy) {
  switch (policy) {
    case JournalFsync::kNever: return "never";
    case JournalFsync::kBatch: return "batch";
    case JournalFsync::kEveryRecord: return "every_record";
  }
  return "unknown";
}

bool ParseJournalFsync(std::string_view text, JournalFsync* out) {
  if (text == "never") {
    *out = JournalFsync::kNever;
  } else if (text == "batch") {
    *out = JournalFsync::kBatch;
  } else if (text == "every_record") {
    *out = JournalFsync::kEveryRecord;
  } else {
    return false;
  }
  return true;
}

std::string DigestToHex(uint64_t digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

bool HexToDigest(std::string_view hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t value = 0;
  for (char c : hex) {
    uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | nibble;
  }
  *out = value;
  return true;
}

JsonValue MakeCreateRecord(const std::string& dataset, double ttl_ms,
                           const EngineConfig& config) {
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("create"));
  record.Set("v", JsonValue::Number(1));
  record.Set("dataset", JsonValue::Str(dataset));
  record.Set("ttl_ms", JsonValue::Number(ttl_ms));
  // The resolved values of every client-overridable engine knob (the
  // server/server.cc allowlist): replay must rebuild the engine exactly
  // as the create request configured it, immune to later changes in the
  // server's template defaults.
  JsonValue knobs = JsonValue::Object();
  knobs.Set("k", JsonValue::Number(static_cast<double>(config.k)));
  knobs.Set("o", JsonValue::Number(static_cast<double>(config.o)));
  knobs.Set("l", JsonValue::Number(static_cast<double>(config.l)));
  knobs.Set("num_phases",
            JsonValue::Number(static_cast<double>(config.num_phases)));
  knobs.Set("num_threads",
            JsonValue::Number(static_cast<double>(config.num_threads)));
  knobs.Set("seed", JsonValue::Number(static_cast<double>(config.seed)));
  knobs.Set("min_group_size",
            JsonValue::Number(static_cast<double>(config.min_group_size)));
  knobs.Set("max_candidates",
            JsonValue::Number(
                static_cast<double>(config.operations.max_candidates)));
  knobs.Set("group_cache_capacity",
            JsonValue::Number(
                static_cast<double>(config.group_cache_capacity)));
  record.Set("config", std::move(knobs));
  return record;
}

JsonValue MakeStepRecord(const std::string& reviewers,
                         const std::string& items,
                         bool with_recommendations, bool degraded,
                         uint64_t digest) {
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("step"));
  record.Set("reviewers", JsonValue::Str(reviewers));
  record.Set("items", JsonValue::Str(items));
  record.Set("with_recommendations", JsonValue::Bool(with_recommendations));
  record.Set("degraded", JsonValue::Bool(degraded));
  record.Set("digest", JsonValue::Str(DigestToHex(digest)));
  return record;
}

JsonValue MakeResetRecord() {
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("reset"));
  return record;
}

JsonValue MakeDeleteRecord() {
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("delete"));
  return record;
}

std::string SessionJournal::MirrorPath(const JournalConfig& config,
                                       const std::string& session_id) {
  return config.dir + "/" + session_id + kMirrorSuffix;
}

std::string SessionJournal::SegmentPath(const JournalConfig& config,
                                        const std::string& session_id,
                                        uint64_t seq) {
  std::string number = std::to_string(seq);
  if (number.size() < 6) number.insert(0, 6 - number.size(), '0');
  return config.dir + "/" + session_id + "." + number + kSegmentSuffix;
}

Result<std::vector<SessionJournalReplay>> ScanJournalDir(
    const JournalConfig& config) {
  std::error_code ec;
  fs::directory_iterator it(config.dir, ec);
  if (ec) {
    return Status::IoError("cannot read journal dir '" + config.dir +
                           "': " + ec.message());
  }
  // id -> (seq -> path); std::map on both levels for deterministic
  // recovery order regardless of directory enumeration order.
  std::map<std::string, std::map<uint64_t, std::string>> sessions;
  for (const fs::directory_entry& entry : it) {
    std::string id;
    uint64_t seq = 0;
    if (!ParseSegmentName(entry.path().filename().string(), &id, &seq)) {
      continue;
    }
    sessions[id][seq] = entry.path().string();
  }

  std::vector<SessionJournalReplay> out;
  out.reserve(sessions.size());
  for (const auto& [id, segments] : sessions) {
    SessionJournalReplay replay;
    replay.session_id = id;
    replay.last_seq = segments.rbegin()->first;

    // Segments must run 1..last_seq with no holes: a missing middle
    // segment means missing committed records, which is corruption, not
    // a tail to shrug off.
    uint64_t expected = 1;
    for (const auto& [seq, path] : segments) {
      // Discard justified: contiguity check only; paths are read below.
      (void)path;
      if (seq != expected) {
        replay.status = Status::IoError(
            "journal for session '" + id + "' is missing segment " +
            std::to_string(expected));
        break;
      }
      ++expected;
    }

    for (const auto& [seq, path] : segments) {
      if (!replay.status.ok()) break;
      FramedLogContents contents = ReadFramedLog(path);
      if (!contents.status.ok()) {
        replay.status = contents.status;
        break;
      }
      const bool final_segment = seq == replay.last_seq;
      if (contents.torn_tail && !final_segment) {
        replay.status = Status::IoError(
            "torn record inside non-final segment '" + path +
            "' (later segments hold committed records)");
        break;
      }
      if (contents.torn_tail) {
        replay.torn_tail = true;
        JournalMetrics::Get().torn_tails.Increment();
      }
      if (final_segment) replay.valid_bytes = contents.valid_bytes;
      for (const std::string& payload : contents.records) {
        Result<JsonValue> parsed = JsonValue::Parse(payload);
        if (!parsed.ok() || !parsed.value().is_object()) {
          replay.status = Status::IoError(
              "unparseable journal record in '" + path + "'");
          break;
        }
        const JsonValue* type = parsed.value().Find("type");
        if (type == nullptr || !type->is_string()) {
          replay.status = Status::IoError(
              "journal record without a type in '" + path + "'");
          break;
        }
        if (type->str() == "delete") replay.deleted = true;
        replay.records.push_back(std::move(parsed).value());
      }
    }
    out.push_back(std::move(replay));
  }
  return out;
}

SessionJournal::SessionJournal(JournalConfig config, std::string session_id)
    : config_(std::move(config)), session_id_(std::move(session_id)) {}

Result<std::unique_ptr<SessionJournal>> SessionJournal::Start(
    const JournalConfig& config, const std::string& session_id) {
  std::error_code ec;
  fs::create_directories(config.dir, ec);
  if (ec) {
    return Status::IoError("cannot create journal dir '" + config.dir +
                           "': " + ec.message());
  }
  Result<FramedLogWriter> writer =
      FramedLogWriter::Create(SegmentPath(config, session_id, 1));
  if (!writer.ok()) return writer.status();
  auto journal = std::make_unique<SessionJournal>(config, session_id);
  MutexLock lock(journal->mu_);
  journal->writer_ = std::move(writer).value();
  journal->seq_ = 1;
  return journal;
}

Result<std::unique_ptr<SessionJournal>> SessionJournal::Resume(
    const JournalConfig& config, const SessionJournalReplay& replay) {
  if (!replay.status.ok()) {
    return Status::FailedPrecondition(
        "refusing to resume a corrupt journal: " + replay.status.message());
  }
  Result<FramedLogWriter> writer = FramedLogWriter::OpenForAppend(
      SegmentPath(config, replay.session_id, replay.last_seq),
      replay.valid_bytes);
  if (!writer.ok()) return writer.status();
  auto journal = std::make_unique<SessionJournal>(config, replay.session_id);
  MutexLock lock(journal->mu_);
  journal->writer_ = std::move(writer).value();
  journal->seq_ = replay.last_seq;
  return journal;
}

Status SessionJournal::Append(const JsonValue& record) {
  if (failed()) {
    return Status::FailedPrecondition(
        "journal for session '" + session_id_ +
        "' already failed; session is read-only");
  }
  std::string payload = record.Dump();
  MutexLock lock(mu_);
  Status status = AppendLocked(payload);
  if (!status.ok()) {
    failed_.store(true, std::memory_order_release);
    JournalMetrics::Get().write_failures.Increment();
  }
  return status;
}

Status SessionJournal::AppendLocked(std::string_view payload) {
  SUBDEX_FAULT_POINT_STATUS("journal.append");
  if (writer_.size() > kFramedLogHeaderBytes &&
      writer_.size() + payload.size() + 8 > config_.segment_bytes) {
    Status rotated = RotateLocked();
    if (!rotated.ok()) return rotated;
  }
  Status appended = writer_.Append(payload);
  if (!appended.ok()) return appended;
  JournalMetrics::Get().appends.Increment();
  switch (config_.fsync) {
    case JournalFsync::kEveryRecord:
      return SyncLocked();
    case JournalFsync::kBatch:
      if (++unsynced_records_ >= config_.fsync_batch_records) {
        return SyncLocked();
      }
      return Status::Ok();
    case JournalFsync::kNever:
      return Status::Ok();
  }
  return Status::Ok();
}

Status SessionJournal::SyncLocked() {
  SUBDEX_FAULT_POINT_STATUS("journal.fsync");
  Status status = writer_.Sync();
  if (status.ok()) unsynced_records_ = 0;
  return status;
}

Status SessionJournal::RotateLocked() {
  SUBDEX_FAULT_POINT_STATUS("journal.rotate");
  // Flush the retiring segment before opening its successor: a record in
  // segment N+1 must never be durable while one before it in N is not.
  if (config_.fsync != JournalFsync::kNever && unsynced_records_ > 0) {
    Status synced = SyncLocked();
    if (!synced.ok()) return synced;
  }
  Result<FramedLogWriter> next =
      FramedLogWriter::Create(SegmentPath(config_, session_id_, seq_ + 1));
  if (!next.ok()) return next.status();
  writer_ = std::move(next).value();
  ++seq_;
  JournalMetrics::Get().rotations.Increment();
  return Status::Ok();
}

Status SessionJournal::Sync() {
  MutexLock lock(mu_);
  Status status = SyncLocked();
  if (!status.ok()) {
    failed_.store(true, std::memory_order_release);
    JournalMetrics::Get().write_failures.Increment();
  }
  return status;
}

Status SessionJournal::EraseFiles() {
  {
    MutexLock lock(mu_);
    writer_.Close();
  }
  // Closed writer => any later Append fails and latches read-only; the
  // files below are gone either way.
  return Erase(config_, session_id_);
}

Status SessionJournal::Erase(const JournalConfig& config,
                             const std::string& session_id) {
  std::error_code ec;
  fs::directory_iterator it(config.dir, ec);
  if (ec) {
    // A missing directory has nothing left to erase.
    return Status::Ok();
  }
  Status first_error = Status::Ok();
  for (const fs::directory_entry& entry : it) {
    std::string id;
    uint64_t seq = 0;
    if (!ParseSegmentName(entry.path().filename().string(), &id, &seq) ||
        id != session_id) {
      continue;
    }
    std::error_code remove_ec;
    fs::remove(entry.path(), remove_ec);
    if (remove_ec && first_error.ok()) {
      first_error = Status::IoError("cannot remove '" +
                                    entry.path().string() +
                                    "': " + remove_ec.message());
    }
  }
  std::error_code mirror_ec;
  fs::remove(MirrorPath(config, session_id), mirror_ec);
  if (mirror_ec && first_error.ok()) {
    first_error = Status::IoError("cannot remove session mirror: " +
                                  mirror_ec.message());
  }
  return first_error;
}

}  // namespace subdex
