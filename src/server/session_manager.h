#ifndef SUBDEX_SERVER_SESSION_MANAGER_H_
#define SUBDEX_SERVER_SESSION_MANAGER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/sde_engine.h"
#include "engine/session_log.h"
#include "server/session_journal.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace subdex {

/// One live exploration session of subdexd: a dedicated SdeEngine over a
/// registered dataset, plus the last step's result so recommendation
/// indexes in follow-up requests resolve against what the client was
/// actually shown.
///
/// Lifetime: owned by shared_ptr. The SessionManager's map holds one
/// reference; SessionLease holds another while a request runs, so a
/// concurrent DELETE (or TTL reap) removes the session from the map
/// without pulling the engine out from under an in-flight step.
struct ServerSession {
  std::string id;
  std::string dataset;
  std::shared_ptr<const SubjectiveDatabase> db;
  /// Durability attachments (null when the server runs without
  /// --journal-dir): the write-ahead journal and the human-readable
  /// SessionLog mirror. Declared before `engine`, which holds a raw
  /// pointer to the mirror, so destruction order stays safe.
  std::unique_ptr<SessionJournal> journal;
  std::unique_ptr<SessionLog> mirror;
  std::unique_ptr<SdeEngine> engine;
  std::chrono::milliseconds ttl{0};

  /// Last-activity instant, as steady-clock milliseconds (atomic so leases
  /// touch it without a lock).
  std::atomic<int64_t> last_used_ms{0};
  /// Requests currently executing against this session; a reaper never
  /// expires a busy session.
  std::atomic<int> in_flight{0};
  std::atomic<uint64_t> steps_executed{0};

  /// Latched when a journal write fails (or a recovered journal cannot
  /// resume appending): durability is gone, so mutating requests answer
  /// 503 + Retry-After until the session is deleted or the server
  /// restarts against a healthy disk.
  std::atomic<bool> read_only{false};
  /// True when this session was rebuilt from its journal at startup.
  bool recovered = false;

  /// Serializes mutations (step/reset) on one session. The journal is a
  /// totally ordered record log: journal order must equal engine-commit
  /// order or replay would re-execute steps in an order that cannot
  /// reproduce the digest chain. Held across ExecuteStep + append;
  /// ranked above the shard lock, below everything the step acquires.
  Mutex order_mu{"session.order", lock_rank::kSessionOrder};

  Mutex mu{"session.last_step", lock_rank::kSessionLastStep};
  /// The most recent step; mutations serialize on order_mu, so readers
  /// under mu see the last committed one.
  StepResult last_step SUBDEX_GUARDED_BY(mu);
  bool has_last_step SUBDEX_GUARDED_BY(mu) = false;
  /// Digest of every committed step since the last reset — the chain GET
  /// /sessions/{id} reports and crash recovery verifies against.
  std::vector<uint64_t> digests SUBDEX_GUARDED_BY(mu);

  /// Unlinks the session's on-disk artifacts (journal segments and the
  /// mirror); no-op without a journal. Called when the session ends for
  /// good (explicit DELETE, TTL expiry) — an ended session must not
  /// resurrect on the next boot.
  void DiscardDurability();

  /// Steady-clock "now" in the unit last_used_ms uses.
  static int64_t NowMs();
};

/// RAII in-flight marker: holds the session alive and keeps the TTL
/// reaper off it for the duration of a request. Touches last_used_ms on
/// both acquire and release, so the idle clock starts after the step
/// finishes, not when it starts.
class SessionLease {
 public:
  SessionLease() = default;
  explicit SessionLease(std::shared_ptr<ServerSession> session)
      : session_(std::move(session)) {
    if (session_ != nullptr) {
      session_->in_flight.fetch_add(1, std::memory_order_acq_rel);
      session_->last_used_ms.store(ServerSession::NowMs(),
                                   std::memory_order_relaxed);
    }
  }
  ~SessionLease() { Release(); }

  SessionLease(SessionLease&& other) noexcept
      : session_(std::move(other.session_)) {
    other.session_.reset();
  }
  SessionLease& operator=(SessionLease&& other) noexcept {
    if (this != &other) {
      Release();
      session_ = std::move(other.session_);
      other.session_.reset();
    }
    return *this;
  }
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  explicit operator bool() const { return session_ != nullptr; }
  ServerSession* operator->() const { return session_.get(); }
  SUBDEX_NODISCARD ServerSession* get() const { return session_.get(); }

 private:
  void Release() {
    if (session_ != nullptr) {
      session_->last_used_ms.store(ServerSession::NowMs(),
                                   std::memory_order_relaxed);
      session_->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      session_.reset();
    }
  }

  std::shared_ptr<ServerSession> session_;
};

/// Concurrent session table: id -> ServerSession under sharded locks (the
/// 64-session storm must not serialize every request on one mutex), plus
/// a background reaper that expires sessions idle past their TTL — an
/// abandoned browser tab must not pin an engine (and its caches) forever.
class SessionManager {
 public:
  struct Options {
    /// Hard cap on concurrent sessions; Create beyond it fails with
    /// kFailedPrecondition (the server answers 429).
    size_t max_sessions = 256;
    std::chrono::milliseconds default_ttl{5 * 60 * 1000};
    std::chrono::milliseconds max_ttl{60 * 60 * 1000};
    std::chrono::milliseconds reap_interval{1000};
  };

  explicit SessionManager(Options options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Starts the TTL reaper thread (idempotent).
  void Start();
  /// Stops the reaper. Sessions survive Stop (shutdown order: HTTP first,
  /// then the manager goes down with the process).
  void Stop();

  /// Pre-publication hook: runs on the fully built session *before* it
  /// becomes visible to Acquire, so attachments (journal, mirror) are in
  /// place without a race window. A non-OK return aborts the create.
  using SessionSetup = std::function<Status(ServerSession&)>;

  /// Creates a session over `db` with its own engine. `ttl_ms` <= 0 picks
  /// the default TTL; larger values clamp to max_ttl.
  SUBDEX_MUST_USE_RESULT Result<std::shared_ptr<ServerSession>> Create(
      const std::string& dataset,
      std::shared_ptr<const SubjectiveDatabase> db, const EngineConfig& config,
      double ttl_ms, const SessionSetup& setup = nullptr);

  /// Re-inserts a session under its journaled id during crash recovery
  /// (before the HTTP front end starts serving). Advances the id counter
  /// past the recovered serial so new sessions never collide with
  /// recovered ones; fails on a duplicate id or an exhausted session cap.
  SUBDEX_MUST_USE_RESULT Result<std::shared_ptr<ServerSession>> Restore(
      const std::string& id, const std::string& dataset,
      std::shared_ptr<const SubjectiveDatabase> db, const EngineConfig& config,
      double ttl_ms);

  /// In-flight lease on a live session; an empty lease when the id is
  /// unknown or the session sat idle past its TTL (lazily reaped here, so
  /// expiry is exact even between reaper sweeps).
  SUBDEX_NODISCARD SessionLease Acquire(const std::string& id);

  /// Removes a session; false when the id is unknown. In-flight requests
  /// holding a lease finish against the detached session.
  bool Remove(const std::string& id);

  /// One reaper sweep, synchronously; returns the number of sessions
  /// expired. The background thread calls this on its cadence; tests call
  /// it directly for determinism.
  size_t ReapExpired();

  SUBDEX_NODISCARD size_t ActiveCount() const;

 private:
  static constexpr size_t kNumShards = 8;
  struct Shard {
    // All 8 shard locks share one name: the detector's same-name-nesting
    // rule then proves no code path ever holds two shards at once.
    mutable Mutex mu{"session.shard", lock_rank::kSessionShard};
    std::unordered_map<std::string, std::shared_ptr<ServerSession>> sessions
        SUBDEX_GUARDED_BY(mu);
  };

  SUBDEX_NODISCARD size_t ShardIndexOf(const std::string& id) const {
    return std::hash<std::string>{}(id) % kNumShards;
  }
  SUBDEX_NODISCARD bool Expired(const ServerSession& session,
                                int64_t now_ms) const;
  void ReaperLoop();

  Options options_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<size_t> active_{0};

  std::thread reaper_;
  Mutex reaper_mu_{"session.reaper", lock_rank::kSessionReaper};
  std::condition_variable reaper_cv_;
  bool reaper_stop_ SUBDEX_GUARDED_BY(reaper_mu_) = false;
  bool reaper_running_ = false;
};

}  // namespace subdex

#endif  // SUBDEX_SERVER_SESSION_MANAGER_H_
