#ifndef SUBDEX_SERVER_HTTP_H_
#define SUBDEX_SERVER_HTTP_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/deadline.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace subdex {

/// One parsed HTTP/1.1 request. Header names are lower-cased at parse
/// time (HTTP headers are case-insensitive); the target is the raw path
/// with any query string already split off.
struct HttpRequest {
  std::string method;
  std::string target;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Header value by lower-case name; nullptr when absent.
  SUBDEX_NODISCARD const std::string* Header(std::string_view name) const;
};

/// The handler's answer. `extra_headers` lets handlers attach
/// response-specific fields (Retry-After on sheds).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  static HttpResponse Json(int status, std::string body);
  static HttpResponse Text(int status, std::string body);
};

/// Reason phrase for the status codes subdexd emits ("Unknown" otherwise).
const char* HttpStatusReason(int status);

/// A minimal threaded HTTP/1.1 server over POSIX sockets, sized for
/// subdexd's needs: short JSON requests, one response per connection
/// (Connection: close), explicit overload behavior.
///
/// Admission control: accepted connections enter a bounded queue that the
/// worker pool drains. When the queue is full the acceptor immediately
/// writes `429 Too Many Requests` with a Retry-After header and closes —
/// under overload the server sheds load in O(1) instead of growing an
/// unbounded backlog whose tail latency makes every client time out
/// (interactive exploration would rather retry than wait).
///
/// Disconnect propagation: while a handler runs, a watcher thread polls
/// the connection for POLLRDHUP; a client that hangs up mid-request trips
/// the CancellationToken passed to the handler, so abandoned exploration
/// steps stop consuming engine time.
class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read the outcome from port().
    uint16_t port = 0;
    size_t num_workers = 4;
    /// Accepted connections waiting for a worker before sheds begin.
    size_t queue_capacity = 64;
    /// Advisory client backoff on 429 responses.
    int retry_after_seconds = 1;
    /// Caps keeping a hostile peer from ballooning memory.
    size_t max_header_bytes = 16 * 1024;
    size_t max_body_bytes = 1 << 20;
    /// Socket receive/send timeout: a stalled peer frees its worker after
    /// at most this long.
    int socket_timeout_ms = 5000;
    /// Total wall-clock budget for reading one request (headers + body),
    /// answered with 408 when exceeded. The per-recv timeout above only
    /// bounds a fully stalled peer; a client trickling one byte per
    /// second would hold a worker indefinitely without this cap.
    int request_read_deadline_ms = 10000;
    /// Cadence of the disconnect watcher's POLLRDHUP sweep.
    int watch_interval_ms = 10;
  };

  /// Handlers run on worker threads and must be thread-safe. `disconnect`
  /// is tripped if the client hangs up while the handler runs.
  using Handler = std::function<HttpResponse(const HttpRequest& request,
                                             const CancellationToken&
                                                 disconnect)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spins up the acceptor / worker / watcher
  /// threads. Fails (kFailedPrecondition) when already started, or with
  /// kIoError when the bind fails.
  SUBDEX_MUST_USE_RESULT Status Start();

  /// Graceful stop: accepting ends, in-flight handlers finish, queued
  /// but unserved connections receive `503 Service Unavailable`. Safe to
  /// call twice; the destructor calls it.
  void Stop();

  /// Bound TCP port (resolves port 0); 0 before Start().
  SUBDEX_NODISCARD uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void WatchLoop();
  void HandleConnection(int fd);

  Options options_;
  Handler handler_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;

  std::vector<std::thread> threads_;

  mutable Mutex mu_{"http.queue", lock_rank::kHttpQueue};
  std::condition_variable queue_cv_;
  std::deque<int> queue_ SUBDEX_GUARDED_BY(mu_);
  bool stopping_ SUBDEX_GUARDED_BY(mu_) = false;

  // Connections whose handler is running, watched for client hangup.
  struct Watch {
    int fd;
    CancellationToken token;
  };
  mutable Mutex watch_mu_{"http.watch", lock_rank::kHttpWatch};
  std::condition_variable watch_cv_;
  std::vector<Watch> watches_ SUBDEX_GUARDED_BY(watch_mu_);
  bool watch_stopping_ SUBDEX_GUARDED_BY(watch_mu_) = false;
};

}  // namespace subdex

#endif  // SUBDEX_SERVER_HTTP_H_
