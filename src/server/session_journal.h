#ifndef SUBDEX_SERVER_SESSION_JOURNAL_H_
#define SUBDEX_SERVER_SESSION_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/config.h"
#include "server/json.h"
#include "storage/framed_log.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace subdex {

/// When journal appends reach the platter (DESIGN.md §13 discusses the
/// trade-offs).
enum class JournalFsync {
  /// Never fdatasync: the OS flushes on its own schedule. A process crash
  /// (SIGKILL) loses nothing — the page cache survives the process — but
  /// a power loss can lose recent steps.
  kNever,
  /// fdatasync every `fsync_batch_records` appends (default): bounded
  /// power-loss exposure at a fraction of the per-record sync cost.
  kBatch,
  /// fdatasync after every record: an acked step is durable, full stop.
  kEveryRecord,
};

SUBDEX_NODISCARD const char* JournalFsyncName(JournalFsync policy);
SUBDEX_NODISCARD bool ParseJournalFsync(std::string_view text,
                                        JournalFsync* out);

struct JournalConfig {
  /// Directory holding every session's segments; empty disables
  /// journaling entirely (PR 6 behavior: sessions die with the process).
  std::string dir;
  JournalFsync fsync = JournalFsync::kBatch;
  size_t fsync_batch_records = 8;
  /// Segment rotation threshold. Small segments bound the blast radius of
  /// a corrupt file and keep any one replay read modest.
  size_t segment_bytes = 4u << 20;

  SUBDEX_NODISCARD bool enabled() const { return !dir.empty(); }
};

/// uint64 <-> 16-hex-digit string. Digests cross the JSON boundary as
/// strings: JSON numbers are doubles and cannot carry 64 bits exactly.
SUBDEX_NODISCARD std::string DigestToHex(uint64_t digest);
SUBDEX_NODISCARD bool HexToDigest(std::string_view hex, uint64_t* out);

/// Journal record payloads, one JSON object per record:
///   {"type":"create","v":1,"dataset":...,"ttl_ms":...,"config":{...}}
///   {"type":"step","reviewers":q,"items":q,"with_recommendations":b,
///    "degraded":b,"digest":"<hex16>"}
///   {"type":"reset"}   {"type":"delete"}
/// Selections are journaled as canonical query strings (the replayable
/// form PredicateToQuery emits), not as raw predicate structures.
SUBDEX_NODISCARD JsonValue MakeCreateRecord(const std::string& dataset,
                                            double ttl_ms,
                                            const EngineConfig& config);
SUBDEX_NODISCARD JsonValue MakeStepRecord(const std::string& reviewers,
                                          const std::string& items,
                                          bool with_recommendations,
                                          bool degraded, uint64_t digest);
SUBDEX_NODISCARD JsonValue MakeResetRecord();
SUBDEX_NODISCARD JsonValue MakeDeleteRecord();

/// Everything recovered from one session's on-disk journal.
struct SessionJournalReplay {
  std::string session_id;
  /// Parsed record payloads, oldest first, across all segments.
  std::vector<JsonValue> records;
  /// A `delete` record was found: the session ended; recovery finishes the
  /// unlink instead of resurrecting it.
  bool deleted = false;
  /// The final segment ended in a half-written record (crash mid-append);
  /// it was dropped from `records` and Resume() will truncate it away.
  bool torn_tail = false;
  /// Highest segment sequence number on disk, and the good-prefix length
  /// of that segment — what Resume() needs to continue appending.
  uint64_t last_seq = 1;
  uint64_t valid_bytes = 0;
  /// Non-OK on real corruption (bad magic, mid-file checksum failure, a
  /// missing segment in the sequence, unparseable record). The server
  /// flags such a session divergent rather than serving a guess.
  Status status = Status::Ok();
};

/// Scans `config.dir` and reads every session journal found there.
/// Per-session corruption lands in that replay's `status`, never fails
/// the scan; only an unreadable directory returns an error.
SUBDEX_MUST_USE_RESULT Result<std::vector<SessionJournalReplay>>
ScanJournalDir(const JournalConfig& config);

/// The durable write-ahead log of one session. Appends are serialized
/// internally; the server journals a mutation *before* acking it, so an
/// acknowledged step survives a crash (modulo the fsync policy).
///
/// Failure model: the first failed append/rotate/fsync (real ENOSPC/EIO
/// or an injected `journal.{append,fsync,rotate}` fault) latches
/// `failed()`. The journal then refuses further appends and the server
/// marks the session read-only — continuing to journal after a torn
/// write would put valid records behind the tear, which the reader must
/// treat as corruption.
class SessionJournal {
 public:
  /// Fresh journal for a brand-new session: creates segment 1.
  SUBDEX_MUST_USE_RESULT static Result<std::unique_ptr<SessionJournal>>
  Start(const JournalConfig& config, const std::string& session_id);

  /// Continues a recovered session's journal: truncates the torn tail the
  /// scan reported (if any) and appends to the last segment.
  SUBDEX_MUST_USE_RESULT static Result<std::unique_ptr<SessionJournal>>
  Resume(const JournalConfig& config, const SessionJournalReplay& replay);

  /// Appends one record (and syncs, per policy). Once failed, always
  /// fails with kFailedPrecondition without touching the disk again.
  SUBDEX_MUST_USE_RESULT Status Append(const JsonValue& record)
      SUBDEX_EXCLUDES(mu_);

  /// Forces an fdatasync regardless of policy (shutdown, tests).
  SUBDEX_MUST_USE_RESULT Status Sync() SUBDEX_EXCLUDES(mu_);

  SUBDEX_NODISCARD bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  SUBDEX_NODISCARD const std::string& session_id() const {
    return session_id_;
  }

  /// Closes the writer and unlinks every on-disk artifact of this
  /// session (segments + mirror). Used by explicit DELETE and TTL reap —
  /// an ended session must not resurrect on the next boot.
  SUBDEX_MUST_USE_RESULT Status EraseFiles() SUBDEX_EXCLUDES(mu_);

  /// Same, by id, for sessions without a live journal object (recovery
  /// finishing a crashed DELETE).
  SUBDEX_MUST_USE_RESULT static Status Erase(const JournalConfig& config,
                                             const std::string& session_id);

  /// Path of the human-readable SessionLog mirror for `session_id`.
  SUBDEX_NODISCARD static std::string MirrorPath(
      const JournalConfig& config, const std::string& session_id);
  /// Path of segment `seq` for `session_id`.
  SUBDEX_NODISCARD static std::string SegmentPath(
      const JournalConfig& config, const std::string& session_id,
      uint64_t seq);

  /// Public only for the factories' make_unique; use Start/Resume.
  SessionJournal(JournalConfig config, std::string session_id);

 private:
  SUBDEX_MUST_USE_RESULT Status AppendLocked(std::string_view payload)
      SUBDEX_REQUIRES(mu_);
  SUBDEX_MUST_USE_RESULT Status SyncLocked() SUBDEX_REQUIRES(mu_);
  SUBDEX_MUST_USE_RESULT Status RotateLocked() SUBDEX_REQUIRES(mu_);

  const JournalConfig config_;
  const std::string session_id_;
  std::atomic<bool> failed_{false};

  mutable Mutex mu_{"session.journal", lock_rank::kSessionJournal};
  FramedLogWriter writer_ SUBDEX_GUARDED_BY(mu_);
  uint64_t seq_ SUBDEX_GUARDED_BY(mu_) = 1;
  size_t unsynced_records_ SUBDEX_GUARDED_BY(mu_) = 0;
};

}  // namespace subdex

#endif  // SUBDEX_SERVER_SESSION_JOURNAL_H_
