#ifndef SUBDEX_SERVER_HTTP_CLIENT_H_
#define SUBDEX_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace subdex {

/// A minimal blocking HTTP/1.1 client, sized for subdexd's wire protocol:
/// one short JSON request per connection, read to close (the server
/// answers `Connection: close`). This is the one HTTP client in the tree —
/// the load driver (src/loadgen/), the server tests, and ad-hoc tools all
/// go through it, so protocol quirks get fixed once.
///
/// Scope limits, on purpose: no keep-alive, no chunked encoding, no TLS,
/// IPv4 numeric hosts only ("127.0.0.1"-style — subdexd binds loopback by
/// default and the driver targets machines it also launched). A transport
/// failure (connect refused, timeout, truncated response) is a non-OK
/// Status; an HTTP error (429, 503, ...) is an OK Result carrying the
/// status code — callers under load must see sheds as data, not as
/// exceptions.
struct HttpClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Per-socket-operation send/recv timeout; also the connect timeout.
  int timeout_ms = 30000;
};

struct HttpClientResponse {
  int status = 0;
  /// Header names lower-cased at parse time (HTTP headers are
  /// case-insensitive), in wire order.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Header value by lower-case name; nullptr when absent.
  SUBDEX_NODISCARD const std::string* Header(std::string_view name) const;
};

/// One request over a fresh connection: connect, send, read until the
/// server closes, parse. `body` is sent with a Content-Length header (and
/// `content_type` when the body is non-empty).
SUBDEX_MUST_USE_RESULT Result<HttpClientResponse> HttpFetch(
    const HttpClientOptions& options, const std::string& method,
    const std::string& target, const std::string& body = "",
    const std::string& content_type = "application/json");

}  // namespace subdex

#endif  // SUBDEX_SERVER_HTTP_CLIENT_H_
