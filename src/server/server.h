#ifndef SUBDEX_SERVER_SERVER_H_
#define SUBDEX_SERVER_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "engine/config.h"
#include "server/http.h"
#include "server/session_manager.h"
#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// subdexd: the exploration engine behind an HTTP/JSON API, serving many
/// concurrent exploration sessions over shared read-only datasets. Routes:
///
///   POST   /sessions              create a session
///                                 body: {"dataset"?: name,
///                                        "ttl_ms"?: number,
///                                        "config"?: {engine knobs}}
///   POST   /sessions/{id}/step    run one exploration step
///                                 body: {"reviewers"?: query,
///                                        "items"?: query,
///                                        "recommendation"?: index,
///                                        "deadline_ms"?: number,
///                                        "with_recommendations"?: bool}
///   POST   /sessions/{id}/reset   forget the session's exploration history
///   DELETE /sessions/{id}         end a session
///   GET    /metrics               Prometheus text exposition
///   GET    /healthz               liveness + session/dataset summary
///
/// Selections are the query-parser grammar ("genre = Comedy AND ..."),
/// parsed read-only: datasets are shared across sessions, so serving never
/// interns new values into their dictionaries. A "recommendation" index
/// picks a target from the session's previous step instead of spelling out
/// queries. Errors come back as {"error": message}; capacity exhaustion
/// (session cap, request queue) answers 429 with a Retry-After header.
class SubdexServer {
 public:
  struct Options {
    HttpServer::Options http;
    SessionManager::Options sessions;
    /// Per-session engine template; request "config" overrides a safe
    /// subset. Serving gets its concurrency from having many sessions, so
    /// the default is one thread per engine (no pool), not the benchmark
    /// default of 4.
    EngineConfig engine;
    /// Hard cap a request's config.num_threads may ask for.
    size_t max_threads_per_session = 4;

    Options() { engine.num_threads = 1; }
  };

  explicit SubdexServer(Options options);
  ~SubdexServer();

  SubdexServer(const SubdexServer&) = delete;
  SubdexServer& operator=(const SubdexServer&) = delete;

  /// Registers a dataset to serve. Only legal before Start(): the dataset
  /// map is read lock-free by every request thread afterwards. The first
  /// registered dataset is the default for session creation. `db` must be
  /// finalized.
  SUBDEX_MUST_USE_RESULT Status RegisterDataset(
      const std::string& name, std::shared_ptr<const SubjectiveDatabase> db);

  /// Starts the session reaper and the HTTP front end. Requires at least
  /// one registered dataset.
  SUBDEX_MUST_USE_RESULT Status Start();

  /// Stops the HTTP server (in-flight requests finish), then the reaper.
  void Stop();

  /// Bound TCP port; 0 before Start().
  SUBDEX_NODISCARD uint16_t port() const { return http_.port(); }

  SUBDEX_NODISCARD SessionManager& sessions() { return sessions_; }

  /// The routing core, exposed for in-process tests that want to exercise
  /// API semantics without a socket. `disconnect` is the client-hangup
  /// token threaded into StepOptions.
  SUBDEX_NODISCARD HttpResponse Handle(const HttpRequest& request,
                                       const CancellationToken& disconnect);

 private:
  struct Dataset {
    std::string name;
    std::shared_ptr<const SubjectiveDatabase> db;
  };

  HttpResponse HandleCreateSession(const HttpRequest& request);
  HttpResponse HandleStep(const std::string& id, const HttpRequest& request,
                          const CancellationToken& disconnect);
  HttpResponse HandleReset(const std::string& id);
  HttpResponse HandleDelete(const std::string& id);
  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz();

  Options options_;
  // Insertion-ordered (std::map) so /healthz lists datasets
  // deterministically; immutable after Start().
  std::map<std::string, std::shared_ptr<const SubjectiveDatabase>> datasets_;
  std::string default_dataset_;
  bool started_ = false;

  SessionManager sessions_;
  HttpServer http_;
};

}  // namespace subdex

#endif  // SUBDEX_SERVER_SERVER_H_
