#ifndef SUBDEX_SERVER_SERVER_H_
#define SUBDEX_SERVER_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "engine/config.h"
#include "server/http.h"
#include "server/session_journal.h"
#include "server/session_manager.h"
#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// subdexd: the exploration engine behind an HTTP/JSON API, serving many
/// concurrent exploration sessions over shared read-only datasets. Routes:
///
///   POST   /sessions              create a session
///                                 body: {"dataset"?: name,
///                                        "ttl_ms"?: number,
///                                        "config"?: {engine knobs}}
///   POST   /sessions/{id}/step    run one exploration step
///                                 body: {"reviewers"?: query,
///                                        "items"?: query,
///                                        "recommendation"?: index,
///                                        "deadline_ms"?: number,
///                                        "with_recommendations"?: bool}
///   POST   /sessions/{id}/reset   forget the session's exploration history
///   GET    /sessions/{id}         session state summary (step digests,
///                                 read-only / recovered flags)
///   DELETE /sessions/{id}         end a session
///   GET    /metrics               Prometheus text exposition
///   GET    /healthz               liveness + session/dataset summary
///
/// Selections are the query-parser grammar ("genre = Comedy AND ..."),
/// parsed read-only: datasets are shared across sessions, so serving never
/// interns new values into their dictionaries. A "recommendation" index
/// picks a target from the session's previous step instead of spelling out
/// queries. Errors come back as {"error": message}; capacity exhaustion
/// (session cap, request queue) answers 429 with a Retry-After header.
///
/// Durability (DESIGN.md §13): with `Options::journal.dir` set, every
/// session mutation is journaled before it is acknowledged, Start()
/// replays the journals to rebuild sessions (verifying per-step digests;
/// sessions that fail verification answer 410 Gone instead of serving
/// wrong state), and a session whose journal writes start failing turns
/// read-only — mutations answer 503 + Retry-After, reads keep working.
class SubdexServer {
 public:
  struct Options {
    HttpServer::Options http;
    SessionManager::Options sessions;
    /// Per-session engine template; request "config" overrides a safe
    /// subset. Serving gets its concurrency from having many sessions, so
    /// the default is one thread per engine (no pool), not the benchmark
    /// default of 4.
    EngineConfig engine;
    /// Hard cap a request's config.num_threads may ask for.
    size_t max_threads_per_session = 4;
    /// Session durability; disabled (empty dir) by default.
    JournalConfig journal;

    Options() { engine.num_threads = 1; }
  };

  /// What Start()'s crash recovery found (tests and operators read this;
  /// the same numbers feed subdex_sessions_{recovered,divergent}_total).
  struct RecoveryReport {
    size_t sessions_recovered = 0;
    size_t sessions_divergent = 0;
    size_t torn_tails = 0;
  };

  explicit SubdexServer(Options options);
  ~SubdexServer();

  SubdexServer(const SubdexServer&) = delete;
  SubdexServer& operator=(const SubdexServer&) = delete;

  /// Registers a dataset to serve. Only legal before Start(): the dataset
  /// map is read lock-free by every request thread afterwards. The first
  /// registered dataset is the default for session creation. `db` must be
  /// finalized.
  SUBDEX_MUST_USE_RESULT Status RegisterDataset(
      const std::string& name, std::shared_ptr<const SubjectiveDatabase> db);

  /// Starts the session reaper and the HTTP front end. Requires at least
  /// one registered dataset. With journaling enabled, replays every
  /// session journal found in the journal dir first, so recovered
  /// sessions are serveable before the first request lands.
  SUBDEX_MUST_USE_RESULT Status Start();

  /// Crash-recovery outcome of the last Start(); zeros when journaling is
  /// off or nothing was on disk.
  SUBDEX_NODISCARD const RecoveryReport& recovery() const {
    return recovery_;
  }

  /// Stops the HTTP server (in-flight requests finish), then the reaper.
  void Stop();

  /// Bound TCP port; 0 before Start().
  SUBDEX_NODISCARD uint16_t port() const { return http_.port(); }

  SUBDEX_NODISCARD SessionManager& sessions() { return sessions_; }

  /// The routing core, exposed for in-process tests that want to exercise
  /// API semantics without a socket. `disconnect` is the client-hangup
  /// token threaded into StepOptions.
  SUBDEX_NODISCARD HttpResponse Handle(const HttpRequest& request,
                                       const CancellationToken& disconnect);

 private:
  struct Dataset {
    std::string name;
    std::shared_ptr<const SubjectiveDatabase> db;
  };

  HttpResponse HandleCreateSession(const HttpRequest& request);
  HttpResponse HandleStep(const std::string& id, const HttpRequest& request,
                          const CancellationToken& disconnect);
  HttpResponse HandleReset(const std::string& id);
  HttpResponse HandleGetSession(const std::string& id);
  HttpResponse HandleDelete(const std::string& id);
  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz();

  /// Startup journal replay: one pass over the journal dir, rebuilding
  /// every recoverable session and flagging the rest divergent.
  SUBDEX_MUST_USE_RESULT Status RecoverSessions();
  void RecoverOne(SessionJournalReplay replay);
  SUBDEX_MUST_USE_RESULT Status ReplayStep(ServerSession& session,
                                           const JsonValue& record);
  void MarkDivergent(const std::string& id, const std::string& reason);

  Options options_;
  // Insertion-ordered (std::map) so /healthz lists datasets
  // deterministically; immutable after Start().
  std::map<std::string, std::shared_ptr<const SubjectiveDatabase>> datasets_;
  std::string default_dataset_;
  bool started_ = false;

  // Sessions whose journal failed verification during recovery, with the
  // reason; immutable after Start(). Their ids answer 410 Gone — serving
  // a state we cannot prove matches what the user saw would be worse
  // than refusing.
  std::map<std::string, std::string> divergent_;
  RecoveryReport recovery_;

  SessionManager sessions_;
  HttpServer http_;
};

}  // namespace subdex

#endif  // SUBDEX_SERVER_SERVER_H_
