#include "server/server.h"

#include <cmath>
#include <utility>
#include <vector>

#include "server/json.h"
#include "storage/query_parser.h"
#include "util/metrics.h"

namespace subdex {

namespace {

struct ServerMetrics {
  Counter& steps;

  static ServerMetrics& Get() {
    static ServerMetrics m{
        MetricsRegistry::Global().GetCounter(
            "subdex_server_steps_total",
            "Exploration steps executed over the HTTP API"),
    };
    return m;
  }
};

HttpResponse ErrorResponse(int status, const std::string& message) {
  JsonValue body = JsonValue::Object();
  body.Set("error", JsonValue::Str(message));
  return HttpResponse::Json(status, body.Dump());
}

HttpResponse CapacityResponse(const std::string& message,
                              int retry_after_seconds) {
  HttpResponse response = ErrorResponse(429, message);
  response.extra_headers.emplace_back("Retry-After",
                                      std::to_string(retry_after_seconds));
  return response;
}

/// Body -> JSON object. An empty body means "all defaults" (an object with
/// no members); anything else must parse as a JSON object.
Result<JsonValue> ParseBodyObject(const HttpRequest& request) {
  if (request.body.empty()) return JsonValue::Object();
  Result<JsonValue> parsed = JsonValue::Parse(request.body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return parsed;
}

/// Reads an optional non-negative integral number field, writing it into
/// `out` (left untouched when the field is absent).
Status ReadCount(const JsonValue& body, const char* key, size_t* out) {
  const JsonValue* v = body.Find(key);
  if (v == nullptr) return Status::Ok();
  double d = v->number();
  if (!v->is_number() || !(d >= 0) || d != std::floor(d) || d > 1e15) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative integer");
  }
  *out = static_cast<size_t>(d);
  return Status::Ok();
}

/// Applies the request's "config" object onto the per-session engine
/// template. Only a safe allowlist of knobs is exposed — pruning schemes,
/// distance kinds and the like stay server-side; unknown keys are an error
/// rather than silently ignored (a typoed knob should not look accepted).
Status ApplyConfigOverrides(const JsonValue& config, size_t max_threads,
                            EngineConfig* engine) {
  size_t seed = static_cast<size_t>(engine->seed);
  const std::pair<const char*, size_t*> knobs[] = {
      {"k", &engine->k},
      {"o", &engine->o},
      {"l", &engine->l},
      {"num_phases", &engine->num_phases},
      {"num_threads", &engine->num_threads},
      {"seed", &seed},
      {"min_group_size", &engine->min_group_size},
      {"max_candidates", &engine->operations.max_candidates},
      {"group_cache_capacity", &engine->group_cache_capacity},
  };
  for (const auto& [key, value] : config.members()) {
    // Discard justified: values are read through the knob table below;
    // this pass only rejects typoed keys instead of silently ignoring them.
    (void)value;
    bool known = false;
    for (const auto& [name, target] : knobs) {
      // Discard justified: key-set validation only; `target` is written in
      // the ReadCount loop below.
      (void)target;
      if (key == name) known = true;
    }
    if (!known) {
      return Status::InvalidArgument("unknown config knob '" + key + "'");
    }
  }
  for (const auto& [name, target] : knobs) {
    Status status = ReadCount(config, name, target);
    if (!status.ok()) return status;
  }
  engine->seed = seed;
  if (engine->k == 0 || engine->o == 0 || engine->l == 0 ||
      engine->num_phases == 0) {
    return Status::InvalidArgument(
        "'k', 'o', 'l' and 'num_phases' must be at least 1");
  }
  if (engine->num_threads == 0) engine->num_threads = 1;
  if (engine->num_threads > max_threads) {
    return Status::InvalidArgument(
        "'num_threads' exceeds the server cap of " +
        std::to_string(max_threads));
  }
  return Status::Ok();
}

JsonValue RenderSelection(const SubjectiveDatabase& db,
                          const GroupSelection& selection) {
  JsonValue out = JsonValue::Object();
  out.Set("reviewers",
          JsonValue::Str(PredicateToQuery(db.table(Side::kReviewer),
                                          selection.reviewer_pred)));
  out.Set("items", JsonValue::Str(PredicateToQuery(db.table(Side::kItem),
                                                   selection.item_pred)));
  return out;
}

JsonValue RenderMap(const SubjectiveDatabase& db, const ScoredRatingMap& map) {
  const RatingMapKey& key = map.map.key();
  const Table& table = db.table(key.side);
  JsonValue out = JsonValue::Object();
  out.Set("side", JsonValue::Str(SideName(key.side)));
  out.Set("attribute",
          JsonValue::Str(table.schema().attribute(key.attribute).name));
  out.Set("dimension", JsonValue::Str(db.dimension_name(key.dimension)));
  out.Set("utility", JsonValue::Number(map.dw_utility));
  out.Set("group_size",
          JsonValue::Number(static_cast<double>(map.map.full_group_size())));
  JsonValue subgroups = JsonValue::Array();
  for (const Subgroup& sg : map.map.subgroups()) {
    JsonValue row = JsonValue::Object();
    row.Set("value", JsonValue::Str(
                         sg.value == kNullCode
                             ? "unspecified"
                             : table.dictionary(key.attribute).ValueOf(
                                   sg.value)));
    row.Set("count", JsonValue::Number(static_cast<double>(sg.count())));
    row.Set("average", JsonValue::Number(sg.average()));
    subgroups.Append(std::move(row));
  }
  out.Set("subgroups", std::move(subgroups));
  return out;
}

JsonValue RenderRecommendation(const SubjectiveDatabase& db,
                               const Recommendation& reco) {
  JsonValue out = JsonValue::Object();
  out.Set("kind", JsonValue::Str(OperationKindName(reco.operation.kind)));
  out.Set("target", RenderSelection(db, reco.operation.target));
  out.Set("utility", JsonValue::Number(reco.utility));
  out.Set("group_size",
          JsonValue::Number(static_cast<double>(reco.group_size)));
  return out;
}

JsonValue RenderStepResult(const std::string& session_id,
                           const SubjectiveDatabase& db,
                           const StepResult& result) {
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(session_id));
  out.Set("selection", RenderSelection(db, result.selection));
  out.Set("group_size",
          JsonValue::Number(static_cast<double>(result.group_size)));
  out.Set("elapsed_ms", JsonValue::Number(result.elapsed_ms));
  out.Set("degraded", JsonValue::Bool(result.degraded));
  out.Set("cancelled", JsonValue::Bool(result.cancelled));
  out.Set("cut_phase", JsonValue::Str(StepPhaseName(result.cut_phase)));
  JsonValue maps = JsonValue::Array();
  for (const ScoredRatingMap& map : result.maps) {
    maps.Append(RenderMap(db, map));
  }
  out.Set("maps", std::move(maps));
  JsonValue recos = JsonValue::Array();
  for (const Recommendation& reco : result.recommendations) {
    recos.Append(RenderRecommendation(db, reco));
  }
  out.Set("recommendations", std::move(recos));
  return out;
}

}  // namespace

SubdexServer::SubdexServer(Options options)
    : options_(std::move(options)),
      sessions_(options_.sessions),
      http_(options_.http,
            [this](const HttpRequest& request,
                   const CancellationToken& disconnect) {
              return Handle(request, disconnect);
            }) {}

SubdexServer::~SubdexServer() { Stop(); }

Status SubdexServer::RegisterDataset(
    const std::string& name, std::shared_ptr<const SubjectiveDatabase> db) {
  if (started_) {
    return Status::FailedPrecondition(
        "datasets must be registered before Start()");
  }
  if (name.empty()) return Status::InvalidArgument("dataset name is empty");
  if (db == nullptr || !db->finalized()) {
    return Status::InvalidArgument("dataset '" + name + "' is not finalized");
  }
  if (datasets_.count(name) > 0) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' is already registered");
  }
  if (datasets_.empty()) default_dataset_ = name;
  datasets_.emplace(name, std::move(db));
  return Status::Ok();
}

Status SubdexServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (datasets_.empty()) {
    return Status::FailedPrecondition(
        "no datasets registered; call RegisterDataset first");
  }
  sessions_.Start();
  Status status = http_.Start();
  if (!status.ok()) {
    sessions_.Stop();
    return status;
  }
  started_ = true;
  return Status::Ok();
}

void SubdexServer::Stop() {
  if (!started_) return;
  // HTTP first so no new requests race the reaper shutdown; sessions (and
  // their engines) go down with the manager's destructor.
  http_.Stop();
  sessions_.Stop();
  started_ = false;
}

HttpResponse SubdexServer::Handle(const HttpRequest& request,
                                  const CancellationToken& disconnect) {
  const std::string& target = request.target;
  if (target == "/healthz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return HandleHealthz();
  }
  if (target == "/metrics") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return HandleMetrics();
  }
  if (target == "/sessions") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return HandleCreateSession(request);
  }
  if (target.rfind("/sessions/", 0) == 0) {
    std::string rest = target.substr(10);
    size_t slash = rest.find('/');
    std::string id = rest.substr(0, slash);
    std::string action =
        slash == std::string::npos ? "" : rest.substr(slash + 1);
    if (id.empty()) return ErrorResponse(404, "missing session id");
    if (action.empty()) {
      if (request.method != "DELETE") return ErrorResponse(405, "use DELETE");
      return HandleDelete(id);
    }
    if (action == "step") {
      if (request.method != "POST") return ErrorResponse(405, "use POST");
      return HandleStep(id, request, disconnect);
    }
    if (action == "reset") {
      if (request.method != "POST") return ErrorResponse(405, "use POST");
      return HandleReset(id);
    }
    return ErrorResponse(404, "unknown session action '" + action + "'");
  }
  return ErrorResponse(404, "unknown route '" + target + "'");
}

HttpResponse SubdexServer::HandleCreateSession(const HttpRequest& request) {
  Result<JsonValue> body = ParseBodyObject(request);
  if (!body.ok()) return ErrorResponse(400, body.status().message());

  std::string dataset = default_dataset_;
  if (const JsonValue* v = body.value().Find("dataset"); v != nullptr) {
    if (!v->is_string()) return ErrorResponse(400, "'dataset' must be a string");
    dataset = v->str();
  }
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return ErrorResponse(404, "unknown dataset '" + dataset + "'");
  }

  double ttl_ms = 0;
  if (const JsonValue* v = body.value().Find("ttl_ms"); v != nullptr) {
    if (!v->is_number() || !(v->number() >= 0)) {
      return ErrorResponse(400, "'ttl_ms' must be a non-negative number");
    }
    ttl_ms = v->number();
  }

  EngineConfig config = options_.engine;
  if (const JsonValue* v = body.value().Find("config"); v != nullptr) {
    if (!v->is_object()) return ErrorResponse(400, "'config' must be an object");
    Status status =
        ApplyConfigOverrides(*v, options_.max_threads_per_session, &config);
    if (!status.ok()) return ErrorResponse(400, status.message());
  }

  Result<std::shared_ptr<ServerSession>> session =
      sessions_.Create(dataset, it->second, config, ttl_ms);
  if (!session.ok()) {
    if (session.status().code() == StatusCode::kFailedPrecondition) {
      return CapacityResponse(session.status().message(),
                              options_.http.retry_after_seconds);
    }
    return ErrorResponse(400, session.status().message());
  }

  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(session.value()->id));
  out.Set("dataset", JsonValue::Str(dataset));
  out.Set("ttl_ms", JsonValue::Number(
                        static_cast<double>(session.value()->ttl.count())));
  out.Set("num_records",
          JsonValue::Number(
              static_cast<double>(session.value()->db->num_records())));
  return HttpResponse::Json(201, out.Dump());
}

HttpResponse SubdexServer::HandleStep(const std::string& id,
                                      const HttpRequest& request,
                                      const CancellationToken& disconnect) {
  Result<JsonValue> parsed = ParseBodyObject(request);
  if (!parsed.ok()) return ErrorResponse(400, parsed.status().message());
  const JsonValue& body = parsed.value();

  SessionLease lease = sessions_.Acquire(id);
  if (!lease) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  const SubjectiveDatabase& db = *lease->db;

  GroupSelection selection;
  if (const JsonValue* reco = body.Find("recommendation"); reco != nullptr) {
    if (body.Find("reviewers") != nullptr || body.Find("items") != nullptr) {
      return ErrorResponse(
          400, "'recommendation' and explicit queries are mutually exclusive");
    }
    double d = reco->number();
    if (!reco->is_number() || !(d >= 0) || d != std::floor(d)) {
      return ErrorResponse(400,
                           "'recommendation' must be a non-negative index");
    }
    MutexLock lock(lease->mu);
    if (!lease->has_last_step) {
      return ErrorResponse(
          400, "no previous step to take a recommendation from");
    }
    size_t index = static_cast<size_t>(d);
    if (index >= lease->last_step.recommendations.size()) {
      return ErrorResponse(
          400, "recommendation index " + std::to_string(index) +
                   " out of range (last step offered " +
                   std::to_string(lease->last_step.recommendations.size()) +
                   ")");
    }
    selection = lease->last_step.recommendations[index].operation.target;
  } else {
    // Read-only parse: the dataset's dictionaries are shared across every
    // session, so serving must never intern unseen values into them.
    for (const auto& [key, side] :
         {std::pair<const char*, Side>{"reviewers", Side::kReviewer},
          std::pair<const char*, Side>{"items", Side::kItem}}) {
      const JsonValue* v = body.Find(key);
      if (v == nullptr) continue;
      if (!v->is_string()) {
        return ErrorResponse(400, std::string("'") + key +
                                      "' must be a query string");
      }
      Result<Predicate> pred =
          ParsePredicateReadOnly(db.table(side), v->str());
      if (!pred.ok()) {
        return ErrorResponse(400, std::string("bad '") + key +
                                      "' query: " + pred.status().message());
      }
      (side == Side::kReviewer ? selection.reviewer_pred
                               : selection.item_pred) =
          std::move(pred).value();
    }
  }

  StepOptions options;
  options.token = disconnect;
  if (const JsonValue* v = body.Find("with_recommendations"); v != nullptr) {
    if (!v->is_bool()) {
      return ErrorResponse(400, "'with_recommendations' must be a boolean");
    }
    options.with_recommendations = v->bool_value();
  }
  if (const JsonValue* v = body.Find("deadline_ms"); v != nullptr) {
    if (!v->is_number() || !(v->number() > 0)) {
      return ErrorResponse(400, "'deadline_ms' must be a positive number");
    }
    options.deadline = Deadline::FromNowMs(v->number());
  }

  StepResult result = lease->engine->ExecuteStep(selection, options);
  ServerMetrics::Get().steps.Increment();
  lease->steps_executed.fetch_add(1, std::memory_order_relaxed);

  JsonValue out = RenderStepResult(id, db, result);
  if (!result.cancelled) {
    // A cancelled step produced nothing the client saw; keep the previous
    // step so its recommendation indexes stay valid.
    MutexLock lock(lease->mu);
    lease->last_step = std::move(result);
    lease->has_last_step = true;
  }
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleReset(const std::string& id) {
  SessionLease lease = sessions_.Acquire(id);
  if (!lease) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  lease->engine->ResetHistory();
  {
    MutexLock lock(lease->mu);
    lease->has_last_step = false;
    lease->last_step = StepResult();
  }
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(id));
  out.Set("reset", JsonValue::Bool(true));
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleDelete(const std::string& id) {
  if (!sessions_.Remove(id)) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(id));
  out.Set("deleted", JsonValue::Bool(true));
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleMetrics() {
  return HttpResponse::Text(
      200, MetricsRegistry::Global().Snapshot().ToPrometheusText());
}

HttpResponse SubdexServer::HandleHealthz() {
  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::Str("ok"));
  out.Set("sessions",
          JsonValue::Number(static_cast<double>(sessions_.ActiveCount())));
  JsonValue names = JsonValue::Array();
  for (const auto& [name, db] : datasets_) {
    // Discard justified: /healthz lists names only; sizes are on /metrics.
    (void)db;
    names.Append(JsonValue::Str(name));
  }
  out.Set("datasets", std::move(names));
  return HttpResponse::Json(200, out.Dump());
}

}  // namespace subdex
