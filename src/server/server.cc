#include "server/server.h"

#include <cmath>
#include <filesystem>
#include <utility>
#include <vector>

#include "engine/session_log.h"
#include "server/json.h"
#include "server/json_wire.h"
#include "storage/query_parser.h"
#include "util/metrics.h"

namespace subdex {

namespace {

struct ServerMetrics {
  Counter& steps;
  Counter& recovered;
  Counter& divergent;

  static ServerMetrics& Get() {
    static ServerMetrics m{
        MetricsRegistry::Global().GetCounter(
            "subdex_server_steps_total",
            "Exploration steps executed over the HTTP API"),
        MetricsRegistry::Global().GetCounter(
            "subdex_sessions_recovered_total",
            "Sessions rebuilt from their journal at startup"),
        MetricsRegistry::Global().GetCounter(
            "subdex_sessions_divergent_total",
            "Sessions whose journal failed replay verification (410)"),
    };
    return m;
  }
};

HttpResponse ErrorResponse(int status, const std::string& message) {
  JsonValue body = JsonValue::Object();
  body.Set("error", JsonValue::Str(message));
  return HttpResponse::Json(status, body.Dump());
}

HttpResponse CapacityResponse(const std::string& message,
                              int retry_after_seconds) {
  HttpResponse response = ErrorResponse(429, message);
  response.extra_headers.emplace_back("Retry-After",
                                      std::to_string(retry_after_seconds));
  return response;
}

/// 503 for durability failures (journal write failed, session read-only):
/// the state is intact in memory, the operator can free disk and restart,
/// so the condition is advertised as retryable.
HttpResponse UnavailableResponse(const std::string& message,
                                 int retry_after_seconds) {
  HttpResponse response = ErrorResponse(503, message);
  response.extra_headers.emplace_back("Retry-After",
                                      std::to_string(retry_after_seconds));
  return response;
}

/// Body -> JSON object. An empty body means "all defaults" (an object with
/// no members); anything else must parse as a JSON object.
Result<JsonValue> ParseBodyObject(const HttpRequest& request) {
  if (request.body.empty()) return JsonValue::Object();
  Result<JsonValue> parsed = JsonValue::Parse(request.body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return parsed;
}

/// Applies the request's "config" object onto the per-session engine
/// template. Only a safe allowlist of knobs is exposed — pruning schemes,
/// distance kinds and the like stay server-side; unknown keys are an error
/// rather than silently ignored (a typoed knob should not look accepted).
Status ApplyConfigOverrides(const JsonValue& config, size_t max_threads,
                            EngineConfig* engine) {
  size_t seed = static_cast<size_t>(engine->seed);
  const std::pair<const char*, size_t*> knobs[] = {
      {"k", &engine->k},
      {"o", &engine->o},
      {"l", &engine->l},
      {"num_phases", &engine->num_phases},
      {"num_threads", &engine->num_threads},
      {"seed", &seed},
      {"min_group_size", &engine->min_group_size},
      {"max_candidates", &engine->operations.max_candidates},
      {"group_cache_capacity", &engine->group_cache_capacity},
  };
  for (const auto& [key, value] : config.members()) {
    // Discard justified: values are read through the knob table below;
    // this pass only rejects typoed keys instead of silently ignoring them.
    (void)value;
    bool known = false;
    for (const auto& [name, target] : knobs) {
      // Discard justified: key-set validation only; `target` is written in
      // the WireCountField loop below.
      (void)target;
      if (key == name) known = true;
    }
    if (!known) {
      return Status::InvalidArgument("unknown config knob '" + key + "'");
    }
  }
  for (const auto& [name, target] : knobs) {
    Status status = WireCountField(config, name, target);
    if (!status.ok()) return status;
  }
  engine->seed = seed;
  if (engine->k == 0 || engine->o == 0 || engine->l == 0 ||
      engine->num_phases == 0) {
    return Status::InvalidArgument(
        "'k', 'o', 'l' and 'num_phases' must be at least 1");
  }
  if (engine->num_threads == 0) engine->num_threads = 1;
  if (engine->num_threads > max_threads) {
    return Status::InvalidArgument(
        "'num_threads' exceeds the server cap of " +
        std::to_string(max_threads));
  }
  return Status::Ok();
}

JsonValue RenderSelection(const SubjectiveDatabase& db,
                          const GroupSelection& selection) {
  JsonValue out = JsonValue::Object();
  out.Set("reviewers",
          JsonValue::Str(PredicateToQuery(db.table(Side::kReviewer),
                                          selection.reviewer_pred)));
  out.Set("items", JsonValue::Str(PredicateToQuery(db.table(Side::kItem),
                                                   selection.item_pred)));
  return out;
}

JsonValue RenderMap(const SubjectiveDatabase& db, const ScoredRatingMap& map) {
  const RatingMapKey& key = map.map.key();
  const Table& table = db.table(key.side);
  JsonValue out = JsonValue::Object();
  out.Set("side", JsonValue::Str(SideName(key.side)));
  out.Set("attribute",
          JsonValue::Str(table.schema().attribute(key.attribute).name));
  out.Set("dimension", JsonValue::Str(db.dimension_name(key.dimension)));
  out.Set("utility", JsonValue::Number(map.dw_utility));
  out.Set("group_size",
          JsonValue::Number(static_cast<double>(map.map.full_group_size())));
  JsonValue subgroups = JsonValue::Array();
  for (const Subgroup& sg : map.map.subgroups()) {
    JsonValue row = JsonValue::Object();
    row.Set("value", JsonValue::Str(
                         sg.value == kNullCode
                             ? "unspecified"
                             : table.dictionary(key.attribute).ValueOf(
                                   sg.value)));
    row.Set("count", JsonValue::Number(static_cast<double>(sg.count())));
    row.Set("average", JsonValue::Number(sg.average()));
    subgroups.Append(std::move(row));
  }
  out.Set("subgroups", std::move(subgroups));
  return out;
}

JsonValue RenderRecommendation(const SubjectiveDatabase& db,
                               const Recommendation& reco) {
  JsonValue out = JsonValue::Object();
  out.Set("kind", JsonValue::Str(OperationKindName(reco.operation.kind)));
  out.Set("target", RenderSelection(db, reco.operation.target));
  out.Set("utility", JsonValue::Number(reco.utility));
  out.Set("group_size",
          JsonValue::Number(static_cast<double>(reco.group_size)));
  return out;
}

JsonValue RenderStepResult(const std::string& session_id,
                           const SubjectiveDatabase& db,
                           const StepResult& result) {
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(session_id));
  out.Set("selection", RenderSelection(db, result.selection));
  out.Set("group_size",
          JsonValue::Number(static_cast<double>(result.group_size)));
  out.Set("elapsed_ms", JsonValue::Number(result.elapsed_ms));
  out.Set("degraded", JsonValue::Bool(result.degraded));
  out.Set("cancelled", JsonValue::Bool(result.cancelled));
  out.Set("cut_phase", JsonValue::Str(StepPhaseName(result.cut_phase)));
  JsonValue maps = JsonValue::Array();
  for (const ScoredRatingMap& map : result.maps) {
    maps.Append(RenderMap(db, map));
  }
  out.Set("maps", std::move(maps));
  JsonValue recos = JsonValue::Array();
  for (const Recommendation& reco : result.recommendations) {
    recos.Append(RenderRecommendation(db, reco));
  }
  out.Set("recommendations", std::move(recos));
  return out;
}

}  // namespace

SubdexServer::SubdexServer(Options options)
    : options_(std::move(options)),
      sessions_(options_.sessions),
      http_(options_.http,
            [this](const HttpRequest& request,
                   const CancellationToken& disconnect) {
              return Handle(request, disconnect);
            }) {}

SubdexServer::~SubdexServer() { Stop(); }

Status SubdexServer::RegisterDataset(
    const std::string& name, std::shared_ptr<const SubjectiveDatabase> db) {
  if (started_) {
    return Status::FailedPrecondition(
        "datasets must be registered before Start()");
  }
  if (name.empty()) return Status::InvalidArgument("dataset name is empty");
  if (db == nullptr || !db->finalized()) {
    return Status::InvalidArgument("dataset '" + name + "' is not finalized");
  }
  if (datasets_.count(name) > 0) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' is already registered");
  }
  if (datasets_.empty()) default_dataset_ = name;
  datasets_.emplace(name, std::move(db));
  return Status::Ok();
}

Status SubdexServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (datasets_.empty()) {
    return Status::FailedPrecondition(
        "no datasets registered; call RegisterDataset first");
  }
  if (options_.journal.enabled()) {
    Status recovered = RecoverSessions();
    if (!recovered.ok()) return recovered;
  }
  sessions_.Start();
  Status status = http_.Start();
  if (!status.ok()) {
    sessions_.Stop();
    return status;
  }
  started_ = true;
  return Status::Ok();
}

void SubdexServer::Stop() {
  if (!started_) return;
  // HTTP first so no new requests race the reaper shutdown; sessions (and
  // their engines) go down with the manager's destructor.
  http_.Stop();
  sessions_.Stop();
  started_ = false;
}

HttpResponse SubdexServer::Handle(const HttpRequest& request,
                                  const CancellationToken& disconnect) {
  const std::string& target = request.target;
  if (target == "/healthz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return HandleHealthz();
  }
  if (target == "/metrics") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return HandleMetrics();
  }
  if (target == "/sessions") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return HandleCreateSession(request);
  }
  if (target.rfind("/sessions/", 0) == 0) {
    std::string rest = target.substr(10);
    size_t slash = rest.find('/');
    std::string id = rest.substr(0, slash);
    std::string action =
        slash == std::string::npos ? "" : rest.substr(slash + 1);
    if (id.empty()) return ErrorResponse(404, "missing session id");
    if (auto divergent = divergent_.find(id); divergent != divergent_.end()) {
      // Crash recovery could not prove this session's replayed state
      // matches what its client saw; refusing beats serving a guess.
      return ErrorResponse(410, "session '" + id +
                                    "' failed crash recovery (" +
                                    divergent->second + ") and is gone");
    }
    if (action.empty()) {
      if (request.method == "GET") return HandleGetSession(id);
      if (request.method != "DELETE") {
        return ErrorResponse(405, "use GET or DELETE");
      }
      return HandleDelete(id);
    }
    if (action == "step") {
      if (request.method != "POST") return ErrorResponse(405, "use POST");
      return HandleStep(id, request, disconnect);
    }
    if (action == "reset") {
      if (request.method != "POST") return ErrorResponse(405, "use POST");
      return HandleReset(id);
    }
    return ErrorResponse(404, "unknown session action '" + action + "'");
  }
  return ErrorResponse(404, "unknown route '" + target + "'");
}

HttpResponse SubdexServer::HandleCreateSession(const HttpRequest& request) {
  Result<JsonValue> body = ParseBodyObject(request);
  if (!body.ok()) return ErrorResponse(400, body.status().message());

  std::string dataset = default_dataset_;
  if (const JsonValue* v = body.value().Find("dataset"); v != nullptr) {
    if (!v->is_string()) return ErrorResponse(400, "'dataset' must be a string");
    dataset = v->str();
  }
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return ErrorResponse(404, "unknown dataset '" + dataset + "'");
  }

  double ttl_ms = 0;
  if (Status status = WireMsField(body.value(), "ttl_ms", &ttl_ms);
      !status.ok()) {
    return ErrorResponse(400, status.message());
  }

  EngineConfig config = options_.engine;
  if (const JsonValue* v = body.value().Find("config"); v != nullptr) {
    if (!v->is_object()) return ErrorResponse(400, "'config' must be an object");
    Status status =
        ApplyConfigOverrides(*v, options_.max_threads_per_session, &config);
    if (!status.ok()) return ErrorResponse(400, status.message());
  }

  SessionManager::SessionSetup setup;
  if (options_.journal.enabled()) {
    setup = [this, &dataset, &config](ServerSession& session) -> Status {
      Result<std::unique_ptr<SessionJournal>> journal =
          SessionJournal::Start(options_.journal, session.id);
      if (!journal.ok()) return journal.status();
      session.journal = std::move(journal).value();
      // The create record carries everything replay needs to rebuild an
      // identical engine: dataset, resolved TTL, resolved config.
      Status created = session.journal->Append(MakeCreateRecord(
          dataset, static_cast<double>(session.ttl.count()), config));
      if (!created.ok()) {
        // Discard justified: the create is failing anyway; a leftover
        // empty segment is cleaned up by the next boot's scan.
        (void)session.journal->EraseFiles();
        session.journal.reset();
        return created;
      }
      // Human-readable mirror next to the journal; best-effort (its loss
      // never fails a session — the journal is the source of truth).
      session.mirror = std::make_unique<SessionLog>();
      Status sink = session.mirror->OpenSink(
          session.db.get(),
          SessionJournal::MirrorPath(options_.journal, session.id));
      if (!sink.ok()) session.mirror.reset();
      if (session.mirror != nullptr) {
        session.engine->AttachSessionLog(session.mirror.get());
      }
      return Status::Ok();
    };
  }

  Result<std::shared_ptr<ServerSession>> session =
      sessions_.Create(dataset, it->second, config, ttl_ms, setup);
  if (!session.ok()) {
    if (session.status().code() == StatusCode::kFailedPrecondition) {
      return CapacityResponse(session.status().message(),
                              options_.http.retry_after_seconds);
    }
    if (session.status().code() == StatusCode::kIoError) {
      return UnavailableResponse(
          "cannot persist session journal: " + session.status().message(),
          options_.http.retry_after_seconds);
    }
    return ErrorResponse(400, session.status().message());
  }

  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(session.value()->id));
  out.Set("dataset", JsonValue::Str(dataset));
  out.Set("ttl_ms", JsonValue::Number(
                        static_cast<double>(session.value()->ttl.count())));
  out.Set("num_records",
          JsonValue::Number(
              static_cast<double>(session.value()->db->num_records())));
  return HttpResponse::Json(201, out.Dump());
}

HttpResponse SubdexServer::HandleStep(const std::string& id,
                                      const HttpRequest& request,
                                      const CancellationToken& disconnect) {
  Result<JsonValue> parsed = ParseBodyObject(request);
  if (!parsed.ok()) return ErrorResponse(400, parsed.status().message());
  const JsonValue& body = parsed.value();

  SessionLease lease = sessions_.Acquire(id);
  if (!lease) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  if (lease->read_only.load(std::memory_order_acquire)) {
    return UnavailableResponse(
        "session '" + id + "' is read-only: its journal failed",
        options_.http.retry_after_seconds);
  }
  const SubjectiveDatabase& db = *lease->db;

  // Mutations serialize per session: journal order must equal
  // engine-commit order or replay could not reproduce the digest chain.
  MutexLock order(lease->order_mu);

  GroupSelection selection;
  if (const JsonValue* reco = body.Find("recommendation"); reco != nullptr) {
    if (body.Find("reviewers") != nullptr || body.Find("items") != nullptr) {
      return ErrorResponse(
          400, "'recommendation' and explicit queries are mutually exclusive");
    }
    Result<size_t> reco_index = WireIndex(*reco, "recommendation");
    if (!reco_index.ok()) {
      return ErrorResponse(400, reco_index.status().message());
    }
    MutexLock lock(lease->mu);
    if (!lease->has_last_step) {
      return ErrorResponse(
          400, "no previous step to take a recommendation from");
    }
    size_t index = reco_index.value();
    if (index >= lease->last_step.recommendations.size()) {
      return ErrorResponse(
          400, "recommendation index " + std::to_string(index) +
                   " out of range (last step offered " +
                   std::to_string(lease->last_step.recommendations.size()) +
                   ")");
    }
    selection = lease->last_step.recommendations[index].operation.target;
  } else {
    // Read-only parse: the dataset's dictionaries are shared across every
    // session, so serving must never intern unseen values into them.
    for (const auto& [key, side] :
         {std::pair<const char*, Side>{"reviewers", Side::kReviewer},
          std::pair<const char*, Side>{"items", Side::kItem}}) {
      const JsonValue* v = body.Find(key);
      if (v == nullptr) continue;
      if (!v->is_string()) {
        return ErrorResponse(400, std::string("'") + key +
                                      "' must be a query string");
      }
      Result<Predicate> pred =
          ParsePredicateReadOnly(db.table(side), v->str());
      if (!pred.ok()) {
        return ErrorResponse(400, std::string("bad '") + key +
                                      "' query: " + pred.status().message());
      }
      (side == Side::kReviewer ? selection.reviewer_pred
                               : selection.item_pred) =
          std::move(pred).value();
    }
  }

  StepOptions options;
  options.token = disconnect;
  if (const JsonValue* v = body.Find("with_recommendations"); v != nullptr) {
    if (!v->is_bool()) {
      return ErrorResponse(400, "'with_recommendations' must be a boolean");
    }
    options.with_recommendations = v->bool_value();
  }
  double deadline_ms = 0;
  if (Status status = WireMsField(body, "deadline_ms", &deadline_ms,
                                  WireSign::kPositive);
      !status.ok()) {
    return ErrorResponse(400, status.message());
  }
  if (deadline_ms > 0) options.deadline = Deadline::FromNowMs(deadline_ms);

  StepResult result = lease->engine->ExecuteStep(selection, options);
  ServerMetrics::Get().steps.Increment();
  lease->steps_executed.fetch_add(1, std::memory_order_relaxed);

  if (!result.cancelled && lease->journal != nullptr) {
    Status journaled = lease->journal->Append(MakeStepRecord(
        PredicateToQuery(db.table(Side::kReviewer),
                         result.selection.reviewer_pred),
        PredicateToQuery(db.table(Side::kItem), result.selection.item_pred),
        options.with_recommendations, result.degraded, result.digest));
    if (!journaled.ok()) {
      // The step ran but its durability record did not land. Answer 503 —
      // not-committed — so the client never treats unjournaled state as
      // durable, and latch the session read-only: one torn append means
      // anything written after it would sit behind a tear the reader must
      // treat as corruption.
      lease->read_only.store(true, std::memory_order_release);
      return UnavailableResponse("step executed but could not be journaled (" +
                                     journaled.message() +
                                     "); session is now read-only",
                                 options_.http.retry_after_seconds);
    }
  }

  JsonValue out = RenderStepResult(id, db, result);
  if (!result.cancelled) {
    out.Set("digest", JsonValue::Str(DigestToHex(result.digest)));
    // A cancelled step produced nothing the client saw; keep the previous
    // step so its recommendation indexes stay valid.
    MutexLock lock(lease->mu);
    lease->digests.push_back(result.digest);
    lease->last_step = std::move(result);
    lease->has_last_step = true;
  }
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleReset(const std::string& id) {
  SessionLease lease = sessions_.Acquire(id);
  if (!lease) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  if (lease->read_only.load(std::memory_order_acquire)) {
    return UnavailableResponse(
        "session '" + id + "' is read-only: its journal failed",
        options_.http.retry_after_seconds);
  }
  MutexLock order(lease->order_mu);
  if (lease->journal != nullptr) {
    // Journal-then-apply: ResetHistory cannot fail, so an acked reset is
    // always both durable and applied.
    Status journaled = lease->journal->Append(MakeResetRecord());
    if (!journaled.ok()) {
      lease->read_only.store(true, std::memory_order_release);
      return UnavailableResponse(
          "reset could not be journaled (" + journaled.message() +
              "); session is now read-only",
          options_.http.retry_after_seconds);
    }
  }
  lease->engine->ResetHistory();
  {
    MutexLock lock(lease->mu);
    lease->has_last_step = false;
    lease->last_step = StepResult();
    lease->digests.clear();
  }
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(id));
  out.Set("reset", JsonValue::Bool(true));
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleGetSession(const std::string& id) {
  SessionLease lease = sessions_.Acquire(id);
  if (!lease) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(id));
  out.Set("dataset", JsonValue::Str(lease->dataset));
  out.Set("ttl_ms",
          JsonValue::Number(static_cast<double>(lease->ttl.count())));
  out.Set("steps_executed",
          JsonValue::Number(static_cast<double>(
              lease->steps_executed.load(std::memory_order_relaxed))));
  out.Set("journaled", JsonValue::Bool(lease->journal != nullptr));
  out.Set("read_only", JsonValue::Bool(
                           lease->read_only.load(std::memory_order_acquire)));
  out.Set("recovered", JsonValue::Bool(lease->recovered));
  JsonValue digests = JsonValue::Array();
  {
    MutexLock lock(lease->mu);
    for (uint64_t digest : lease->digests) {
      digests.Append(JsonValue::Str(DigestToHex(digest)));
    }
  }
  out.Set("digests", std::move(digests));
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleDelete(const std::string& id) {
  SessionLease lease = sessions_.Acquire(id);
  if (!lease) {
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  {
    // Wait out any in-flight mutation so the tombstone lands last.
    MutexLock order(lease->order_mu);
    if (lease->journal != nullptr) {
      // Best-effort: the files are unlinked below anyway. The tombstone
      // only matters if the process dies between Remove and the unlink —
      // then the next boot finishes the erase instead of resurrecting.
      Status tombstone = lease->journal->Append(MakeDeleteRecord());
      // Discard justified: a failed tombstone degrades crash-DELETE
      // atomicity to at-least-once erase, which EraseFiles covers.
      (void)tombstone;
    }
  }
  if (!sessions_.Remove(id)) {
    // A concurrent DELETE won the race; it owns the cleanup.
    return ErrorResponse(404, "unknown or expired session '" + id + "'");
  }
  lease->DiscardDurability();
  JsonValue out = JsonValue::Object();
  out.Set("session_id", JsonValue::Str(id));
  out.Set("deleted", JsonValue::Bool(true));
  return HttpResponse::Json(200, out.Dump());
}

HttpResponse SubdexServer::HandleMetrics() {
  return HttpResponse::Text(
      200, MetricsRegistry::Global().Snapshot().ToPrometheusText());
}

HttpResponse SubdexServer::HandleHealthz() {
  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::Str("ok"));
  out.Set("sessions",
          JsonValue::Number(static_cast<double>(sessions_.ActiveCount())));
  JsonValue names = JsonValue::Array();
  for (const auto& [name, db] : datasets_) {
    // Discard justified: /healthz lists names only; sizes are on /metrics.
    (void)db;
    names.Append(JsonValue::Str(name));
  }
  out.Set("datasets", std::move(names));
  if (!divergent_.empty()) {
    out.Set("divergent_sessions",
            JsonValue::Number(static_cast<double>(divergent_.size())));
  }
  return HttpResponse::Json(200, out.Dump());
}

Status SubdexServer::RecoverSessions() {
  std::error_code ec;
  std::filesystem::create_directories(options_.journal.dir, ec);
  if (ec) {
    return Status::IoError("cannot create journal dir '" +
                           options_.journal.dir + "': " + ec.message());
  }
  Result<std::vector<SessionJournalReplay>> scanned =
      ScanJournalDir(options_.journal);
  if (!scanned.ok()) return scanned.status();
  for (SessionJournalReplay& replay : scanned.value()) {
    if (replay.deleted) {
      // A crash between the DELETE tombstone and the unlink: finish it.
      // Discard justified: a failed unlink just retries next boot.
      (void)SessionJournal::Erase(options_.journal, replay.session_id);
      continue;
    }
    RecoverOne(std::move(replay));
  }
  return Status::Ok();
}

void SubdexServer::MarkDivergent(const std::string& id,
                                 const std::string& reason) {
  // Discard justified: the session may or may not have been restored by
  // the time divergence is detected; either way it must not be served.
  (void)sessions_.Remove(id);
  divergent_.emplace(id, reason);
  recovery_.sessions_divergent++;
  ServerMetrics::Get().divergent.Increment();
}

void SubdexServer::RecoverOne(SessionJournalReplay replay) {
  const std::string& id = replay.session_id;
  if (replay.torn_tail) recovery_.torn_tails++;
  if (!replay.status.ok()) {
    return MarkDivergent(id, replay.status.message());
  }
  if (replay.records.empty()) {
    // Crash before the create record was acked: nothing durable existed,
    // so there is no session to resurrect — just drop the empty shell.
    // Discard justified: a failed unlink retries next boot.
    (void)SessionJournal::Erase(options_.journal, id);
    return;
  }

  const JsonValue& create = replay.records.front();
  const JsonValue* type = create.Find("type");
  if (type == nullptr || !type->is_string() || type->str() != "create") {
    return MarkDivergent(id, "first journal record is not a create");
  }
  const JsonValue* dataset = create.Find("dataset");
  if (dataset == nullptr || !dataset->is_string()) {
    return MarkDivergent(id, "create record has no dataset");
  }
  auto it = datasets_.find(dataset->str());
  if (it == datasets_.end()) {
    return MarkDivergent(id, "dataset '" + dataset->str() +
                                 "' is no longer registered");
  }
  double ttl_ms = 0;
  // Discard justified: journal replay is lenient about fields the create
  // handler would have rejected — a malformed ttl_ms in an old journal
  // keeps the default instead of failing recovery of the whole session.
  (void)WireMsField(create, "ttl_ms", &ttl_ms);
  EngineConfig config = options_.engine;
  if (const JsonValue* knobs = create.Find("config");
      knobs != nullptr && knobs->is_object()) {
    Status applied = ApplyConfigOverrides(
        *knobs, options_.max_threads_per_session, &config);
    if (!applied.ok()) {
      return MarkDivergent(id, "journaled config rejected: " +
                                   applied.message());
    }
  }

  Result<std::shared_ptr<ServerSession>> restored =
      sessions_.Restore(id, dataset->str(), it->second, config, ttl_ms);
  if (!restored.ok()) return MarkDivergent(id, restored.status().message());
  std::shared_ptr<ServerSession> session = std::move(restored).value();

  // Attach the mirror before replay so replayed steps regenerate the
  // human-readable log from scratch (OpenSink truncates). Best-effort,
  // like at create time.
  session->mirror = std::make_unique<SessionLog>();
  Status sink = session->mirror->OpenSink(
      session->db.get(), SessionJournal::MirrorPath(options_.journal, id));
  if (!sink.ok()) session->mirror.reset();
  if (session->mirror != nullptr) {
    session->engine->AttachSessionLog(session->mirror.get());
  }

  for (size_t i = 1; i < replay.records.size(); ++i) {
    const JsonValue& record = replay.records[i];
    // The scan validated every record has a string "type".
    const std::string& kind = record.Find("type")->str();
    if (kind == "reset") {
      session->engine->ResetHistory();
      MutexLock lock(session->mu);
      session->has_last_step = false;
      session->last_step = StepResult();
      session->digests.clear();
      continue;
    }
    if (kind != "step") {
      return MarkDivergent(id, "unexpected '" + kind + "' record at index " +
                                   std::to_string(i));
    }
    Status stepped = ReplayStep(*session, record);
    if (!stepped.ok()) return MarkDivergent(id, stepped.message());
  }

  // Continue the journal where it left off (Resume truncates any torn
  // tail). A session that replayed fine but cannot append again is still
  // worth serving — read-only.
  Result<std::unique_ptr<SessionJournal>> journal =
      SessionJournal::Resume(options_.journal, replay);
  if (journal.ok()) {
    session->journal = std::move(journal).value();
  } else {
    session->read_only.store(true, std::memory_order_release);
  }
  recovery_.sessions_recovered++;
  ServerMetrics::Get().recovered.Increment();
}

Status SubdexServer::ReplayStep(ServerSession& session,
                                const JsonValue& record) {
  const SubjectiveDatabase& db = *session.db;
  GroupSelection selection;
  for (const auto& [key, side] :
       {std::pair<const char*, Side>{"reviewers", Side::kReviewer},
        std::pair<const char*, Side>{"items", Side::kItem}}) {
    const JsonValue* v = record.Find(key);
    if (v == nullptr || !v->is_string()) {
      return Status::IoError(std::string("step record has no '") + key +
                             "' query");
    }
    if (v->str().empty()) continue;
    Result<Predicate> pred = ParsePredicateReadOnly(db.table(side), v->str());
    if (!pred.ok()) {
      return Status::IoError(std::string("journaled '") + key +
                             "' query no longer parses: " +
                             pred.status().message());
    }
    (side == Side::kReviewer ? selection.reviewer_pred
                             : selection.item_pred) = std::move(pred).value();
  }

  uint64_t expected = 0;
  const JsonValue* digest = record.Find("digest");
  if (digest == nullptr || !digest->is_string() ||
      !HexToDigest(digest->str(), &expected)) {
    return Status::IoError("step record has no valid digest");
  }
  bool was_degraded = false;
  if (const JsonValue* v = record.Find("degraded");
      v != nullptr && v->is_bool()) {
    was_degraded = v->bool_value();
  }

  StepOptions options;
  if (const JsonValue* v = record.Find("with_recommendations");
      v != nullptr && v->is_bool()) {
    options.with_recommendations = v->bool_value();
  }
  // No deadline and no cancellation token: replay always runs the step to
  // completion, which is exactly why a step that degraded live (deadline
  // cut) is exempt from digest verification below.
  StepResult result = session.engine->ExecuteStep(selection, options);
  if (!was_degraded && result.digest != expected) {
    return Status::IoError("digest mismatch: journal has " +
                           DigestToHex(expected) + ", replay produced " +
                           DigestToHex(result.digest));
  }

  {
    MutexLock lock(session.mu);
    // The chain keeps the *journaled* digest — the one the client was
    // acked with — even for degraded steps where replay ran further.
    session.digests.push_back(expected);
    session.last_step = std::move(result);
    session.has_last_step = true;
  }
  session.steps_executed.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace subdex
