#ifndef SUBDEX_BASELINES_NEXT_ACTION_BASELINE_H_
#define SUBDEX_BASELINES_NEXT_ACTION_BASELINE_H_

#include <string>
#include <vector>

#include "subjective/operation.h"
#include "subjective/rating_group.h"
#include "util/status.h"

namespace subdex {

/// Interface of the state-of-the-art next-action recommenders SubDEx is
/// compared against in Table 4. Both published baselines only produce
/// drill-down operations — the property the experiment exposes, since
/// finding a second irregular group requires rolling up first.
class NextActionBaseline {
 public:
  virtual ~NextActionBaseline() = default;

  SUBDEX_NODISCARD virtual std::string name() const = 0;

  /// Up to `count` next-action operations for the group, best first.
  SUBDEX_NODISCARD
  virtual std::vector<Operation> Recommend(const RatingGroup& group,
                                           size_t count) const = 0;
};

}  // namespace subdex

#endif  // SUBDEX_BASELINES_NEXT_ACTION_BASELINE_H_
