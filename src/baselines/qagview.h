#ifndef SUBDEX_BASELINES_QAGVIEW_H_
#define SUBDEX_BASELINES_QAGVIEW_H_

#include "baselines/next_action_baseline.h"

namespace subdex {

/// Qagview (Wen, Zhu, Roy & Yang, 2018), the result-summarization baseline
/// of Section 5.1: summarizes a query result (the rating group) with k
/// diverse clusters, each a pattern over the joined table. Following the
/// paper's configuration: all records weigh 1, the summary must cover at
/// least |g_R| / 2 records, and selected clusters must differ pairwise in
/// at least D = 2 attribute-values. Implemented as greedy weighted
/// max-coverage over 1- and 2-condition patterns subject to the pairwise
/// distance constraint; each cluster doubles as a drill-down operation.
class Qagview : public NextActionBaseline {
 public:
  struct Options {
    /// Pairwise cluster distance requirement D.
    size_t min_distance = 2;
    /// Required covered fraction of the group.
    double coverage_threshold = 0.5;
    /// 2-condition patterns are formed from the top singles by coverage.
    size_t max_pair_base = 24;
    /// Patterns covering fewer records are ignored.
    size_t min_cover = 5;
  };

  Qagview() : Qagview(Options()) {}
  explicit Qagview(Options options) : options_(options) {}

  std::string name() const override { return "Qagview"; }

  std::vector<Operation> Recommend(const RatingGroup& group,
                                   size_t count) const override;

 private:
  Options options_;
};

}  // namespace subdex

#endif  // SUBDEX_BASELINES_QAGVIEW_H_
