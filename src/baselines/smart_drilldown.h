#ifndef SUBDEX_BASELINES_SMART_DRILLDOWN_H_
#define SUBDEX_BASELINES_SMART_DRILLDOWN_H_

#include "baselines/next_action_baseline.h"

namespace subdex {

/// Smart Drill-Down (Joglekar, Garcia-Molina & Parameswaran, 2017), the
/// drill-down view-exploration baseline of Section 5.1: finds a k-size
/// rule list of "interesting" parts of the rating group. A rule is a
/// conjunction of attribute-value conditions; a rule list is interesting
/// when its rules (1) cover many records, (2) are specific (more non-star
/// conditions score higher) and (3) are diverse (each rule is scored by the
/// records it covers that no earlier rule covers). We implement the
/// marginal-coverage greedy over 1- and 2-condition rules:
///
///   score(rule | chosen) = |newly covered records| * (1 + w * specificity)
///
/// Every emitted operation drills into the current rating group.
class SmartDrillDown : public NextActionBaseline {
 public:
  struct Options {
    /// Specificity weight w.
    double specificity_weight = 0.3;
    /// 2-condition rules are formed from the top singles by coverage.
    size_t max_pair_base = 24;
    /// Rules covering fewer records are ignored.
    size_t min_cover = 5;
  };

  SmartDrillDown() : SmartDrillDown(Options()) {}
  explicit SmartDrillDown(Options options) : options_(options) {}

  std::string name() const override { return "SDD"; }

  std::vector<Operation> Recommend(const RatingGroup& group,
                                   size_t count) const override;

 private:
  Options options_;
};

}  // namespace subdex

#endif  // SUBDEX_BASELINES_SMART_DRILLDOWN_H_
