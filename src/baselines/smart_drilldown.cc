#include "baselines/smart_drilldown.h"

#include <algorithm>

#include "baselines/pattern.h"

namespace subdex {

std::vector<Operation> SmartDrillDown::Recommend(const RatingGroup& group,
                                                 size_t count) const {
  if (group.empty() || count == 0) return {};
  std::vector<Pattern> singles = EnumerateSingleConditionPatterns(group);

  // Candidate rules: all singles plus pairs built from the highest-coverage
  // singles (the published system explores rule refinements best-first; the
  // top-coverage frontier is where refinements with meaningful support
  // live).
  std::vector<Pattern> candidates;
  for (Pattern& p : singles) {
    if (p.count() >= options_.min_cover) candidates.push_back(p);
  }
  std::vector<size_t> by_cover(candidates.size());
  for (size_t i = 0; i < by_cover.size(); ++i) by_cover[i] = i;
  std::sort(by_cover.begin(), by_cover.end(), [&](size_t a, size_t b) {
    return candidates[a].count() > candidates[b].count();
  });
  size_t base = std::min(options_.max_pair_base, by_cover.size());
  for (size_t i = 0; i < base; ++i) {
    for (size_t j = i + 1; j < base; ++j) {
      const Pattern& a = candidates[by_cover[i]];
      const Pattern& b = candidates[by_cover[j]];
      if (a.conditions[0].first == b.conditions[0].first &&
          a.conditions[0].second.attribute == b.conditions[0].second.attribute) {
        continue;  // same attribute: conjunction is empty or redundant
      }
      Pattern pair = CombinePatterns(a, b);
      if (pair.count() >= options_.min_cover) {
        candidates.push_back(std::move(pair));
      }
    }
  }

  // Greedy rule-list construction on marginal coverage x specificity.
  Bitmap covered(group.size());
  std::vector<bool> used(candidates.size(), false);
  std::vector<Operation> out;
  while (out.size() < count) {
    double best_score = 0.0;
    size_t best = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      size_t fresh = 0;
      for (uint32_t pos : candidates[i].coverage.ToIndices()) {
        if (!covered.Test(pos)) ++fresh;
      }
      double score =
          static_cast<double>(fresh) *
          (1.0 + options_.specificity_weight *
                     static_cast<double>(candidates[i].specificity()));
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == candidates.size() || best_score <= 0.0) break;
    used[best] = true;
    covered.Or(candidates[best].coverage);
    out.push_back(candidates[best].ToOperation(group.selection()));
  }
  return out;
}

}  // namespace subdex
