#ifndef SUBDEX_BASELINES_PATTERN_H_
#define SUBDEX_BASELINES_PATTERN_H_

#include <utility>
#include <vector>

#include "subjective/operation.h"
#include "subjective/rating_group.h"
#include "util/bitmap.h"
#include "util/status.h"

namespace subdex {

/// A drill-down pattern over the joined (reviewer x item x rating) view of
/// a rating group: attribute-value conditions added on top of the current
/// selection, with the bitmap of group records it covers. Both baseline
/// recommenders (Smart Drill-Down and Qagview) search this pattern space —
/// the paper joins the three tables for them so each recommendation is a
/// simultaneous selection over the reviewer and item groups.
struct Pattern {
  std::vector<std::pair<Side, AttributeValue>> conditions;
  /// Coverage over positions of group.records().
  Bitmap coverage;

  SUBDEX_NODISCARD size_t specificity() const { return conditions.size(); }
  SUBDEX_NODISCARD size_t count() const { return coverage.Count(); }

  /// Number of conditions present in exactly one of the two patterns
  /// (Qagview's cluster-distance D).
  SUBDEX_NODISCARD size_t Difference(const Pattern& other) const;

  /// The next-step operation this pattern denotes: the current selection
  /// plus the pattern's conditions (a pure drill-down).
  SUBDEX_NODISCARD Operation ToOperation(const GroupSelection& current) const;
};

/// All single-condition patterns of `group`: every (side, attribute, value)
/// appearing in the group's records for attributes not already constrained
/// by the group's selection, with exact coverage bitmaps.
std::vector<Pattern> EnumerateSingleConditionPatterns(const RatingGroup& group);

/// Conjunction of two patterns (conditions on distinct attributes).
Pattern CombinePatterns(const Pattern& a, const Pattern& b);

}  // namespace subdex

#endif  // SUBDEX_BASELINES_PATTERN_H_
