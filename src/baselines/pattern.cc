#include "baselines/pattern.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace subdex {

size_t Pattern::Difference(const Pattern& other) const {
  size_t diff = 0;
  auto contains = [](const Pattern& p,
                     const std::pair<Side, AttributeValue>& c) {
    return std::find(p.conditions.begin(), p.conditions.end(), c) !=
           p.conditions.end();
  };
  for (const auto& c : conditions) {
    if (!contains(other, c)) ++diff;
  }
  for (const auto& c : other.conditions) {
    if (!contains(*this, c)) ++diff;
  }
  return diff;
}

Operation Pattern::ToOperation(const GroupSelection& current) const {
  GroupSelection target = current;
  for (const auto& [side, av] : conditions) {
    Predicate& pred =
        side == Side::kReviewer ? target.reviewer_pred : target.item_pred;
    pred = pred.With(av);
  }
  Operation op;
  op.target = std::move(target);
  op.kind =
      conditions.size() <= 1 ? OperationKind::kFilter : OperationKind::kComposite;
  op.num_edits = conditions.size();
  return op;
}

std::vector<Pattern> EnumerateSingleConditionPatterns(
    const RatingGroup& group) {
  const SubjectiveDatabase& db = group.db();
  std::vector<Pattern> patterns;
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& table = db.table(side);
    const Predicate& pred = group.selection().pred(side);
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      if (table.schema().attribute(a).type == AttributeType::kNumeric) {
        continue;
      }
      if (pred.ConstrainsAttribute(a)) continue;
      AttributeType type = table.schema().attribute(a).type;
      std::map<ValueCode, Bitmap> coverage;
      for (size_t pos = 0; pos < group.size(); ++pos) {
        RecordId rec = group.records()[pos];
        RowId row =
            side == Side::kReviewer ? db.reviewer_of(rec) : db.item_of(rec);
        auto mark = [&](ValueCode c) {
          auto it = coverage.find(c);
          if (it == coverage.end()) {
            it = coverage.emplace(c, Bitmap(group.size())).first;
          }
          it->second.Set(pos);
        };
        if (type == AttributeType::kCategorical) {
          ValueCode c = table.CodeAt(a, row);
          if (c != kNullCode) mark(c);
        } else {
          for (ValueCode c : table.MultiCodesAt(a, row)) mark(c);
        }
      }
      for (auto& [code, bits] : coverage) {
        Pattern p;
        p.conditions = {{side, AttributeValue{a, code}}};
        p.coverage = std::move(bits);
        patterns.push_back(std::move(p));
      }
    }
  }
  return patterns;
}

Pattern CombinePatterns(const Pattern& a, const Pattern& b) {
  SUBDEX_CHECK(a.coverage.size() == b.coverage.size());
  Pattern out;
  out.conditions = a.conditions;
  out.conditions.insert(out.conditions.end(), b.conditions.begin(),
                        b.conditions.end());
  out.coverage = a.coverage;
  out.coverage.And(b.coverage);
  return out;
}

}  // namespace subdex
