#include "baselines/qagview.h"

#include <algorithm>

#include "baselines/pattern.h"

namespace subdex {

std::vector<Operation> Qagview::Recommend(const RatingGroup& group,
                                          size_t count) const {
  if (group.empty() || count == 0) return {};
  std::vector<Pattern> singles = EnumerateSingleConditionPatterns(group);

  std::vector<Pattern> candidates;
  for (Pattern& p : singles) {
    if (p.count() >= options_.min_cover) candidates.push_back(p);
  }
  std::vector<size_t> by_cover(candidates.size());
  for (size_t i = 0; i < by_cover.size(); ++i) by_cover[i] = i;
  std::sort(by_cover.begin(), by_cover.end(), [&](size_t a, size_t b) {
    return candidates[a].count() > candidates[b].count();
  });
  size_t base = std::min(options_.max_pair_base, by_cover.size());
  for (size_t i = 0; i < base; ++i) {
    for (size_t j = i + 1; j < base; ++j) {
      const Pattern& a = candidates[by_cover[i]];
      const Pattern& b = candidates[by_cover[j]];
      if (a.conditions[0].first == b.conditions[0].first &&
          a.conditions[0].second.attribute ==
              b.conditions[0].second.attribute) {
        continue;
      }
      Pattern pair = CombinePatterns(a, b);
      if (pair.count() >= options_.min_cover) {
        candidates.push_back(std::move(pair));
      }
    }
  }

  // Greedy max-coverage under the pairwise distance constraint, until both
  // the cluster budget and the coverage threshold are satisfied.
  size_t needed = static_cast<size_t>(options_.coverage_threshold *
                                      static_cast<double>(group.size()));
  Bitmap covered(group.size());
  std::vector<Pattern> chosen;
  std::vector<bool> used(candidates.size(), false);
  std::vector<Operation> out;
  while (out.size() < count) {
    double best_gain = 0.0;
    size_t best = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      bool far_enough = true;
      for (const Pattern& c : chosen) {
        if (candidates[i].Difference(c) < options_.min_distance) {
          far_enough = false;
          break;
        }
      }
      if (!far_enough) continue;
      size_t fresh = 0;
      for (uint32_t pos : candidates[i].coverage.ToIndices()) {
        if (!covered.Test(pos)) ++fresh;
      }
      if (static_cast<double>(fresh) > best_gain) {
        best_gain = static_cast<double>(fresh);
        best = i;
      }
    }
    if (best == candidates.size()) break;
    used[best] = true;
    covered.Or(candidates[best].coverage);
    chosen.push_back(candidates[best]);
    out.push_back(candidates[best].ToOperation(group.selection()));
    if (covered.Count() >= needed && out.size() >= count) break;
  }
  return out;
}

}  // namespace subdex
