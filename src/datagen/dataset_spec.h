#ifndef SUBDEX_DATAGEN_DATASET_SPEC_H_
#define SUBDEX_DATAGEN_DATASET_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace subdex {

/// Shape of one synthetic (multi-)categorical attribute.
struct AttributeSpec {
  std::string name;
  /// Number of distinct values; value popularity follows Zipf(zipf_s).
  size_t num_values = 2;
  bool multi_valued = false;
  /// Values per cell for multi-valued attributes (1..max_multi, uniform).
  size_t max_multi = 3;
  double zipf_s = 1.0;
  /// Optional human-readable value names; generated names
  /// ("<attr>_v<i>") fill the remainder.
  std::vector<std::string> value_names;
};

/// Full description of a synthetic subjective database. The built-in specs
/// (specs.h) reproduce the published shape of the paper's datasets
/// (Table 2): attribute counts, value cardinalities, rating dimensions and
/// relation sizes.
struct DatasetSpec {
  std::string name;
  std::vector<AttributeSpec> reviewer_attributes;
  std::vector<AttributeSpec> item_attributes;
  std::vector<std::string> dimensions;
  size_t num_reviewers = 100;
  size_t num_items = 50;
  size_t num_ratings = 1000;
  /// Every reviewer receives at least this many ratings before the rest are
  /// assigned by popularity (MovieLens guarantees 20 per reviewer).
  size_t min_ratings_per_reviewer = 1;
  int scale = 5;

  // --- ground-truth rating model -----------------------------------------
  /// Probability that an (attribute value, dimension) pair carries a
  /// latent rating bias.
  double bias_probability = 0.35;
  /// Std-dev of the latent biases.
  double bias_stddev = 0.55;
  /// Per-record observation noise.
  double noise_stddev = 0.9;
  /// When true, dimensions beyond the first ("overall") are not stored
  /// directly: review text is synthesized from the model's target scores
  /// and the dimensions are extracted back from the text with the
  /// VADER-style pipeline — the paper's Yelp/Hotel ingestion path.
  bool extract_dimensions_from_text = false;

  /// Returns a proportionally shrunken copy (for fast unit tests):
  /// relation sizes scaled by `factor`, attribute shapes untouched.
  SUBDEX_NODISCARD DatasetSpec Scaled(double factor) const;
};

}  // namespace subdex

#endif  // SUBDEX_DATAGEN_DATASET_SPEC_H_
