#include "datagen/transforms.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/random.h"

namespace subdex {

namespace {

// Rebuilds one entity table keeping `attrs` (indices into src's schema) and
// `rows` (old row ids, ascending). Values are folded modulo `max_values`
// when max_values > 0.
Table RebuildTable(const Table& src, const std::vector<size_t>& attrs,
                   const std::vector<RowId>& rows, size_t max_values) {
  std::vector<AttributeDef> defs;
  for (size_t a : attrs) defs.push_back(src.schema().attribute(a));
  Table out{Schema(defs)};

  auto fold = [&](size_t attr, ValueCode code) -> std::string {
    const Dictionary& dict = src.dictionary(attr);
    size_t folded = static_cast<size_t>(code);
    if (max_values > 0 && dict.size() > max_values) {
      folded %= max_values;
    }
    return dict.ValueOf(static_cast<ValueCode>(folded));
  };

  for (RowId row : rows) {
    std::vector<Value> cells;
    cells.reserve(attrs.size());
    for (size_t a : attrs) {
      switch (src.schema().attribute(a).type) {
        case AttributeType::kCategorical: {
          ValueCode c = src.CodeAt(a, row);
          if (c == kNullCode) {
            cells.emplace_back(std::monostate{});
          } else {
            cells.emplace_back(fold(a, c));
          }
          break;
        }
        case AttributeType::kMultiCategorical: {
          std::vector<std::string> values;
          for (ValueCode c : src.MultiCodesAt(a, row)) {
            values.push_back(fold(a, c));
          }
          if (values.empty()) {
            cells.emplace_back(std::monostate{});
          } else {
            cells.emplace_back(std::move(values));
          }
          break;
        }
        case AttributeType::kNumeric:
          cells.emplace_back(src.NumericAt(a, row));
          break;
      }
    }
    Status st = out.AppendRow(cells);
    SUBDEX_CHECK_OK(st);
  }
  return out;
}

std::vector<size_t> AllAttributes(const Table& t) {
  std::vector<size_t> v(t.num_attributes());
  std::iota(v.begin(), v.end(), 0);
  return v;
}

std::vector<RowId> AllRows(const Table& t) {
  std::vector<RowId> v(t.num_rows());
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

std::vector<std::string> Dimensions(const SubjectiveDatabase& db) {
  std::vector<std::string> dims;
  for (size_t d = 0; d < db.num_dimensions(); ++d) {
    dims.push_back(db.dimension_name(d));
  }
  return dims;
}

// Copies rating records into `dst`, remapping reviewer rows through
// `reviewer_map` (old -> new; kNullCode-like -1 means dropped).
void CopyRatings(const SubjectiveDatabase& src, SubjectiveDatabase* dst,
                 const std::vector<int64_t>& reviewer_map) {
  std::vector<double> scores(src.num_dimensions());
  for (RecordId r = 0; r < src.num_records(); ++r) {
    int64_t new_reviewer = reviewer_map[src.reviewer_of(r)];
    if (new_reviewer < 0) continue;
    for (size_t d = 0; d < src.num_dimensions(); ++d) {
      scores[d] = src.score(d, r);
    }
    Status st = dst->AddRating(static_cast<RowId>(new_reviewer),
                               src.item_of(r), scores);
    SUBDEX_CHECK_OK(st);
  }
}

std::vector<int64_t> IdentityMap(size_t n) {
  std::vector<int64_t> m(n);
  std::iota(m.begin(), m.end(), int64_t{0});
  return m;
}

}  // namespace

std::unique_ptr<SubjectiveDatabase> SampleReviewers(
    const SubjectiveDatabase& src, double fraction, uint64_t seed) {
  SUBDEX_CHECK(fraction > 0.0 && fraction <= 1.0);
  Rng rng(seed);
  std::vector<RowId> kept;
  std::vector<int64_t> reviewer_map(src.num_reviewers(), -1);
  for (RowId u = 0; u < src.num_reviewers(); ++u) {
    if (rng.UniformDouble() < fraction) {
      reviewer_map[u] = static_cast<int64_t>(kept.size());
      kept.push_back(u);
    }
  }
  if (kept.empty()) {  // keep at least one reviewer
    kept.push_back(0);
    reviewer_map[0] = 0;
  }

  auto out = std::make_unique<SubjectiveDatabase>(
      src.reviewers().schema(), src.items().schema(), Dimensions(src),
      src.scale());
  out->reviewers() = RebuildTable(src.reviewers(),
                                  AllAttributes(src.reviewers()), kept, 0);
  out->items() = RebuildTable(src.items(), AllAttributes(src.items()),
                              AllRows(src.items()), 0);
  CopyRatings(src, out.get(), reviewer_map);
  out->FinalizeIndexes();
  return out;
}

std::unique_ptr<SubjectiveDatabase> DropAttributes(
    const SubjectiveDatabase& src, size_t keep_total, uint64_t seed) {
  size_t total =
      src.reviewers().num_attributes() + src.items().num_attributes();
  SUBDEX_CHECK(keep_total >= 2 && keep_total <= total);
  Rng rng(seed);

  // Pick one attribute per side first so both tables stay explorable, then
  // fill the remainder uniformly.
  std::vector<std::pair<int, size_t>> pool;  // (side, attr)
  for (size_t a = 0; a < src.reviewers().num_attributes(); ++a) {
    pool.push_back({0, a});
  }
  for (size_t a = 0; a < src.items().num_attributes(); ++a) {
    pool.push_back({1, a});
  }
  rng.Shuffle(&pool);
  std::vector<size_t> keep_reviewer;
  std::vector<size_t> keep_item;
  for (const auto& [side, attr] : pool) {
    bool need_reviewer = keep_reviewer.empty();
    bool need_item = keep_item.empty();
    size_t chosen = keep_reviewer.size() + keep_item.size();
    size_t remaining = keep_total - chosen;
    if (remaining == 0) break;
    // Reserve slots for the still-missing sides.
    size_t reserved = (need_reviewer ? 1 : 0) + (need_item ? 1 : 0);
    if (side == 0) {
      if (need_reviewer || remaining > reserved) keep_reviewer.push_back(attr);
    } else {
      if (need_item || remaining > reserved) keep_item.push_back(attr);
    }
  }
  std::sort(keep_reviewer.begin(), keep_reviewer.end());
  std::sort(keep_item.begin(), keep_item.end());

  auto build_schema = [](const Table& t, const std::vector<size_t>& attrs) {
    std::vector<AttributeDef> defs;
    for (size_t a : attrs) defs.push_back(t.schema().attribute(a));
    return Schema(defs);
  };
  auto out = std::make_unique<SubjectiveDatabase>(
      build_schema(src.reviewers(), keep_reviewer),
      build_schema(src.items(), keep_item), Dimensions(src), src.scale());
  out->reviewers() = RebuildTable(src.reviewers(), keep_reviewer,
                                  AllRows(src.reviewers()), 0);
  out->items() =
      RebuildTable(src.items(), keep_item, AllRows(src.items()), 0);
  CopyRatings(src, out.get(), IdentityMap(src.num_reviewers()));
  out->FinalizeIndexes();
  return out;
}

std::unique_ptr<SubjectiveDatabase> LimitAttributeValues(
    const SubjectiveDatabase& src, size_t max_values,
    // Folding is deterministic; the seed exists for interface symmetry
    // with the other transforms.
    [[maybe_unused]] uint64_t seed) {
  SUBDEX_CHECK(max_values >= 1);
  auto out = std::make_unique<SubjectiveDatabase>(
      src.reviewers().schema(), src.items().schema(), Dimensions(src),
      src.scale());
  out->reviewers() =
      RebuildTable(src.reviewers(), AllAttributes(src.reviewers()),
                   AllRows(src.reviewers()), max_values);
  out->items() = RebuildTable(src.items(), AllAttributes(src.items()),
                              AllRows(src.items()), max_values);
  CopyRatings(src, out.get(), IdentityMap(src.num_reviewers()));
  out->FinalizeIndexes();
  return out;
}

}  // namespace subdex
