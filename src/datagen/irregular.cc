#include "datagen/irregular.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/random.h"

namespace subdex {

std::string IrregularGroup::Describe(const SubjectiveDatabase& db) const {
  return std::string(SideName(side)) + " group " +
         description.ToString(db.table(side)) + ", dimension '" +
         db.dimension_name(dimension) + "', " +
         std::to_string(members.size()) + " members";
}

namespace {

// Picks a 2-3 attribute description anchored at a random row so the group
// is guaranteed non-empty.
bool TryBuildDescription(const SubjectiveDatabase& db, Side side,
                         size_t num_attrs, Rng* rng, Predicate* out) {
  const Table& table = db.table(side);
  if (table.num_rows() == 0) return false;
  RowId anchor = rng->UniformU32(static_cast<uint32_t>(table.num_rows()));

  std::vector<size_t> usable;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    if (table.schema().attribute(a).type == AttributeType::kNumeric) continue;
    usable.push_back(a);
  }
  if (usable.size() < num_attrs) return false;
  rng->Shuffle(&usable);

  std::vector<AttributeValue> conjuncts;
  for (size_t a : usable) {
    if (conjuncts.size() == num_attrs) break;
    AttributeType type = table.schema().attribute(a).type;
    ValueCode code = kNullCode;
    if (type == AttributeType::kCategorical) {
      code = table.CodeAt(a, anchor);
    } else {
      const auto& codes = table.MultiCodesAt(a, anchor);
      if (!codes.empty()) {
        code = codes[rng->UniformU32(static_cast<uint32_t>(codes.size()))];
      }
    }
    if (code == kNullCode) continue;
    conjuncts.push_back({a, code});
  }
  if (conjuncts.size() != num_attrs) return false;
  *out = Predicate(std::move(conjuncts));
  return true;
}

}  // namespace

std::vector<IrregularGroup> PlantIrregularGroups(
    SubjectiveDatabase* db, const IrregularPlantingOptions& options,
    uint64_t seed) {
  SUBDEX_CHECK(db != nullptr && db->finalized());
  SUBDEX_CHECK(options.min_description >= 1 &&
               options.min_description <= options.max_description);
  Rng rng(seed);
  std::vector<IrregularGroup> planted;
  std::set<std::string> used_descriptions;

  const size_t max_attempts = 500 * std::max<size_t>(1, options.count);
  size_t attempts = 0;
  while (planted.size() < options.count && attempts < max_attempts) {
    ++attempts;
    Side side = planted.size() % 2 == 0 ? Side::kReviewer : Side::kItem;
    const Table& table = db->table(side);
    size_t num_attrs =
        options.min_description +
        rng.UniformU32(static_cast<uint32_t>(options.max_description -
                                             options.min_description + 1));
    Predicate description;
    if (!TryBuildDescription(*db, side, num_attrs, &rng, &description)) {
      continue;
    }
    std::string key = std::string(SideName(side)) + "|" +
                      description.ToString(table);
    if (used_descriptions.count(key) > 0) continue;

    std::vector<RowId> members =
        db->MatchRows(side, description).ToIndices();
    size_t min_members = std::max<size_t>(
        options.min_members,
        static_cast<size_t>(options.min_member_fraction *
                            static_cast<double>(table.num_rows())));
    size_t max_members = std::max<size_t>(
        min_members, static_cast<size_t>(options.max_member_fraction *
                                         static_cast<double>(table.num_rows())));
    if (members.size() < min_members || members.size() > max_members) {
      continue;
    }

    IrregularGroup group;
    group.side = side;
    group.description = description;
    group.dimension = rng.UniformU32(
        static_cast<uint32_t>(db->num_dimensions()));
    group.members = std::move(members);
    for (RowId row : group.members) {
      const std::vector<RecordId>& records =
          side == Side::kReviewer ? db->RecordsOfReviewer(row)
                                  : db->RecordsOfItem(row);
      for (RecordId rec : records) {
        db->SetScore(group.dimension, rec, 1);
        group.affected_records.push_back(rec);
      }
    }
    if (group.affected_records.empty()) continue;  // memberless in R
    used_descriptions.insert(key);
    planted.push_back(std::move(group));
  }
  return planted;
}

}  // namespace subdex
