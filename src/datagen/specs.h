#ifndef SUBDEX_DATAGEN_SPECS_H_
#define SUBDEX_DATAGEN_SPECS_H_

#include "datagen/dataset_spec.h"

namespace subdex {

/// MovieLens-100K-shaped spec (Table 2): 12 attributes across both tables,
/// max 29 values per attribute, 1 rating dimension, |R|=100K, |U|=943,
/// |I|=1682, with the paper's enrichments (age group / state / city from
/// demographics, release year and decade on movies) and >=20 ratings per
/// reviewer.
DatasetSpec MovielensSpec();

/// Yelp-restaurants-shaped spec (Table 2): 24 attributes, max 13 values,
/// 4 rating dimensions (overall + food/service/ambiance extracted from
/// synthesized review text through the VADER-style pipeline), |R|=200500,
/// |U|=150318, |I|=93.
DatasetSpec YelpSpec();

/// Hotel-Reviews-shaped spec (Table 2): 8 attributes, max 62 values,
/// 4 rating dimensions (overall + cleanliness/food/comfort via the text
/// pipeline), |R|=35912, |U|=15493, |I|=879.
DatasetSpec HotelSpec();

}  // namespace subdex

#endif  // SUBDEX_DATAGEN_SPECS_H_
