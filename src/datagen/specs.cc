#include "datagen/specs.h"

namespace subdex {

namespace {

AttributeSpec Categorical(std::string name, size_t num_values,
                          std::vector<std::string> value_names = {},
                          double zipf_s = 1.0) {
  AttributeSpec a;
  a.name = std::move(name);
  a.num_values = num_values;
  a.value_names = std::move(value_names);
  a.zipf_s = zipf_s;
  return a;
}

AttributeSpec Multi(std::string name, size_t num_values, size_t max_multi,
                    std::vector<std::string> value_names = {}) {
  AttributeSpec a = Categorical(std::move(name), num_values,
                                std::move(value_names));
  a.multi_valued = true;
  a.max_multi = max_multi;
  return a;
}

}  // namespace

DatasetSpec MovielensSpec() {
  DatasetSpec spec;
  spec.name = "movielens";
  // 7 reviewer attributes + 5 item attributes = 12 (Table 2), max 29 values.
  spec.reviewer_attributes = {
      Categorical("gender", 2, {"F", "M"}),
      Categorical("age_group", 7,
                  {"under18", "18-24", "25-34", "35-44", "45-49", "50-55",
                   "56+"}),
      Categorical("occupation", 21,
                  {"student", "engineer", "programmer", "educator", "artist",
                   "administrator", "writer", "librarian", "scientist",
                   "lawyer", "doctor", "healthcare", "executive", "marketing",
                   "technician", "retired", "salesman", "entertainment",
                   "homemaker", "none", "other"}),
      Categorical("state", 29),
      Categorical("city", 25),
      Categorical("zip_region", 10),
      Categorical("activity_level", 3, {"light", "regular", "heavy"}),
  };
  spec.item_attributes = {
      Multi("genre", 18, 3,
            {"action", "adventure", "animation", "children", "comedy",
             "crime", "documentary", "drama", "fantasy", "film-noir",
             "horror", "musical", "mystery", "romance", "sci-fi", "thriller",
             "war", "western"}),
      Categorical("release_decade", 8,
                  {"1920s", "1930s", "1940s", "1950s", "1960s", "1970s",
                   "1980s", "1990s"}),
      Categorical("release_year", 29),
      Categorical("language", 5,
                  {"english", "french", "spanish", "german", "japanese"}),
      Categorical("length_class", 3, {"short", "standard", "long"}),
  };
  spec.dimensions = {"overall"};
  spec.num_reviewers = 943;
  spec.num_items = 1682;
  spec.num_ratings = 100000;
  spec.min_ratings_per_reviewer = 20;
  return spec;
}

DatasetSpec YelpSpec() {
  DatasetSpec spec;
  spec.name = "yelp";
  // 12 reviewer + 12 item attributes = 24 (Table 2), max 13 values.
  spec.reviewer_attributes = {
      Categorical("gender", 3, {"F", "M", "unspecified"}),
      Categorical("age_group", 6,
                  {"young", "adult", "middle_aged", "senior", "teen",
                   "unknown"}),
      Categorical("occupation", 13,
                  {"student", "programmer", "teacher", "artist", "lawyer",
                   "nurse", "chef", "manager", "driver", "designer",
                   "retired", "writer", "other"}),
      Categorical("state", 10),
      Categorical("city", 13),
      Categorical("zip_region", 13),
      Categorical("member_since", 8),
      Categorical("elite_status", 2, {"elite", "regular"}),
      Categorical("fans_level", 4, {"none", "few", "many", "influencer"}),
      Categorical("review_count_level", 5,
                  {"first-timer", "casual", "active", "frequent", "power"}),
      Categorical("avg_stars_level", 5,
                  {"harsh", "critical", "balanced", "generous", "gushing"}),
      Categorical("platform", 3, {"web", "ios", "android"}),
  };
  spec.item_attributes = {
      Multi("cuisine", 13, 3,
            {"american", "italian", "japanese", "mexican", "chinese", "thai",
             "indian", "french", "mediterranean", "korean", "vietnamese",
             "burgers", "pizza"}),
      Categorical("neighborhood", 13,
                  {"williamsburg", "soho", "kips_bay", "tribeca", "chelsea",
                   "midtown", "harlem", "astoria", "bushwick", "flatiron",
                   "east_village", "west_village", "financial_district"}),
      Categorical("price_range", 4, {"$", "$$", "$$$", "$$$$"}),
      Categorical("noise_level", 3, {"quiet", "average", "loud"}),
      Multi("ambience", 7, 2,
            {"casual", "romantic", "trendy", "classy", "intimate", "touristy",
             "hipster"}),
      Categorical("parking", 3, {"street", "lot", "valet"}),
      Categorical("wifi", 2, {"free", "no"}),
      Categorical("alcohol", 3, {"full_bar", "beer_and_wine", "none"}),
      Categorical("reservations", 2, {"yes", "no"}),
      Categorical("outdoor_seating", 2, {"yes", "no"}),
      Categorical("good_for_groups", 2, {"yes", "no"}),
      Categorical("delivery", 2, {"yes", "no"}),
  };
  spec.dimensions = {"overall", "food", "service", "ambiance"};
  spec.num_reviewers = 150318;
  spec.num_items = 93;
  spec.num_ratings = 200500;
  spec.min_ratings_per_reviewer = 1;
  spec.extract_dimensions_from_text = true;
  return spec;
}

DatasetSpec HotelSpec() {
  DatasetSpec spec;
  spec.name = "hotel";
  // 4 reviewer + 4 item attributes = 8 (Table 2), max 62 values.
  spec.reviewer_attributes = {
      Categorical("traveler_type", 5,
                  {"business", "couple", "family", "solo", "friends"}),
      Categorical("country", 62),
      Categorical("age_group", 6,
                  {"young", "adult", "middle_aged", "senior", "teen",
                   "unknown"}),
      Categorical("membership", 3, {"none", "silver", "gold"}),
  };
  spec.item_attributes = {
      Categorical("city", 40),
      Categorical("star_class", 5, {"1-star", "2-star", "3-star", "4-star",
                                    "5-star"}),
      Categorical("chain", 12),
      Categorical("property_type", 6,
                  {"hotel", "resort", "motel", "inn", "b&b", "hostel"}),
  };
  spec.dimensions = {"overall", "cleanliness", "food", "comfort"};
  spec.num_reviewers = 15493;
  spec.num_items = 879;
  spec.num_ratings = 35912;
  spec.min_ratings_per_reviewer = 1;
  spec.extract_dimensions_from_text = true;
  return spec;
}

}  // namespace subdex
