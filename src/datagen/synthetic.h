#ifndef SUBDEX_DATAGEN_SYNTHETIC_H_
#define SUBDEX_DATAGEN_SYNTHETIC_H_

#include <memory>

#include "datagen/dataset_spec.h"
#include "subjective/subjective_db.h"

namespace subdex {

/// Generates a finalized synthetic subjective database from `spec`,
/// deterministically from `seed`.
///
/// Ground-truth model: every (side, attribute, value, dimension) tuple
/// carries a latent bias (0 with probability 1 - bias_probability, else
/// N(0, bias_stddev)), derived from the seed by hashing so no bias table is
/// materialized. A rating record's score for dimension d is
///   round(base_d + avg reviewer-value biases + avg item-value biases +
///         N(0, noise_stddev))
/// clamped into [1, scale], where base_d ~ N(3.5, 0.25) per dimension.
/// This produces the group-level rating structure (subgroups with genuinely
/// different distributions) that SubDEx's interestingness measures are
/// designed to surface.
///
/// With spec.extract_dimensions_from_text, each record's non-overall
/// dimensions go through the text round-trip: target scores -> synthetic
/// review -> VADER-style window extraction (Section 5.1's Yelp pipeline).
std::unique_ptr<SubjectiveDatabase> GenerateDataset(const DatasetSpec& spec,
                                                    uint64_t seed);

/// The latent bias of one (side, attribute, value, dimension) tuple —
/// exposed for tests that validate the generator against its model.
double LatentBias(const DatasetSpec& spec, uint64_t seed, Side side,
                  size_t attribute, ValueCode value, size_t dimension);

}  // namespace subdex

#endif  // SUBDEX_DATAGEN_SYNTHETIC_H_
