#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "text/review_extraction.h"
#include "text/review_generator.h"
#include "util/check.h"
#include "util/random.h"

namespace subdex {

DatasetSpec DatasetSpec::Scaled(double factor) const {
  SUBDEX_CHECK(factor > 0.0);
  DatasetSpec out = *this;
  auto scale_count = [factor](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(
                                   std::lround(static_cast<double>(n) * factor)));
  };
  out.num_reviewers = scale_count(num_reviewers);
  out.num_items = scale_count(num_items);
  out.num_ratings = scale_count(num_ratings);
  return out;
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Schema BuildSchema(const std::vector<AttributeSpec>& attrs) {
  std::vector<AttributeDef> defs;
  defs.reserve(attrs.size());
  for (const AttributeSpec& a : attrs) {
    defs.push_back({a.name, a.multi_valued ? AttributeType::kMultiCategorical
                                           : AttributeType::kCategorical});
  }
  return Schema(defs);
}

std::string ValueName(const AttributeSpec& attr, size_t v) {
  if (v < attr.value_names.size()) return attr.value_names[v];
  return attr.name + "_v" + std::to_string(v);
}

// Fills one entity table with `rows` rows whose attribute values follow
// each attribute's Zipf popularity.
void FillTable(Table* table, const std::vector<AttributeSpec>& attrs,
               size_t rows, Rng* rng) {
  std::vector<ZipfSampler> samplers;
  samplers.reserve(attrs.size());
  for (const AttributeSpec& a : attrs) {
    SUBDEX_CHECK(a.num_values >= 1);
    samplers.emplace_back(a.num_values, a.zipf_s);
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> cells;
    cells.reserve(attrs.size());
    for (size_t a = 0; a < attrs.size(); ++a) {
      const AttributeSpec& spec = attrs[a];
      if (spec.multi_valued) {
        size_t n = 1 + rng->UniformU32(static_cast<uint32_t>(
                           std::max<size_t>(1, spec.max_multi)));
        std::vector<std::string> values;
        for (size_t i = 0; i < n; ++i) {
          values.push_back(ValueName(spec, samplers[a].Sample(rng)));
        }
        cells.emplace_back(std::move(values));
      } else {
        cells.emplace_back(ValueName(spec, samplers[a].Sample(rng)));
      }
    }
    Status st = table->AppendRow(cells);
    SUBDEX_CHECK_OK(st);
  }
}

// Pre-interns every spec value so LatentBias can be computed from stable
// codes even for values that no row happens to use.
void InternAllValues(Table* table, const std::vector<AttributeSpec>& attrs) {
  for (size_t a = 0; a < attrs.size(); ++a) {
    for (size_t v = 0; v < attrs[a].num_values; ++v) {
      table->InternValue(a, ValueName(attrs[a], v));
    }
  }
}

double BiasFromHash(uint64_t h, double probability, double stddev) {
  Rng rng(h, /*stream=*/7);
  if (!rng.Bernoulli(probability)) return 0.0;
  return rng.Normal(0.0, stddev);
}

double SideBias(const DatasetSpec& spec, uint64_t seed, Side side,
                const Table& table, RowId row, size_t dimension) {
  double sum = 0.0;
  size_t terms = 0;
  uint64_t side_tag = side == Side::kReviewer ? 0x52 : 0x49;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    AttributeType type = table.schema().attribute(a).type;
    if (type == AttributeType::kCategorical) {
      ValueCode c = table.CodeAt(a, row);
      if (c == kNullCode) continue;
      uint64_t h = SplitMix64(seed ^ SplitMix64(side_tag) ^
                              SplitMix64((a << 24) ^ (static_cast<uint64_t>(c) << 8) ^
                                         dimension));
      sum += BiasFromHash(h, spec.bias_probability, spec.bias_stddev);
      ++terms;
    } else if (type == AttributeType::kMultiCategorical) {
      const auto& codes = table.MultiCodesAt(a, row);
      if (codes.empty()) continue;
      double local = 0.0;
      for (ValueCode c : codes) {
        uint64_t h = SplitMix64(seed ^ SplitMix64(side_tag) ^
                                SplitMix64((a << 24) ^ (static_cast<uint64_t>(c) << 8) ^
                                           dimension));
        local += BiasFromHash(h, spec.bias_probability, spec.bias_stddev);
      }
      sum += local / static_cast<double>(codes.size());
      ++terms;
    }
  }
  if (terms == 0) return 0.0;
  // Average over attributes keeps the aggregate bias on the same magnitude
  // regardless of how many attributes a dataset has, then rescale so that
  // single strong value biases remain visible in rating maps.
  return 3.0 * sum / static_cast<double>(terms);
}

}  // namespace

double LatentBias(const DatasetSpec& spec, uint64_t seed, Side side,
                  size_t attribute, ValueCode value, size_t dimension) {
  uint64_t side_tag = side == Side::kReviewer ? 0x52 : 0x49;
  uint64_t h = SplitMix64(seed ^ SplitMix64(side_tag) ^
                          SplitMix64((attribute << 24) ^
                                     (static_cast<uint64_t>(value) << 8) ^
                                     dimension));
  return BiasFromHash(h, spec.bias_probability, spec.bias_stddev);
}

std::unique_ptr<SubjectiveDatabase> GenerateDataset(const DatasetSpec& spec,
                                                    uint64_t seed) {
  SUBDEX_CHECK(!spec.dimensions.empty());
  SUBDEX_CHECK(spec.num_reviewers > 0 && spec.num_items > 0);
  auto db = std::make_unique<SubjectiveDatabase>(
      BuildSchema(spec.reviewer_attributes), BuildSchema(spec.item_attributes),
      spec.dimensions, spec.scale);

  Rng rng(seed);
  FillTable(&db->reviewers(), spec.reviewer_attributes, spec.num_reviewers,
            &rng);
  FillTable(&db->items(), spec.item_attributes, spec.num_items, &rng);
  InternAllValues(&db->reviewers(), spec.reviewer_attributes);
  InternAllValues(&db->items(), spec.item_attributes);

  // Per-dimension base level around the familiar ~3.5-star average.
  std::vector<double> base(spec.dimensions.size());
  for (size_t d = 0; d < base.size(); ++d) {
    Rng base_rng(SplitMix64(seed ^ (0xBA5Eu + d)));
    base[d] = 3.5 + base_rng.Normal(0.0, 0.25);
  }

  // Rating assignment: a guaranteed quota per reviewer, then the remainder
  // by Zipf popularity over reviewers; items always drawn by popularity.
  size_t quota_total = spec.min_ratings_per_reviewer * spec.num_reviewers;
  SUBDEX_CHECK_MSG(quota_total <= spec.num_ratings,
                   "num_ratings below the per-reviewer quota");
  ZipfSampler reviewer_sampler(spec.num_reviewers, 1.0);
  ZipfSampler item_sampler(spec.num_items, 1.0);

  std::vector<std::pair<RowId, RowId>> pairs;
  pairs.reserve(spec.num_ratings);
  for (size_t u = 0; u < spec.num_reviewers; ++u) {
    for (size_t q = 0; q < spec.min_ratings_per_reviewer; ++q) {
      pairs.emplace_back(static_cast<RowId>(u),
                         static_cast<RowId>(item_sampler.Sample(&rng)));
    }
  }
  while (pairs.size() < spec.num_ratings) {
    pairs.emplace_back(static_cast<RowId>(reviewer_sampler.Sample(&rng)),
                       static_cast<RowId>(item_sampler.Sample(&rng)));
  }
  rng.Shuffle(&pairs);

  // Optional text round-trip machinery for the non-overall dimensions.
  std::unique_ptr<ReviewGenerator> review_gen;
  std::unique_ptr<ReviewExtractor> extractor;
  if (spec.extract_dimensions_from_text && spec.dimensions.size() > 1) {
    std::vector<std::string> keywords(spec.dimensions.begin() + 1,
                                      spec.dimensions.end());
    review_gen = std::make_unique<ReviewGenerator>(keywords);
    std::vector<std::vector<std::string>> kw_sets;
    for (const std::string& k : keywords) kw_sets.push_back({k});
    extractor = std::make_unique<ReviewExtractor>(kw_sets, spec.scale);
  }

  std::vector<double> scores(spec.dimensions.size());
  std::vector<int> targets(spec.dimensions.size() > 1
                               ? spec.dimensions.size() - 1
                               : 0);
  for (const auto& [reviewer, item] : pairs) {
    for (size_t d = 0; d < spec.dimensions.size(); ++d) {
      double mu = base[d] +
                  SideBias(spec, seed, Side::kReviewer, db->reviewers(),
                           reviewer, d) +
                  SideBias(spec, seed, Side::kItem, db->items(), item, d);
      double raw = mu + rng.Normal(0.0, spec.noise_stddev);
      scores[d] = std::min(static_cast<double>(spec.scale),
                           std::max(1.0, std::round(raw)));
    }
    if (review_gen != nullptr) {
      for (size_t d = 1; d < spec.dimensions.size(); ++d) {
        targets[d - 1] = static_cast<int>(scores[d]);
      }
      std::string review = review_gen->Generate(targets, &rng);
      std::vector<double> extracted =
          extractor->ExtractScores(review, /*fallback=*/scores[0]);
      for (size_t d = 1; d < spec.dimensions.size(); ++d) {
        scores[d] = extracted[d - 1];
      }
    }
    Status st = db->AddRating(reviewer, item, scores);
    SUBDEX_CHECK_OK(st);
  }

  db->FinalizeIndexes();
  return db;
}

}  // namespace subdex
