#include "datagen/insights.h"

#include <algorithm>
#include <set>

#include "core/rating_map.h"
#include "util/check.h"
#include "util/random.h"

namespace subdex {

std::string PlantedInsight::Describe(const SubjectiveDatabase& db) const {
  const Table& table = db.table(side);
  return std::string(SideName(side)) + "s with " +
         table.schema().attribute(attribute).name + "=" +
         table.dictionary(attribute).ValueOf(value) + " have the " +
         (is_highest ? "highest" : "lowest") + " average '" +
         db.dimension_name(dimension) + "' rating";
}

namespace {

// True iff `value`'s subgroup is the strict extreme of the whole-database
// rating map grouped by (side, attribute) on `dimension`.
bool IsExtreme(const SubjectiveDatabase& db, Side side, size_t attribute,
               ValueCode value, size_t dimension, bool highest,
               double margin) {
  RatingGroup all = RatingGroup::Materialize(db, GroupSelection{});
  RatingMap map = RatingMap::Build(all, {side, attribute, dimension});
  double target_avg = 0.0;
  bool found = false;
  for (const Subgroup& sg : map.subgroups()) {
    if (sg.value == value) {
      target_avg = sg.average();
      found = true;
      break;
    }
  }
  if (!found) return false;
  for (const Subgroup& sg : map.subgroups()) {
    if (sg.value == value || sg.count() == 0) continue;
    if (highest && sg.average() > target_avg - margin) return false;
    if (!highest && sg.average() < target_avg + margin) return false;
  }
  return true;
}

}  // namespace

std::vector<PlantedInsight> PlantInsights(SubjectiveDatabase* db,
                                          const InsightPlantingOptions& options,
                                          uint64_t seed) {
  SUBDEX_CHECK(db != nullptr && db->finalized());
  Rng rng(seed);
  std::vector<PlantedInsight> planted;
  std::set<std::pair<int, size_t>> used_attrs;  // (side, attribute)

  const size_t max_attempts = 400 * std::max<size_t>(1, options.count);
  size_t attempts = 0;
  while (planted.size() < options.count && attempts < max_attempts) {
    ++attempts;
    Side side = rng.Bernoulli(0.5) ? Side::kReviewer : Side::kItem;
    const Table& table = db->table(side);
    if (table.num_attributes() == 0) continue;
    size_t attribute =
        rng.UniformU32(static_cast<uint32_t>(table.num_attributes()));
    if (table.schema().attribute(attribute).type == AttributeType::kNumeric) {
      continue;
    }
    if (used_attrs.count({side == Side::kReviewer ? 0 : 1, attribute}) > 0) {
      continue;
    }
    size_t num_values = table.DistinctValueCount(attribute);
    if (num_values < 2) continue;
    ValueCode value =
        static_cast<ValueCode>(rng.UniformU32(static_cast<uint32_t>(num_values)));
    size_t dimension =
        rng.UniformU32(static_cast<uint32_t>(db->num_dimensions()));
    bool highest = rng.Bernoulli(0.5);

    // Collect the subgroup's rating records.
    std::vector<RowId> rows =
        db->MatchRows(side, Predicate({{attribute, value}})).ToIndices();
    std::vector<RecordId> affected;
    for (RowId row : rows) {
      const std::vector<RecordId>& records =
          side == Side::kReviewer ? db->RecordsOfReviewer(row)
                                  : db->RecordsOfItem(row);
      affected.insert(affected.end(), records.begin(), records.end());
    }
    if (affected.size() < options.min_records) continue;

    // Shift the subgroup's scores, then verify the extreme really holds
    // (records belonging to other subgroups too — via multi-valued
    // attributes — can dampen the separation). Roll back on failure.
    std::vector<int> previous(affected.size());
    for (size_t i = 0; i < affected.size(); ++i) {
      previous[i] = db->score(dimension, affected[i]);
      int shifted =
          previous[i] + (highest ? options.shift : -options.shift);
      db->SetScore(dimension, affected[i], shifted);
    }
    if (!IsExtreme(*db, side, attribute, value, dimension, highest,
                   /*margin=*/0.25)) {
      for (size_t i = 0; i < affected.size(); ++i) {
        db->SetScore(dimension, affected[i], previous[i]);
      }
      continue;
    }

    PlantedInsight insight;
    insight.side = side;
    insight.attribute = attribute;
    insight.value = value;
    insight.dimension = dimension;
    insight.is_highest = highest;
    insight.affected_records = std::move(affected);
    used_attrs.insert({side == Side::kReviewer ? 0 : 1, attribute});
    planted.push_back(std::move(insight));
  }
  return planted;
}

}  // namespace subdex
