#ifndef SUBDEX_DATAGEN_TRANSFORMS_H_
#define SUBDEX_DATAGEN_TRANSFORMS_H_

#include <memory>

#include "subjective/subjective_db.h"

namespace subdex {

/// Workload transforms for the scalability study (Figure 10). Each returns
/// a fresh, finalized database derived from `src`.

/// Keeps a random `fraction` of reviewers and only their rating records —
/// the paper's database-size knob (Fig. 10a).
std::unique_ptr<SubjectiveDatabase> SampleReviewers(
    const SubjectiveDatabase& src, double fraction, uint64_t seed);

/// Keeps `keep_total` randomly chosen attributes across both tables (at
/// least one per side) — the #attributes knob, akin to the number of
/// GroupBys / candidate rating maps (Fig. 10b).
std::unique_ptr<SubjectiveDatabase> DropAttributes(
    const SubjectiveDatabase& src, size_t keep_total, uint64_t seed);

/// Folds every attribute's values so at most `max_values` distinct values
/// remain (surplus codes remapped onto the retained ones) — the
/// #attribute-values knob, akin to the number of candidate operations
/// (Fig. 10c).
std::unique_ptr<SubjectiveDatabase> LimitAttributeValues(
    const SubjectiveDatabase& src, size_t max_values, uint64_t seed);

}  // namespace subdex

#endif  // SUBDEX_DATAGEN_TRANSFORMS_H_
