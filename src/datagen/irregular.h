#ifndef SUBDEX_DATAGEN_IRREGULAR_H_
#define SUBDEX_DATAGEN_IRREGULAR_H_

#include <string>
#include <vector>

#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// An irregular group planted for Scenario I (Section 5.2): a reviewer or
/// item group described by 2-3 shared attribute-values whose rating scores
/// for one dimension have all been forced to the minimal value 1.
struct IrregularGroup {
  Side side = Side::kReviewer;
  Predicate description;
  size_t dimension = 0;
  std::vector<RowId> members;
  /// Rating records whose scores were forced to 1.
  std::vector<RecordId> affected_records;

  SUBDEX_NODISCARD std::string Describe(const SubjectiveDatabase& db) const;
};

struct IrregularPlantingOptions {
  size_t count = 2;
  /// The paper creates each irregular group with at least five members.
  size_t min_members = 5;
  /// Additionally, members must make up at least this fraction of their
  /// table, so the group leaves a signal the interestingness measures can
  /// pick up at realistic database sizes (5 members of MovieLens's 943
  /// reviewers is ~0.5%).
  double min_member_fraction = 0.005;
  /// Groups larger than this fraction of their table are rejected — an
  /// "irregular" group must stay special.
  double max_member_fraction = 0.05;
  /// Attribute-value pairs per description (2 or 3, chosen per group).
  size_t min_description = 2;
  size_t max_description = 3;
};

/// Plants irregular groups into a finalized database by selecting random
/// descriptions (sampling a seed row and copying 2-3 of its values, as the
/// paper selects attribute-value pairs uniformly at random) and forcing the
/// chosen dimension's score of every rating record of every member to 1.
/// Sides alternate reviewer/item so a pair of groups matches the paper's
/// task (one reviewer group + one item group). Descriptions never repeat.
std::vector<IrregularGroup> PlantIrregularGroups(
    SubjectiveDatabase* db, const IrregularPlantingOptions& options,
    uint64_t seed);

}  // namespace subdex

#endif  // SUBDEX_DATAGEN_IRREGULAR_H_
