#ifndef SUBDEX_DATAGEN_INSIGHTS_H_
#define SUBDEX_DATAGEN_INSIGHTS_H_

#include <string>
#include <vector>

#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// A planted Scenario-II insight (Section 5.2): one attribute's subgroup is
/// the extreme (highest or lowest average) of the rating map grouping the
/// whole database by that attribute on one dimension — the kind of
/// statement the paper's Kaggle EDA notebooks surface ("young adults gave
/// the highest food ratings to Williamsburg restaurants").
struct PlantedInsight {
  Side side = Side::kReviewer;
  size_t attribute = 0;
  ValueCode value = kNullCode;
  size_t dimension = 0;
  bool is_highest = true;
  /// Rating records shifted to create the insight.
  std::vector<RecordId> affected_records;

  SUBDEX_NODISCARD std::string Describe(const SubjectiveDatabase& db) const;
};

struct InsightPlantingOptions {
  /// The paper extracts 5 insights per dataset.
  size_t count = 5;
  /// Minimum rating records behind the extreme subgroup.
  size_t min_records = 20;
  /// Score shift applied to the subgroup's records (+ for highest,
  /// - for lowest).
  int shift = 3;
};

/// Plants insights into a finalized database by shifting the chosen
/// subgroup's scores and verifying the subgroup really becomes the map's
/// extreme. Each insight uses a distinct (side, attribute) so insights do
/// not mask one another.
std::vector<PlantedInsight> PlantInsights(SubjectiveDatabase* db,
                                          const InsightPlantingOptions& options,
                                          uint64_t seed);

}  // namespace subdex

#endif  // SUBDEX_DATAGEN_INSIGHTS_H_
