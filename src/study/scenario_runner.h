#ifndef SUBDEX_STUDY_SCENARIO_RUNNER_H_
#define SUBDEX_STUDY_SCENARIO_RUNNER_H_

#include <vector>

#include "baselines/next_action_baseline.h"
#include "engine/exploration_session.h"
#include "study/detection.h"
#include "study/simulated_user.h"
#include "util/status.h"

namespace subdex {

/// Which study task the subject performs (Section 5.2).
enum class ScenarioKind {
  /// Scenario I: identify planted irregular groups.
  kIrregularGroups,
  /// Scenario II: extract planted insights.
  kInsightExtraction,
};

/// The planted ground truth of one scenario instance. Exactly one of the
/// two vectors is consulted, per `kind`.
struct ScenarioTask {
  ScenarioKind kind = ScenarioKind::kIrregularGroups;
  std::vector<IrregularGroup> irregulars;
  std::vector<PlantedInsight> insights;

  SUBDEX_NODISCARD size_t total() const {
    return kind == ScenarioKind::kIrregularGroups ? irregulars.size()
                                                  : insights.size();
  }
};

/// Outcome of one simulated session.
struct ScenarioRunResult {
  /// Cumulative number of distinct findings identified after each step.
  std::vector<size_t> cumulative_found;
  /// Sum of per-step engine times.
  double total_elapsed_ms = 0.0;

  SUBDEX_NODISCARD size_t found() const {
    return cumulative_found.empty() ? 0 : cumulative_found.back();
  }
};

/// Runs one subject through `num_steps` exploration steps in the given
/// mode, starting from the whole database. At every step the subject
/// examines the displayed maps; each planted finding a map exposes is
/// identified with the subject's read probability (missed findings can be
/// re-noticed later). The next operation follows the mode: top-1
/// recommendation (Fully-Automated), the subject's pick among
/// recommendations or her own operation (Recommendation-Powered), or her
/// own operation only (User-Driven).
ScenarioRunResult RunScenario(const SubjectiveDatabase& db,
                              const ScenarioTask& task, ExplorationMode mode,
                              const UserProfile& profile, size_t num_steps,
                              const EngineConfig& engine_config);

/// Table 4 harness: like Fully-Automated RunScenario, but next operations
/// come from `baseline` while the displayed rating maps stay SubDEx's (the
/// paper fixes the displayed maps across all compared recommenders).
ScenarioRunResult RunScenarioWithBaseline(const SubjectiveDatabase& db,
                                          const ScenarioTask& task,
                                          const NextActionBaseline& baseline,
                                          const UserProfile& profile,
                                          size_t num_steps,
                                          const EngineConfig& engine_config);

}  // namespace subdex

#endif  // SUBDEX_STUDY_SCENARIO_RUNNER_H_
