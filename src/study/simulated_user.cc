#include "study/simulated_user.h"

#include <cmath>

namespace subdex {

SimulatedUser::SimulatedUser(const UserProfile& profile)
    : profile_(profile), rng_(profile.seed, /*stream=*/3) {}

double SimulatedUser::read_probability() const {
  // CS expertise dominates; domain knowledge nudges the rate only slightly
  // (the paper found results do not depend on it).
  double p = profile_.high_cs_expertise ? 0.80 : 0.60;
  if (profile_.high_domain_knowledge) p += 0.02;
  return p;
}

bool SimulatedUser::Notices(double engagement) {
  return rng_.Bernoulli(read_probability() * engagement);
}

std::optional<size_t> SimulatedUser::ChooseRecommendation(
    const std::vector<Recommendation>& recommendations,
    const std::vector<GroupSelection>& visited,
    std::optional<Side> hunt_side) {
  if (recommendations.empty()) return std::nullopt;
  // Recommendations that would merely revisit an already-examined
  // selection are skipped — the steering a Fully-Automated path cannot do.
  std::vector<size_t> fresh;
  for (size_t i = 0; i < recommendations.size(); ++i) {
    bool seen = false;
    for (const GroupSelection& v : visited) {
      if (recommendations[i].operation.target == v) {
        seen = true;
        break;
      }
    }
    if (!seen) fresh.push_back(i);
  }
  if (hunt_side.has_value() && fresh.size() > 1) {
    // Keep the recommendations that constrain the side the task still
    // needs, when any do.
    std::vector<size_t> on_side;
    for (size_t i : fresh) {
      if (!recommendations[i].operation.target.pred(*hunt_side).empty()) {
        on_side.push_back(i);
      }
    }
    if (!on_side.empty()) fresh = std::move(on_side);
  }
  // Experts trust the ranking a bit more and rarely go their own way.
  double p_top = profile_.high_cs_expertise ? 0.75 : 0.65;
  double p_any = profile_.high_cs_expertise ? 0.95 : 0.90;
  double roll = rng_.UniformDouble();
  if (fresh.empty()) {
    // Everything on offer is old news; usually strike out alone.
    return roll < 0.25 ? std::optional<size_t>(0) : std::nullopt;
  }
  if (roll < p_top) return fresh[0];
  if (roll < p_any) {
    return fresh[rng_.UniformU32(static_cast<uint32_t>(fresh.size()))];
  }
  return std::nullopt;  // performs an operation of her own
}

std::optional<GroupSelection> SimulatedUser::ChooseOwnOperation(
    const SubjectiveDatabase& db, const StepResult& step, bool purposeful) {
  double p_targeted =
      purposeful ? 0.9 : (profile_.high_cs_expertise ? 0.4 : 0.2);
  if (rng_.Bernoulli(p_targeted) && !step.maps.empty()) {
    // Drill into the most extreme (lowest- or highest-average, whichever is
    // farther from the midpoint) subgroup on display — the strategy a data
    // analyst without system guidance plausibly follows. Occasionally roll
    // up instead, to escape dead ends.
    if (!step.selection.reviewer_pred.empty() && rng_.Bernoulli(0.2)) {
      GroupSelection target = step.selection;
      const auto& conjuncts = target.reviewer_pred.conjuncts();
      size_t idx = rng_.UniformU32(static_cast<uint32_t>(conjuncts.size()));
      target.reviewer_pred =
          target.reviewer_pred.Without(conjuncts[idx].attribute);
      return target;
    }
    double mid = (1.0 + db.scale()) / 2.0;
    double best_extremeness = -1.0;
    Side best_side = Side::kReviewer;
    AttributeValue best_av;
    for (const ScoredRatingMap& scored : step.maps) {
      const RatingMapKey& key = scored.map.key();
      if (step.selection.pred(key.side).ConstrainsAttribute(key.attribute)) {
        continue;
      }
      for (const Subgroup& sg : scored.map.subgroups()) {
        if (sg.value == kNullCode || sg.count() < 3) continue;
        double extremeness = std::fabs(sg.average() - mid);
        if (extremeness > best_extremeness) {
          best_extremeness = extremeness;
          best_side = key.side;
          best_av = {key.attribute, sg.value};
        }
      }
    }
    if (best_extremeness >= 0.0) {
      GroupSelection target = step.selection;
      Predicate& pred = best_side == Side::kReviewer ? target.reviewer_pred
                                                     : target.item_pred;
      pred = pred.With(best_av);
      return target;
    }
  }

  // Wandering (or nothing on display): a uniformly random single-edit
  // operation.
  OperationEnumerationOptions options;
  options.max_edits = 1;
  options.seed = rng_.NextU32();
  std::vector<Operation> ops =
      EnumerateCandidateOperations(db, step.selection, options);
  if (ops.empty()) return std::nullopt;
  return ops[rng_.UniformU32(static_cast<uint32_t>(ops.size()))].target;
}

std::optional<size_t> SimulatedUser::ChooseRecommendationIndex(
    size_t num_recommendations) {
  if (num_recommendations == 0) return std::nullopt;
  // The same trust split as ChooseRecommendation: mostly the top pick,
  // sometimes a lower-ranked one, occasionally her own way.
  double p_top = profile_.high_cs_expertise ? 0.75 : 0.65;
  double p_any = profile_.high_cs_expertise ? 0.95 : 0.90;
  double roll = rng_.UniformDouble();
  if (roll < p_top) return 0;
  if (roll < p_any) {
    return rng_.UniformU32(static_cast<uint32_t>(num_recommendations));
  }
  return std::nullopt;
}

double SimulatedUser::NextThinkTimeMs(double mean_ms) {
  if (!(mean_ms > 0.0)) return 0.0;
  // Inverse-CDF exponential; log1p keeps u ~ 1 accurate and u = 0 finite.
  return -mean_ms * std::log1p(-rng_.UniformDouble());
}

}  // namespace subdex
