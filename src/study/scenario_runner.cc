#include "study/scenario_runner.h"

#include "util/check.h"

namespace subdex {

namespace {

// Attention multiplier per mode: a subject who picked the operation herself
// (or chose among recommendations) studies the displayed maps closely; one
// watching an auto-generated path skims.
double Engagement(ExplorationMode mode) {
  return mode == ExplorationMode::kFullyAutomated ? 0.75 : 1.0;
}

// Rolls the subject's attention over every finding the step exposes;
// updates `found` (one flag per planted finding).
void ExamineStep(const ScenarioTask& task, const StepResult& step,
                 SimulatedUser* user, std::vector<bool>* found,
                 double engagement) {
  size_t n = task.total();
  for (size_t i = 0; i < n; ++i) {
    if ((*found)[i]) continue;
    for (const ScoredRatingMap& scored : step.maps) {
      bool exposed =
          task.kind == ScenarioKind::kIrregularGroups
              ? ExposesIrregularGroup(step.selection, scored.map,
                                      task.irregulars[i])
              : ExposesInsight(scored.map, task.insights[i]);
      if (!exposed) continue;
      if (user->Notices(engagement)) (*found)[i] = true;
      break;  // one attention roll per finding per step
    }
  }
}

size_t CountFound(const std::vector<bool>& found) {
  size_t n = 0;
  for (bool f : found) {
    if (f) ++n;
  }
  return n;
}

}  // namespace

ScenarioRunResult RunScenario(const SubjectiveDatabase& db,
                              const ScenarioTask& task, ExplorationMode mode,
                              const UserProfile& profile, size_t num_steps,
                              const EngineConfig& engine_config) {
  SUBDEX_CHECK(num_steps >= 1);
  ExplorationSession session(&db, engine_config, mode);
  SimulatedUser user(profile);
  std::vector<bool> found(task.total(), false);
  std::vector<GroupSelection> visited;
  ScenarioRunResult result;

  const StepResult* step = &session.Start(GroupSelection{});
  size_t previously_found = 0;
  for (size_t s = 0;; ++s) {
    visited.push_back(step->selection);
    ExamineStep(task, *step, &user, &found, Engagement(mode));
    result.cumulative_found.push_back(CountFound(found));
    result.total_elapsed_ms += step->elapsed_ms;
    if (s + 1 >= num_steps) break;

    bool advanced = false;
    // A subject who just identified a finding considers that sub-task done
    // and usually restarts from the whole database to hunt for the rest —
    // the intervention Fully-Automated mode cannot perform (the paper's
    // explanation of why FA tops out at one irregular group).
    size_t now_found = CountFound(found);
    if (mode != ExplorationMode::kFullyAutomated &&
        now_found > previously_found && now_found < task.total() &&
        !(step->selection == GroupSelection{}) && user.rng()->Bernoulli(0.85)) {
      session.ApplyOperation(GroupSelection{});
      advanced = true;
    }
    previously_found = now_found;
    if (!advanced) {
      switch (mode) {
      case ExplorationMode::kFullyAutomated:
        advanced = session.ApplyRecommendation(0);
        break;
      case ExplorationMode::kRecommendationPowered: {
        // The side still owing findings, if the remaining targets agree.
        std::optional<Side> hunt_side;
        if (task.kind == ScenarioKind::kIrregularGroups) {
          bool want_reviewer = false;
          bool want_item = false;
          for (size_t i = 0; i < found.size(); ++i) {
            if (found[i]) continue;
            (task.irregulars[i].side == Side::kReviewer ? want_reviewer
                                                        : want_item) = true;
          }
          if (want_reviewer != want_item) {
            hunt_side = want_reviewer ? Side::kReviewer : Side::kItem;
          }
        }
        std::optional<size_t> pick =
            user.ChooseRecommendation(step->recommendations, visited,
                                      hunt_side);
        if (pick.has_value()) {
          advanced = session.ApplyRecommendation(*pick);
        }
        if (!advanced) {
          // A deliberate deviation from the ranking: the subject saw
          // something concrete in the displayed maps.
          std::optional<GroupSelection> own =
              user.ChooseOwnOperation(db, *step, /*purposeful=*/true);
          if (own.has_value()) {
            session.ApplyOperation(*own);
            advanced = true;
          }
        }
        break;
      }
      case ExplorationMode::kUserDriven: {
        std::optional<GroupSelection> own = user.ChooseOwnOperation(db, *step);
        if (own.has_value()) {
          session.ApplyOperation(*own);
          advanced = true;
        }
        break;
      }
      }
    }
    if (!advanced) break;
    step = &session.last();
  }
  return result;
}

ScenarioRunResult RunScenarioWithBaseline(const SubjectiveDatabase& db,
                                          const ScenarioTask& task,
                                          const NextActionBaseline& baseline,
                                          const UserProfile& profile,
                                          size_t num_steps,
                                          const EngineConfig& engine_config) {
  SUBDEX_CHECK(num_steps >= 1);
  SdeEngine engine(&db, engine_config);
  SimulatedUser user(profile);
  std::vector<bool> found(task.total(), false);
  ScenarioRunResult result;

  GroupSelection selection;
  for (size_t s = 0; s < num_steps; ++s) {
    // Displayed maps are SubDEx's regardless of the recommender under test.
    StepResult step = engine.ExecuteStep(selection, /*with_recommendations=*/false);
    // Baseline paths are auto-generated too; same engagement as FA.
    ExamineStep(task, step, &user, &found,
                Engagement(ExplorationMode::kFullyAutomated));
    result.cumulative_found.push_back(CountFound(found));
    result.total_elapsed_ms += step.elapsed_ms;
    if (s + 1 >= num_steps) break;

    RatingGroup group = RatingGroup::Materialize(db, selection);
    std::vector<Operation> ops = baseline.Recommend(group, 1);
    if (ops.empty()) break;
    selection = ops[0].target;
  }
  return result;
}

}  // namespace subdex
