#include "study/detection.h"

namespace subdex {

namespace {

// True iff every conjunct of `description` appears in `context`.
bool Implies(const Predicate& context, const Predicate& description) {
  return context.Contains(description);
}

}  // namespace

bool ExposesIrregularGroup(const GroupSelection& selection,
                           const RatingMap& map, const IrregularGroup& group,
                           const IrregularExposureOptions& options) {
  if (map.key().dimension != group.dimension) return false;
  if (map.group_size() == 0) return false;

  const Predicate& side_pred = selection.pred(group.side);

  // Case 1: the selection itself pins the irregular description — any map
  // of this dimension shows a floored overall distribution.
  if (Implies(side_pred, group.description)) {
    return map.overall().Mean() <= options.max_average;
  }

  // Case 2: the selection plus one displayed subgroup pins it. Only maps
  // grouping the irregular group's side can do this.
  if (map.key().side != group.side) return false;
  for (const Subgroup& sg : map.subgroups()) {
    if (sg.value == kNullCode) continue;
    if (sg.count() < options.min_count) continue;
    if (sg.average() > options.max_average) continue;
    Predicate context =
        side_pred.With({map.key().attribute, sg.value});
    if (Implies(context, group.description)) return true;
  }
  return false;
}

bool ExposesInsight(const RatingMap& map, const PlantedInsight& insight,
                    const InsightExposureOptions& options) {
  const RatingMapKey& key = map.key();
  if (key.side != insight.side || key.attribute != insight.attribute ||
      key.dimension != insight.dimension) {
    return false;
  }
  const Subgroup* target = nullptr;
  for (const Subgroup& sg : map.subgroups()) {
    if (sg.value == insight.value) {
      target = &sg;
      break;
    }
  }
  if (target == nullptr || target->count() < options.min_count) return false;
  for (const Subgroup& sg : map.subgroups()) {
    if (sg.value == insight.value || sg.count() < options.min_count) continue;
    if (insight.is_highest && sg.average() >= target->average()) return false;
    if (!insight.is_highest && sg.average() <= target->average()) return false;
  }
  return true;
}

}  // namespace subdex
