#ifndef SUBDEX_STUDY_EXPERIMENT_H_
#define SUBDEX_STUDY_EXPERIMENT_H_

#include <vector>

#include "study/scenario_runner.h"

namespace subdex {

/// Aggregate outcome of one treatment group (a set of subjects sharing the
/// same traits, dataset, scenario and mode — a cell of Figure 7).
struct TreatmentOutcome {
  double mean_found = 0.0;
  double stddev_found = 0.0;
  size_t subjects = 0;
};

/// Runs `subjects` simulated users (distinct seeds derived from `seed`)
/// through the scenario and averages the number of identified findings.
TreatmentOutcome RunTreatmentGroup(const SubjectiveDatabase& db,
                                   const ScenarioTask& task,
                                   ExplorationMode mode, bool high_cs,
                                   bool high_domain, size_t subjects,
                                   size_t num_steps,
                                   const EngineConfig& engine_config,
                                   uint64_t seed);

/// Average cumulative-recall curve over `subjects` runs: entry s is the
/// mean fraction of planted findings identified after step s+1 (Figure 8).
/// Sessions that end early hold their last value.
std::vector<double> AverageRecallCurve(const SubjectiveDatabase& db,
                                       const ScenarioTask& task,
                                       ExplorationMode mode, bool high_cs,
                                       size_t subjects, size_t num_steps,
                                       const EngineConfig& engine_config,
                                       uint64_t seed);

/// Table 4 aggregation: average findings with a baseline recommender
/// driving the path.
TreatmentOutcome RunBaselineTreatment(const SubjectiveDatabase& db,
                                      const ScenarioTask& task,
                                      const NextActionBaseline& baseline,
                                      size_t subjects, size_t num_steps,
                                      const EngineConfig& engine_config,
                                      uint64_t seed);

}  // namespace subdex

#endif  // SUBDEX_STUDY_EXPERIMENT_H_
