#ifndef SUBDEX_STUDY_DETECTION_H_
#define SUBDEX_STUDY_DETECTION_H_

#include "core/rating_map.h"
#include "datagen/insights.h"
#include "datagen/irregular.h"

namespace subdex {

/// Exposure predicates: whether a displayed rating map, shown under a given
/// selection, makes a planted finding visible to the subject. These model
/// what a perfectly attentive user could read off the screen; the simulated
/// user applies its own attention/skill probability on top.

struct IrregularExposureOptions {
  /// A subgroup reads as "irregular" when its average score is at most this
  /// (the planted groups score exactly 1, but mixed-in outside records can
  /// raise the average slightly).
  double max_average = 1.5;
  size_t min_count = 1;
};

/// The map exposes the irregular group when (a) it aggregates the group's
/// dimension, and (b) the group's description is implied by the on-screen
/// context: either by the current selection alone (then the map's overall
/// distribution is visibly floored), or by the selection plus one displayed
/// subgroup's grouping value, with that subgroup's average visibly floored.
bool ExposesIrregularGroup(const GroupSelection& selection,
                           const RatingMap& map, const IrregularGroup& group,
                           const IrregularExposureOptions& options = {});

struct InsightExposureOptions {
  /// Subgroups with fewer records don't register as evidence.
  size_t min_count = 5;
};

/// The map exposes the insight when it is exactly the map the insight is
/// about (same side, grouping attribute and dimension) and the insight's
/// subgroup is the displayed extreme in the planted direction.
bool ExposesInsight(const RatingMap& map, const PlantedInsight& insight,
                    const InsightExposureOptions& options = {});

}  // namespace subdex

#endif  // SUBDEX_STUDY_DETECTION_H_
