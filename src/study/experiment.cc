#include "study/experiment.h"

#include "util/stats.h"

namespace subdex {

namespace {

UserProfile MakeProfile(bool high_cs, bool high_domain, uint64_t seed,
                        size_t subject) {
  UserProfile profile;
  profile.high_cs_expertise = high_cs;
  profile.high_domain_knowledge = high_domain;
  profile.seed = seed * 1000003ULL + subject * 7919ULL + 11ULL;
  return profile;
}

TreatmentOutcome Aggregate(const std::vector<double>& found) {
  TreatmentOutcome out;
  out.subjects = found.size();
  out.mean_found = Mean(found);
  out.stddev_found = StdDev(found);
  return out;
}

}  // namespace

TreatmentOutcome RunTreatmentGroup(const SubjectiveDatabase& db,
                                   const ScenarioTask& task,
                                   ExplorationMode mode, bool high_cs,
                                   bool high_domain, size_t subjects,
                                   size_t num_steps,
                                   const EngineConfig& engine_config,
                                   uint64_t seed) {
  std::vector<double> found;
  found.reserve(subjects);
  for (size_t s = 0; s < subjects; ++s) {
    UserProfile profile = MakeProfile(high_cs, high_domain, seed, s);
    ScenarioRunResult run =
        RunScenario(db, task, mode, profile, num_steps, engine_config);
    found.push_back(static_cast<double>(run.found()));
  }
  return Aggregate(found);
}

std::vector<double> AverageRecallCurve(const SubjectiveDatabase& db,
                                       const ScenarioTask& task,
                                       ExplorationMode mode, bool high_cs,
                                       size_t subjects, size_t num_steps,
                                       const EngineConfig& engine_config,
                                       uint64_t seed) {
  std::vector<double> curve(num_steps, 0.0);
  double total = static_cast<double>(task.total());
  if (total == 0.0 || subjects == 0) return curve;
  for (size_t s = 0; s < subjects; ++s) {
    UserProfile profile = MakeProfile(high_cs, /*high_domain=*/s % 2 == 0,
                                      seed, s);
    ScenarioRunResult run =
        RunScenario(db, task, mode, profile, num_steps, engine_config);
    size_t last = 0;
    for (size_t step = 0; step < num_steps; ++step) {
      if (step < run.cumulative_found.size()) {
        last = run.cumulative_found[step];
      }
      curve[step] += static_cast<double>(last) / total;
    }
  }
  for (double& v : curve) v /= static_cast<double>(subjects);
  return curve;
}

TreatmentOutcome RunBaselineTreatment(const SubjectiveDatabase& db,
                                      const ScenarioTask& task,
                                      const NextActionBaseline& baseline,
                                      size_t subjects, size_t num_steps,
                                      const EngineConfig& engine_config,
                                      uint64_t seed) {
  std::vector<double> found;
  found.reserve(subjects);
  for (size_t s = 0; s < subjects; ++s) {
    UserProfile profile =
        MakeProfile(/*high_cs=*/s % 2 == 0, /*high_domain=*/s % 3 == 0, seed, s);
    ScenarioRunResult run = RunScenarioWithBaseline(
        db, task, baseline, profile, num_steps, engine_config);
    found.push_back(static_cast<double>(run.found()));
  }
  return Aggregate(found);
}

}  // namespace subdex
