#ifndef SUBDEX_STUDY_SIMULATED_USER_H_
#define SUBDEX_STUDY_SIMULATED_USER_H_

#include <optional>

#include "engine/sde_engine.h"
#include "util/random.h"
#include "util/status.h"

namespace subdex {

/// A subject of the (simulated) user study. The paper's Mechanical-Turk
/// subjects are replaced by a behavioral model with the two pre-qualified
/// traits — CS expertise and domain knowledge. Consistent with the paper's
/// findings, domain knowledge barely affects behavior; CS expertise governs
/// how reliably a subject reads findings off rating maps and how sensibly
/// she picks operations on her own.
struct UserProfile {
  bool high_cs_expertise = false;
  bool high_domain_knowledge = false;
  uint64_t seed = 1;
};

class SimulatedUser {
 public:
  explicit SimulatedUser(const UserProfile& profile);

  /// Chance of noticing a finding that a displayed map exposes.
  SUBDEX_NODISCARD double read_probability() const;

  /// One attention roll for one exposed finding. `engagement` scales the
  /// read probability: subjects who picked the operation themselves study
  /// the result closely (1.0), while passive consumption of an
  /// auto-generated path (Fully-Automated mode) lowers attention — the
  /// behavioral counterpart of the paper's finding that FA "is not
  /// flexible enough" and underperforms despite showing useful maps.
  bool Notices(double engagement = 1.0);

  /// Picks which recommendation to follow in Recommendation-Powered mode;
  /// returns nullopt when the subject prefers an operation of her own.
  /// The subject exercises the judgment Fully-Automated mode lacks: she
  /// skips recommendations whose target selection she has already examined
  /// (`visited`), preferring the highest-ranked fresh one, and when the
  /// task tells her which side still needs findings (`hunt_side`, e.g.
  /// "one reviewer group and one item group"), she prefers operations that
  /// constrain that side.
  std::optional<size_t> ChooseRecommendation(
      const std::vector<Recommendation>& recommendations,
      const std::vector<GroupSelection>& visited,
      std::optional<Side> hunt_side = std::nullopt);

  /// Picks the subject's own next operation. The "targeted" strategy
  /// drills into the most extreme displayed subgroup (or occasionally
  /// rolls up); the fallback is a uniformly random single-edit operation.
  ///
  /// `purposeful` models the difference the paper's study surfaces:
  /// a Recommendation-Powered subject deviates from the ranking only when
  /// she has spotted something concrete, so her own operations are always
  /// targeted. A User-Driven subject must pick every operation with
  /// nothing but the k maps as guidance — she cannot tell which of the
  /// hundreds of candidate operations are promising, so even experts
  /// wander: the targeted strategy is used with a probability that
  /// depends on CS expertise (0.4 expert / 0.2 novice).
  std::optional<GroupSelection> ChooseOwnOperation(
      const SubjectiveDatabase& db, const StepResult& step,
      bool purposeful = false);

  /// Wire-level variant of ChooseRecommendation for load drivers: the
  /// subject's trust in the ranking (same p_top / p_any probabilities)
  /// when only the COUNT of offered recommendations is visible — an HTTP
  /// client follows a recommendation by index and never sees the
  /// operation targets, so the visited-dedup of the full policy does not
  /// apply. nullopt means the subject abandons the ranked path (in a
  /// load session: restarts from the whole database).
  std::optional<size_t> ChooseRecommendationIndex(size_t num_recommendations);

  /// Think time before the subject's next operation, in milliseconds:
  /// exponentially distributed with the given mean. Interactive-
  /// exploration benchmarks (IDEBench) require think time between
  /// interactions — a user studies the displayed maps before acting, so
  /// back-to-back stepping mismeasures an interactive system. Drawn from
  /// the subject's seeded Rng: the whole think-time sequence is
  /// reproducible. A non-positive mean returns 0 (closed-loop saturation
  /// mode).
  double NextThinkTimeMs(double mean_ms);

  Rng* rng() { return &rng_; }

 private:
  UserProfile profile_;
  Rng rng_;
};

}  // namespace subdex

#endif  // SUBDEX_STUDY_SIMULATED_USER_H_
