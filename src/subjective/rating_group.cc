#include "subjective/rating_group.h"

#include <algorithm>

#include "util/check.h"

namespace subdex {

namespace {

// Counts attributes where the predicates disagree.
size_t PredicateEditDistance(const Predicate& a, const Predicate& b) {
  size_t edits = 0;
  for (const AttributeValue& av : a.conjuncts()) {
    bool found_attr = false;
    for (const AttributeValue& bv : b.conjuncts()) {
      if (bv.attribute == av.attribute) {
        found_attr = true;
        if (bv.code != av.code) ++edits;  // changed value
        break;
      }
    }
    if (!found_attr) ++edits;  // removed in b
  }
  for (const AttributeValue& bv : b.conjuncts()) {
    if (!a.ConstrainsAttribute(bv.attribute)) ++edits;  // added in b
  }
  return edits;
}

}  // namespace

size_t GroupSelection::EditDistance(const GroupSelection& other) const {
  return PredicateEditDistance(reviewer_pred, other.reviewer_pred) +
         PredicateEditDistance(item_pred, other.item_pred);
}

std::string GroupSelection::ToString(const SubjectiveDatabase& db) const {
  return "reviewers: " + reviewer_pred.ToString(db.reviewers()) +
         "; items: " + item_pred.ToString(db.items());
}

const RatingGroup::SharedRecords& RatingGroup::EmptyRecords() {
  static const SharedRecords kEmpty =
      std::make_shared<const std::vector<RecordId>>();
  return kEmpty;
}

RatingGroup RatingGroup::Materialize(const SubjectiveDatabase& db,
                                     GroupSelection selection) {
  std::vector<RecordId> records =
      db.MatchRecords(selection.reviewer_pred, selection.item_pred);
  return RatingGroup(&db, std::move(selection), std::move(records));
}

double RatingGroup::AverageScore(size_t d) const {
  SUBDEX_CHECK(db_ != nullptr);
  if (records_->empty()) return 0.0;
  double sum = 0.0;
  for (RecordId r : *records_) sum += db_->score(d, r);
  return sum / static_cast<double>(records_->size());
}

}  // namespace subdex
