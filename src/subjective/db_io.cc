#include "subjective/db_io.h"

#include <filesystem>
#include <fstream>

#include "storage/csv.h"
#include "util/string_util.h"

namespace subdex {

namespace {

constexpr int kFormatVersion = 1;

const char* TypeTag(AttributeType type) {
  switch (type) {
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kMultiCategorical:
      return "multi";
    case AttributeType::kNumeric:
      return "numeric";
  }
  return "categorical";
}

Result<AttributeType> ParseTypeTag(const std::string& tag) {
  if (tag == "categorical") return AttributeType::kCategorical;
  if (tag == "multi") return AttributeType::kMultiCategorical;
  if (tag == "numeric") return AttributeType::kNumeric;
  return Status::InvalidArgument("unknown attribute type '" + tag + "'");
}

void WriteSchema(std::ofstream& out, const char* prefix,
                 const Schema& schema) {
  for (const AttributeDef& attr : schema.attributes()) {
    out << prefix << ' ' << attr.name << ' ' << TypeTag(attr.type) << '\n';
  }
}

Status WriteRatings(const SubjectiveDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  out << "reviewer,item";
  for (size_t d = 0; d < db.num_dimensions(); ++d) {
    out << ',' << db.dimension_name(d);
  }
  out << '\n';
  for (RecordId r = 0; r < db.num_records(); ++r) {
    out << db.reviewer_of(r) << ',' << db.item_of(r);
    for (size_t d = 0; d < db.num_dimensions(); ++d) {
      out << ',' << db.score(d, r);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace

Status SaveDatabase(const SubjectiveDatabase& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  {
    std::ofstream manifest(dir + "/manifest.txt");
    if (!manifest) {
      return Status::IoError("cannot create '" + dir + "/manifest.txt'");
    }
    manifest << "subdex-db " << kFormatVersion << '\n';
    manifest << "scale " << db.scale() << '\n';
    manifest << "dimensions";
    for (size_t d = 0; d < db.num_dimensions(); ++d) {
      manifest << ' ' << db.dimension_name(d);
    }
    manifest << '\n';
    WriteSchema(manifest, "reviewer_attr", db.reviewers().schema());
    WriteSchema(manifest, "item_attr", db.items().schema());
    if (!manifest) {
      return Status::IoError("write to '" + dir + "/manifest.txt' failed");
    }
  }
  Status st = WriteCsv(db.reviewers(), dir + "/reviewers.csv");
  if (!st.ok()) return st;
  st = WriteCsv(db.items(), dir + "/items.csv");
  if (!st.ok()) return st;
  return WriteRatings(db, dir + "/ratings.csv");
}

Result<std::unique_ptr<SubjectiveDatabase>> LoadDatabase(
    const std::string& dir) {
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest) {
    return Status::IoError("cannot open '" + dir + "/manifest.txt'");
  }
  std::string line;
  if (!std::getline(manifest, line)) {
    return Status::InvalidArgument("empty manifest");
  }
  {
    std::vector<std::string> head = Split(std::string(Trim(line)), ' ');
    int version = 0;
    if (head.size() != 2 || head[0] != "subdex-db" ||
        !ParseInt(head[1], &version) || version != kFormatVersion) {
      return Status::InvalidArgument("unsupported manifest header '" + line +
                                     "'");
    }
  }
  int scale = 5;
  std::vector<std::string> dimensions;
  std::vector<AttributeDef> reviewer_attrs;
  std::vector<AttributeDef> item_attrs;
  while (std::getline(manifest, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(trimmed, ' ');
    const std::string& key = fields[0];
    if (key == "scale") {
      if (fields.size() != 2 || !ParseInt(fields[1], &scale)) {
        return Status::InvalidArgument("bad scale line '" + line + "'");
      }
    } else if (key == "dimensions") {
      dimensions.assign(fields.begin() + 1, fields.end());
    } else if (key == "reviewer_attr" || key == "item_attr") {
      if (fields.size() != 3) {
        return Status::InvalidArgument("bad attribute line '" + line + "'");
      }
      Result<AttributeType> type = ParseTypeTag(fields[2]);
      if (!type.ok()) return type.status();
      (key == "reviewer_attr" ? reviewer_attrs : item_attrs)
          .push_back({fields[1], type.value()});
    } else {
      return Status::InvalidArgument("unknown manifest key '" + key + "'");
    }
  }
  if (dimensions.empty()) {
    return Status::InvalidArgument("manifest lists no rating dimensions");
  }

  Result<Table> reviewers =
      ReadCsv(dir + "/reviewers.csv", Schema(reviewer_attrs));
  if (!reviewers.ok()) return reviewers.status();
  Result<Table> items = ReadCsv(dir + "/items.csv", Schema(item_attrs));
  if (!items.ok()) return items.status();

  auto db = std::make_unique<SubjectiveDatabase>(
      Schema(reviewer_attrs), Schema(item_attrs), dimensions, scale);
  db->reviewers() = std::move(reviewers).value();
  db->items() = std::move(items).value();

  std::ifstream ratings(dir + "/ratings.csv");
  if (!ratings) {
    return Status::IoError("cannot open '" + dir + "/ratings.csv'");
  }
  if (!std::getline(ratings, line)) {
    return Status::InvalidArgument("'ratings.csv' is empty");
  }
  size_t line_no = 1;
  std::vector<double> scores(dimensions.size());
  while (std::getline(ratings, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(std::string(Trim(line)), ',');
    if (fields.size() != 2 + dimensions.size()) {
      return Status::InvalidArgument("ratings.csv line " +
                                     std::to_string(line_no) + ": got " +
                                     std::to_string(fields.size()) +
                                     " fields");
    }
    int reviewer = 0;
    int item = 0;
    if (!ParseInt(fields[0], &reviewer) || !ParseInt(fields[1], &item) ||
        reviewer < 0 || item < 0) {
      return Status::InvalidArgument("ratings.csv line " +
                                     std::to_string(line_no) +
                                     ": bad row ids");
    }
    for (size_t d = 0; d < dimensions.size(); ++d) {
      int score = 0;
      if (!ParseInt(fields[2 + d], &score)) {
        return Status::InvalidArgument("ratings.csv line " +
                                       std::to_string(line_no) +
                                       ": bad score '" + fields[2 + d] + "'");
      }
      scores[d] = score;
    }
    Status st = db->AddRating(static_cast<RowId>(reviewer),
                              static_cast<RowId>(item), scores);
    if (!st.ok()) {
      return Status::InvalidArgument("ratings.csv line " +
                                     std::to_string(line_no) + ": " +
                                     st.message());
    }
  }
  db->FinalizeIndexes();
  return db;
}

}  // namespace subdex
