#include "subjective/db_io.h"

#include <filesystem>
#include <fstream>

#include "storage/csv.h"
#include "util/fault_point.h"
#include "util/string_util.h"

namespace subdex {

namespace {

constexpr int kFormatVersion = 1;

const char* TypeTag(AttributeType type) {
  switch (type) {
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kMultiCategorical:
      return "multi";
    case AttributeType::kNumeric:
      return "numeric";
  }
  return "categorical";
}

Result<AttributeType> ParseTypeTag(const std::string& tag) {
  if (tag == "categorical") return AttributeType::kCategorical;
  if (tag == "multi") return AttributeType::kMultiCategorical;
  if (tag == "numeric") return AttributeType::kNumeric;
  return Status::InvalidArgument("unknown attribute type '" + tag + "'");
}

void WriteSchema(std::ofstream& out, const char* prefix,
                 const Schema& schema) {
  for (const AttributeDef& attr : schema.attributes()) {
    out << prefix << ' ' << attr.name << ' ' << TypeTag(attr.type) << '\n';
  }
}

Status WriteRatings(const SubjectiveDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  out << "reviewer,item";
  for (size_t d = 0; d < db.num_dimensions(); ++d) {
    out << ',' << db.dimension_name(d);
  }
  out << '\n';
  for (RecordId r = 0; r < db.num_records(); ++r) {
    out << db.reviewer_of(r) << ',' << db.item_of(r);
    for (size_t d = 0; d < db.num_dimensions(); ++d) {
      out << ',' << db.score(d, r);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace

Status SaveDatabase(const SubjectiveDatabase& db, const std::string& dir) {
  SUBDEX_FAULT_POINT_STATUS("db_io.save");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  {
    std::ofstream manifest(dir + "/manifest.txt");
    if (!manifest) {
      return Status::IoError("cannot create '" + dir + "/manifest.txt'");
    }
    manifest << "subdex-db " << kFormatVersion << '\n';
    manifest << "scale " << db.scale() << '\n';
    manifest << "dimensions";
    for (size_t d = 0; d < db.num_dimensions(); ++d) {
      manifest << ' ' << db.dimension_name(d);
    }
    manifest << '\n';
    WriteSchema(manifest, "reviewer_attr", db.reviewers().schema());
    WriteSchema(manifest, "item_attr", db.items().schema());
    if (!manifest) {
      return Status::IoError("write to '" + dir + "/manifest.txt' failed");
    }
  }
  Status st = WriteCsv(db.reviewers(), dir + "/reviewers.csv");
  if (!st.ok()) return st;
  st = WriteCsv(db.items(), dir + "/items.csv");
  if (!st.ok()) return st;
  return WriteRatings(db, dir + "/ratings.csv");
}

Result<DbManifest> ParseManifest(std::istream& in) {
  SUBDEX_FAULT_POINT_STATUS("db_io.parse_manifest");
  // Every rejection names the 1-based manifest line and the offending
  // field, so a hand-edited manifest is fixable from the message alone.
  size_t line_no = 0;
  auto error = [&line_no](const std::string& message) {
    return Status::InvalidArgument("manifest line " + std::to_string(line_no) +
                                   ": " + message);
  };
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty manifest");
  }
  ++line_no;
  {
    std::vector<std::string> head = Split(std::string(Trim(line)), ' ');
    int version = 0;
    if (head.size() != 2 || head[0] != "subdex-db") {
      return error("unsupported header '" + line + "' (expected 'subdex-db " +
                   std::to_string(kFormatVersion) + "')");
    }
    if (!ParseInt(head[1], &version) || version != kFormatVersion) {
      return error("unsupported format version '" + head[1] + "' (expected " +
                   std::to_string(kFormatVersion) + ")");
    }
  }
  DbManifest m;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(trimmed, ' ');
    const std::string& key = fields[0];
    if (key == "scale") {
      if (fields.size() != 2) {
        return error("scale expects exactly one value, got " +
                     std::to_string(fields.size() - 1));
      }
      if (!ParseInt(fields[1], &m.scale)) {
        return error("bad scale value '" + fields[1] + "'");
      }
    } else if (key == "dimensions") {
      m.dimensions.assign(fields.begin() + 1, fields.end());
      // Split keeps empty fields, so "dimensions a  b" yields an empty name.
      for (size_t d = 0; d < m.dimensions.size(); ++d) {
        if (m.dimensions[d].empty()) {
          return error("empty dimension name (field " + std::to_string(d + 2) +
                       ")");
        }
      }
    } else if (key == "reviewer_attr" || key == "item_attr") {
      if (fields.size() != 3) {
        return error(key + " expects '<name> <type>', got " +
                     std::to_string(fields.size() - 1) + " fields");
      }
      if (fields[1].empty()) {
        return error(key + " has an empty attribute name");
      }
      Result<AttributeType> type = ParseTypeTag(fields[2]);
      if (!type.ok()) return error(type.status().message());
      (key == "reviewer_attr" ? m.reviewer_attrs : m.item_attrs)
          .push_back({fields[1], type.value()});
    } else {
      return error("unknown manifest key '" + key + "'");
    }
  }
  if (m.dimensions.empty()) {
    return Status::InvalidArgument("manifest lists no rating dimensions");
  }
  // The SubjectiveDatabase constructor CHECK-aborts outside this range;
  // untrusted manifests must be rejected with a Status instead.
  if (m.scale < 2 || m.scale > 100) {
    return Status::InvalidArgument("rating scale " + std::to_string(m.scale) +
                                   " out of range [2, 100]");
  }
  // Schema's constructor CHECK-aborts on duplicate attribute names.
  for (const std::vector<AttributeDef>* attrs :
       {&m.reviewer_attrs, &m.item_attrs}) {
    for (size_t i = 0; i < attrs->size(); ++i) {
      for (size_t j = i + 1; j < attrs->size(); ++j) {
        if ((*attrs)[i].name == (*attrs)[j].name) {
          return Status::InvalidArgument("duplicate attribute name '" +
                                         (*attrs)[i].name + "'");
        }
      }
    }
  }
  return m;
}

Status LoadRatingsCsv(std::istream& in, SubjectiveDatabase* db) {
  SUBDEX_FAULT_POINT_STATUS("db_io.load_ratings");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'ratings.csv' is empty");
  }
  size_t line_no = 1;
  std::vector<double> scores(db->num_dimensions());
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(std::string(Trim(line)), ',');
    if (fields.size() != 2 + scores.size()) {
      return Status::InvalidArgument(
          "ratings.csv line " + std::to_string(line_no) + ": got " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(2 + scores.size()));
    }
    int reviewer = 0;
    int item = 0;
    if (!ParseInt(fields[0], &reviewer) || reviewer < 0) {
      return Status::InvalidArgument("ratings.csv line " +
                                     std::to_string(line_no) +
                                     ": bad reviewer id '" + fields[0] + "'");
    }
    if (!ParseInt(fields[1], &item) || item < 0) {
      return Status::InvalidArgument("ratings.csv line " +
                                     std::to_string(line_no) +
                                     ": bad item id '" + fields[1] + "'");
    }
    for (size_t d = 0; d < scores.size(); ++d) {
      int score = 0;
      if (!ParseInt(fields[2 + d], &score)) {
        return Status::InvalidArgument("ratings.csv line " +
                                       std::to_string(line_no) +
                                       ": bad score '" + fields[2 + d] + "'");
      }
      scores[d] = score;
    }
    Status st = db->AddRating(static_cast<RowId>(reviewer),
                              static_cast<RowId>(item), scores);
    if (!st.ok()) {
      return Status::InvalidArgument("ratings.csv line " +
                                     std::to_string(line_no) + ": " +
                                     st.message());
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<SubjectiveDatabase>> LoadDatabase(
    const std::string& dir) {
  std::ifstream manifest_in(dir + "/manifest.txt");
  if (!manifest_in) {
    return Status::IoError("cannot open '" + dir + "/manifest.txt'");
  }
  Result<DbManifest> manifest = ParseManifest(manifest_in);
  if (!manifest.ok()) return manifest.status();
  const DbManifest& m = manifest.value();

  Result<Table> reviewers =
      ReadCsv(dir + "/reviewers.csv", Schema(m.reviewer_attrs));
  if (!reviewers.ok()) return reviewers.status();
  Result<Table> items = ReadCsv(dir + "/items.csv", Schema(m.item_attrs));
  if (!items.ok()) return items.status();

  auto db = std::make_unique<SubjectiveDatabase>(
      Schema(m.reviewer_attrs), Schema(m.item_attrs), m.dimensions, m.scale);
  db->reviewers() = std::move(reviewers).value();
  db->items() = std::move(items).value();

  std::ifstream ratings(dir + "/ratings.csv");
  if (!ratings) {
    return Status::IoError("cannot open '" + dir + "/ratings.csv'");
  }
  Status st = LoadRatingsCsv(ratings, db.get());
  if (!st.ok()) return st;
  db->FinalizeIndexes();
  return db;
}

}  // namespace subdex
