#include "subjective/operation.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace subdex {

const char* OperationKindName(OperationKind kind) {
  switch (kind) {
    case OperationKind::kFilter:
      return "filter";
    case OperationKind::kGeneralize:
      return "generalize";
    case OperationKind::kChange:
      return "change";
    case OperationKind::kComposite:
      return "composite";
  }
  return "unknown";
}

std::string Operation::Describe(const SubjectiveDatabase& db) const {
  return std::string(OperationKindName(kind)) + " -> " + target.ToString(db);
}

namespace {

// One atomic selection edit on one side.
struct Edit {
  enum Type { kAdd, kRemove, kChange } type;
  Side side;
  AttributeValue av;  // for kRemove only av.attribute is meaningful
};

GroupSelection ApplyEdit(const GroupSelection& sel, const Edit& e) {
  GroupSelection out = sel;
  Predicate& pred =
      e.side == Side::kReviewer ? out.reviewer_pred : out.item_pred;
  switch (e.type) {
    case Edit::kAdd:
    case Edit::kChange:
      pred = pred.With(e.av);
      break;
    case Edit::kRemove:
      pred = pred.Without(e.av.attribute);
      break;
  }
  return out;
}

void CollectEdits(const SubjectiveDatabase& db, const GroupSelection& current,
                  std::vector<Edit>* adds, std::vector<Edit>* removes,
                  std::vector<Edit>* changes) {
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& table = db.table(side);
    const Predicate& pred = current.pred(side);
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      if (table.schema().attribute(a).type == AttributeType::kNumeric) {
        continue;
      }
      size_t num_values = table.DistinctValueCount(a);
      if (pred.ConstrainsAttribute(a)) {
        ValueCode held = kNullCode;
        for (const AttributeValue& av : pred.conjuncts()) {
          if (av.attribute == a) held = av.code;
        }
        removes->push_back({Edit::kRemove, side, {a, held}});
        for (size_t v = 0; v < num_values; ++v) {
          ValueCode code = static_cast<ValueCode>(v);
          if (code == held) continue;
          changes->push_back({Edit::kChange, side, {a, code}});
        }
      } else {
        for (size_t v = 0; v < num_values; ++v) {
          adds->push_back({Edit::kAdd, side, {a, static_cast<ValueCode>(v)}});
        }
      }
    }
  }
}

OperationKind SingleEditKind(Edit::Type type) {
  switch (type) {
    case Edit::kAdd:
      return OperationKind::kFilter;
    case Edit::kRemove:
      return OperationKind::kGeneralize;
    case Edit::kChange:
      return OperationKind::kChange;
  }
  return OperationKind::kFilter;
}

}  // namespace

std::vector<Operation> EnumerateCandidateOperations(
    const SubjectiveDatabase& db, const GroupSelection& current,
    const OperationEnumerationOptions& options) {
  SUBDEX_CHECK(options.max_edits >= 1 && options.max_edits <= 2);
  std::vector<Edit> adds;
  std::vector<Edit> removes;
  std::vector<Edit> changes;
  CollectEdits(db, current, &adds, &removes, &changes);

  std::vector<Operation> out;
  auto emit = [&](GroupSelection target, OperationKind kind,
                  size_t num_edits) {
    if (target == current) return;
    out.push_back({std::move(target), kind, num_edits});
  };

  for (const auto& edit_list : {adds, removes, changes}) {
    for (const Edit& e : edit_list) {
      emit(ApplyEdit(current, e), SingleEditKind(e.type), 1);
    }
  }

  if (options.max_edits < 2) return out;
  if (out.size() >= options.max_candidates) return out;
  size_t budget = options.max_candidates - out.size();

  // Composites: one add combined with one remove-or-change on a different
  // attribute. Sampled without replacement when the full space is larger
  // than the remaining budget.
  std::vector<Edit> removes_or_changes;
  removes_or_changes.insert(removes_or_changes.end(), removes.begin(),
                            removes.end());
  removes_or_changes.insert(removes_or_changes.end(), changes.begin(),
                            changes.end());
  size_t space = adds.size() * removes_or_changes.size();
  if (space == 0) return out;

  auto emit_composite = [&](const Edit& add, const Edit& rc) {
    if (add.side == rc.side && add.av.attribute == rc.av.attribute) return;
    GroupSelection target = ApplyEdit(ApplyEdit(current, add), rc);
    emit(std::move(target), OperationKind::kComposite, 2);
  };

  if (space <= budget) {
    for (const Edit& add : adds) {
      for (const Edit& rc : removes_or_changes) emit_composite(add, rc);
    }
  } else {
    Rng rng(options.seed);
    std::set<std::pair<size_t, size_t>> seen;
    size_t attempts = 0;
    while (seen.size() < budget && attempts < budget * 8) {
      ++attempts;
      size_t i = rng.UniformU32(static_cast<uint32_t>(adds.size()));
      size_t j =
          rng.UniformU32(static_cast<uint32_t>(removes_or_changes.size()));
      if (!seen.insert({i, j}).second) continue;
      emit_composite(adds[i], removes_or_changes[j]);
    }
  }
  return out;
}

}  // namespace subdex
