#include "subjective/subjective_db.h"

#include <cmath>

#include "util/check.h"

namespace subdex {

const char* SideName(Side side) {
  return side == Side::kReviewer ? "reviewer" : "item";
}

SubjectiveDatabase::SubjectiveDatabase(Schema reviewer_schema,
                                       Schema item_schema,
                                       std::vector<std::string> rating_dimensions,
                                       int scale)
    : reviewers_(std::move(reviewer_schema)),
      items_(std::move(item_schema)),
      dimension_names_(std::move(rating_dimensions)),
      scale_(scale) {
  SUBDEX_CHECK_MSG(scale_ >= 2 && scale_ <= 100, "rating scale out of range");
  SUBDEX_CHECK_MSG(!dimension_names_.empty(),
                   "at least one rating dimension required");
  scores_.resize(dimension_names_.size());
}

Status SubjectiveDatabase::AddRating(RowId reviewer, RowId item,
                                     const std::vector<double>& scores) {
  if (finalized_) {
    return Status::FailedPrecondition("database indexes already finalized");
  }
  if (reviewer >= reviewers_.num_rows()) {
    return Status::OutOfRange("reviewer row " + std::to_string(reviewer));
  }
  if (item >= items_.num_rows()) {
    return Status::OutOfRange("item row " + std::to_string(item));
  }
  if (scores.size() != dimension_names_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(dimension_names_.size()) + " scores");
  }
  record_reviewer_.push_back(reviewer);
  record_item_.push_back(item);
  for (size_t d = 0; d < scores.size(); ++d) {
    double clamped = std::min(static_cast<double>(scale_),
                              std::max(1.0, scores[d]));
    scores_[d].push_back(static_cast<int8_t>(std::lround(clamped)));
  }
  return Status::Ok();
}

void SubjectiveDatabase::SetScore(size_t d, RecordId r, int value) {
  SUBDEX_CHECK(d < scores_.size());
  SUBDEX_CHECK(r < scores_[d].size());
  int clamped = std::min(scale_, std::max(1, value));
  scores_[d][r] = static_cast<int8_t>(clamped);
}

void SubjectiveDatabase::FinalizeIndexes() {
  SUBDEX_CHECK_MSG(!finalized_, "FinalizeIndexes called twice");
  reviewer_records_.assign(reviewers_.num_rows(), {});
  item_records_.assign(items_.num_rows(), {});
  for (RecordId r = 0; r < record_reviewer_.size(); ++r) {
    reviewer_records_[record_reviewer_[r]].push_back(r);
    item_records_[record_item_[r]].push_back(r);
  }

  value_bitmaps_.clear();
  value_bitmaps_.resize(2);
  for (int s = 0; s < 2; ++s) {
    const Table& table = s == 0 ? reviewers_ : items_;
    auto& per_attr = value_bitmaps_[s];
    per_attr.resize(table.num_attributes());
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      AttributeType type = table.schema().attribute(a).type;
      if (type == AttributeType::kNumeric) continue;
      size_t num_values = table.DistinctValueCount(a);
      per_attr[a].assign(num_values, Bitmap(table.num_rows()));
      for (RowId row = 0; row < table.num_rows(); ++row) {
        if (type == AttributeType::kCategorical) {
          ValueCode c = table.CodeAt(a, row);
          if (c != kNullCode) per_attr[a][static_cast<size_t>(c)].Set(row);
        } else {
          for (ValueCode c : table.MultiCodesAt(a, row)) {
            per_attr[a][static_cast<size_t>(c)].Set(row);
          }
        }
      }
    }
  }
  finalized_ = true;
}

const std::string& SubjectiveDatabase::dimension_name(size_t d) const {
  SUBDEX_CHECK(d < dimension_names_.size());
  return dimension_names_[d];
}

int SubjectiveDatabase::DimensionIndexOf(const std::string& name) const {
  for (size_t d = 0; d < dimension_names_.size(); ++d) {
    if (dimension_names_[d] == name) return static_cast<int>(d);
  }
  return -1;
}

const std::vector<RecordId>& SubjectiveDatabase::RecordsOfReviewer(
    RowId reviewer) const {
  SUBDEX_CHECK(finalized_);
  SUBDEX_CHECK(reviewer < reviewer_records_.size());
  return reviewer_records_[reviewer];
}

const std::vector<RecordId>& SubjectiveDatabase::RecordsOfItem(
    RowId item) const {
  SUBDEX_CHECK(finalized_);
  SUBDEX_CHECK(item < item_records_.size());
  return item_records_[item];
}

Bitmap SubjectiveDatabase::MatchRows(Side side, const Predicate& pred) const {
  SUBDEX_CHECK_MSG(finalized_, "call FinalizeIndexes() first");
  const Table& table = this->table(side);
  Bitmap result(table.num_rows(), /*value=*/true);
  const auto& bitmaps = side_bitmaps(side);
  for (const AttributeValue& av : pred.conjuncts()) {
    SUBDEX_CHECK(av.attribute < bitmaps.size());
    const auto& per_value = bitmaps[av.attribute];
    if (av.code < 0 || static_cast<size_t>(av.code) >= per_value.size()) {
      // Value interned after FinalizeIndexes (e.g. a user-typed predicate
      // value that never occurs in the data): matches nothing.
      return Bitmap(table.num_rows());
    }
    result.And(per_value[static_cast<size_t>(av.code)]);
  }
  return result;
}

std::vector<RecordId> SubjectiveDatabase::MatchRecords(
    const Predicate& reviewer_pred, const Predicate& item_pred) const {
  Bitmap reviewer_bits = MatchRows(Side::kReviewer, reviewer_pred);
  Bitmap item_bits = MatchRows(Side::kItem, item_pred);
  std::vector<RecordId> out;
  for (RecordId r = 0; r < record_reviewer_.size(); ++r) {
    if (reviewer_bits.Test(record_reviewer_[r]) &&
        item_bits.Test(record_item_[r])) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace subdex
