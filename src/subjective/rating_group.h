#ifndef SUBDEX_SUBJECTIVE_RATING_GROUP_H_
#define SUBDEX_SUBJECTIVE_RATING_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// A joint selection over the reviewer and item tables — the state of an
/// exploration step. The induced rating group g_R contains every rating
/// record whose reviewer is in g_U and whose item is in g_I.
struct GroupSelection {
  Predicate reviewer_pred;
  Predicate item_pred;

  SUBDEX_NODISCARD const Predicate& pred(Side side) const {
    return side == Side::kReviewer ? reviewer_pred : item_pred;
  }

  /// Total number of attribute-value conjuncts across both sides.
  SUBDEX_NODISCARD
  size_t size() const { return reviewer_pred.size() + item_pred.size(); }

  /// Number of attributes (across both sides) on which the two selections
  /// disagree (present vs. absent, or different value). An "add", "remove"
  /// or "change" each counts as one edit, matching the paper's restriction
  /// that a next-step operation differs in at most 2 attribute-value pairs.
  SUBDEX_NODISCARD size_t EditDistance(const GroupSelection& other) const;

  SUBDEX_NODISCARD std::string ToString(const SubjectiveDatabase& db) const;

  friend bool operator==(const GroupSelection&,
                         const GroupSelection&) = default;
};

/// A materialized rating group: the record ids selected by a GroupSelection.
/// The record list lives behind a shared_ptr, so copying a group (cache
/// hits hand the same list to many concurrent evaluations) copies a
/// pointer, never the records.
class RatingGroup {
 public:
  using SharedRecords = std::shared_ptr<const std::vector<RecordId>>;

  RatingGroup() : db_(nullptr), records_(EmptyRecords()) {}
  RatingGroup(const SubjectiveDatabase* db, GroupSelection selection,
              std::vector<RecordId> records)
      : db_(db),
        selection_(std::move(selection)),
        records_(std::make_shared<std::vector<RecordId>>(std::move(records))) {}
  /// Shares an already-materialized record list (the group cache's hit
  /// path). A null `records` is treated as empty.
  RatingGroup(const SubjectiveDatabase* db, GroupSelection selection,
              SharedRecords records)
      : db_(db),
        selection_(std::move(selection)),
        records_(records != nullptr ? std::move(records) : EmptyRecords()) {}

  /// Evaluates `selection` against `db` (requires finalized indexes).
  static RatingGroup Materialize(const SubjectiveDatabase& db,
                                 GroupSelection selection);

  SUBDEX_NODISCARD const SubjectiveDatabase& db() const { return *db_; }
  SUBDEX_NODISCARD
  const GroupSelection& selection() const { return selection_; }
  SUBDEX_NODISCARD
  const std::vector<RecordId>& records() const { return *records_; }
  /// The underlying shared list (cache insertion without copying).
  SUBDEX_NODISCARD
  const SharedRecords& shared_records() const { return records_; }
  SUBDEX_NODISCARD size_t size() const { return records_->size(); }
  SUBDEX_NODISCARD bool empty() const { return records_->empty(); }

  /// Average score over the group for dimension `d` (0 if empty).
  SUBDEX_NODISCARD double AverageScore(size_t d) const;

 private:
  static const SharedRecords& EmptyRecords();

  const SubjectiveDatabase* db_;
  GroupSelection selection_;
  SharedRecords records_;
};

}  // namespace subdex

#endif  // SUBDEX_SUBJECTIVE_RATING_GROUP_H_
