#ifndef SUBDEX_SUBJECTIVE_OPERATION_H_
#define SUBDEX_SUBJECTIVE_OPERATION_H_

#include <string>
#include <vector>

#include "subjective/rating_group.h"
#include "subjective/subjective_db.h"
#include "util/random.h"
#include "util/status.h"

namespace subdex {

/// Kind of a next-step exploration operation (Section 3.2.1): filtering
/// drills down (adds a conjunct), generalization rolls up (removes one), a
/// change moves sideways, and a composite combines an add with a remove or
/// change (the paper allows at most 2 attribute-value edits).
enum class OperationKind {
  kFilter,
  kGeneralize,
  kChange,
  kComposite,
};

const char* OperationKindName(OperationKind kind);

/// A candidate next-step operation: the target joint selection it produces,
/// how it differs from the current one, and its provenance.
struct Operation {
  GroupSelection target;
  OperationKind kind = OperationKind::kFilter;
  size_t num_edits = 1;

  SUBDEX_NODISCARD std::string Describe(const SubjectiveDatabase& db) const;
};

/// Knobs for candidate-operation enumeration.
struct OperationEnumerationOptions {
  /// Maximum number of attribute-value edits per candidate (1 or 2).
  size_t max_edits = 2;
  /// Hard cap on emitted candidates; 2-edit composites are sampled uniformly
  /// (seeded) when the full space exceeds the cap.
  size_t max_candidates = 400;
  /// Seed for composite sampling.
  uint64_t seed = 17;
};

/// Enumerates candidate next-step operations from `current`, following the
/// paper's "small adjustment" rule: each candidate adds one attribute-value
/// pair, removes one, changes one, or adds one while removing/changing one.
/// Only (multi-)categorical attributes participate. Candidates identical to
/// `current` are skipped. Emptiness/utility of the resulting groups is the
/// recommendation builder's concern, not the enumerator's.
std::vector<Operation> EnumerateCandidateOperations(
    const SubjectiveDatabase& db, const GroupSelection& current,
    const OperationEnumerationOptions& options);

}  // namespace subdex

#endif  // SUBDEX_SUBJECTIVE_OPERATION_H_
