#ifndef SUBDEX_SUBJECTIVE_DB_IO_H_
#define SUBDEX_SUBJECTIVE_DB_IO_H_

#include <memory>
#include <string>

#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// On-disk format of a subjective database: a directory holding
///   manifest.txt   — format version, rating scale, dimension names and
///                    both attribute schemas
///   reviewers.csv  — the reviewer table (storage/csv.h conventions)
///   items.csv      — the item table
///   ratings.csv    — one row per rating record:
///                    reviewer,item,<score per dimension>
/// Everything is plain text so saved datasets are diffable and loadable
/// without this library.

/// Saves `db` into `dir` (created if missing). Scores reflect any planted
/// irregular groups / insights, so a study dataset can be saved after
/// planting and reloaded bit-identically.
Status SaveDatabase(const SubjectiveDatabase& db, const std::string& dir);

/// Loads a database saved by SaveDatabase; the result is finalized.
Result<std::unique_ptr<SubjectiveDatabase>> LoadDatabase(
    const std::string& dir);

}  // namespace subdex

#endif  // SUBDEX_SUBJECTIVE_DB_IO_H_
