#ifndef SUBDEX_SUBJECTIVE_DB_IO_H_
#define SUBDEX_SUBJECTIVE_DB_IO_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex {

/// On-disk format of a subjective database: a directory holding
///   manifest.txt   — format version, rating scale, dimension names and
///                    both attribute schemas
///   reviewers.csv  — the reviewer table (storage/csv.h conventions)
///   items.csv      — the item table
///   ratings.csv    — one row per rating record:
///                    reviewer,item,<score per dimension>
/// Everything is plain text so saved datasets are diffable and loadable
/// without this library.

/// Saves `db` into `dir` (created if missing). Scores reflect any planted
/// irregular groups / insights, so a study dataset can be saved after
/// planting and reloaded bit-identically.
SUBDEX_MUST_USE_RESULT
Status SaveDatabase(const SubjectiveDatabase& db, const std::string& dir);

/// Loads a database saved by SaveDatabase; the result is finalized.
SUBDEX_MUST_USE_RESULT
Result<std::unique_ptr<SubjectiveDatabase>> LoadDatabase(
    const std::string& dir);

/// Parsed contents of manifest.txt. Satisfies every SubjectiveDatabase
/// constructor precondition (scale in [2, 100], at least one non-empty
/// dimension name, non-empty attribute names), so a DbManifest returned by
/// ParseManifest can always be turned into a database without aborting.
struct DbManifest {
  int scale = 5;
  std::vector<std::string> dimensions;
  std::vector<AttributeDef> reviewer_attrs;
  std::vector<AttributeDef> item_attrs;
};

/// Parses a manifest.txt stream. All malformed input — including values the
/// SubjectiveDatabase constructor would CHECK-abort on — maps to a Status,
/// which makes this safe on untrusted bytes (it is a fuzzing entry point).
SUBDEX_MUST_USE_RESULT Result<DbManifest> ParseManifest(std::istream& in);

/// Parses a ratings.csv stream into `db` (constructed, not yet finalized;
/// reviewer and item tables already populated). Does not finalize `db`.
/// Safe on untrusted bytes: every malformed row maps to a Status.
SUBDEX_MUST_USE_RESULT
Status LoadRatingsCsv(std::istream& in, SubjectiveDatabase* db);

}  // namespace subdex

#endif  // SUBDEX_SUBJECTIVE_DB_IO_H_
