#ifndef SUBDEX_SUBJECTIVE_SUBJECTIVE_DB_H_
#define SUBDEX_SUBJECTIVE_SUBJECTIVE_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"
#include "util/bitmap.h"
#include "util/status.h"

namespace subdex {

/// Which entity table an attribute or predicate refers to.
enum class Side { kReviewer, kItem };

const char* SideName(Side side);

/// Record identifier within the rating store.
using RecordId = uint32_t;

/// A subjective database D = <I, U, R> (Section 3.1): an item table, a
/// reviewer table — both with objective categorical attributes — and a
/// rating store linking reviewers to items with one numeric score per
/// rating dimension (the subjective attributes). Scores live on the integer
/// scale {1, ..., scale()}; fractional scores produced by text extraction
/// are rounded into that scale at ingestion.
///
/// The class owns per-(attribute, value) row bitmaps on both entity tables
/// so rating groups can be materialized with bitwise ANDs; call
/// `FinalizeIndexes()` once after ingestion (mutating the tables afterwards
/// is a usage error).
class SubjectiveDatabase {
 public:
  /// `scale` is the number of points of the rating scale {1..scale}.
  SubjectiveDatabase(Schema reviewer_schema, Schema item_schema,
                     std::vector<std::string> rating_dimensions,
                     int scale = 5);

  // --- ingestion -----------------------------------------------------------

  Table& reviewers() { return reviewers_; }
  Table& items() { return items_; }
  SUBDEX_NODISCARD const Table& reviewers() const { return reviewers_; }
  SUBDEX_NODISCARD const Table& items() const { return items_; }

  SUBDEX_NODISCARD const Table& table(Side side) const {
    return side == Side::kReviewer ? reviewers_ : items_;
  }
  Table& mutable_table(Side side) {
    return side == Side::kReviewer ? reviewers_ : items_;
  }

  /// Adds one rating record; `scores` must hold one value per rating
  /// dimension, each within [1, scale] (values are clamped and rounded to
  /// the integer scale).
  SUBDEX_MUST_USE_RESULT
  Status AddRating(RowId reviewer, RowId item,
                   const std::vector<double>& scores);

  /// Builds the attribute-value bitmaps and reviewer/item rating indexes.
  void FinalizeIndexes();
  SUBDEX_NODISCARD bool finalized() const { return finalized_; }

  // --- shape ---------------------------------------------------------------

  SUBDEX_NODISCARD
  size_t num_records() const { return record_reviewer_.size(); }
  SUBDEX_NODISCARD
  size_t num_reviewers() const { return reviewers_.num_rows(); }
  SUBDEX_NODISCARD size_t num_items() const { return items_.num_rows(); }
  SUBDEX_NODISCARD
  size_t num_dimensions() const { return dimension_names_.size(); }
  SUBDEX_NODISCARD const std::string& dimension_name(size_t d) const;
  /// Index of the dimension named `name`, or -1.
  SUBDEX_NODISCARD int DimensionIndexOf(const std::string& name) const;
  SUBDEX_NODISCARD int scale() const { return scale_; }

  // --- record access -------------------------------------------------------

  SUBDEX_NODISCARD
  RowId reviewer_of(RecordId r) const { return record_reviewer_[r]; }
  SUBDEX_NODISCARD RowId item_of(RecordId r) const { return record_item_[r]; }

  /// Integer score (1..scale) of record `r` for dimension `d`.
  SUBDEX_NODISCARD
  int score(size_t d, RecordId r) const { return scores_[d][r]; }

  /// Overwrites one score (clamped to [1, scale]). Scores are not indexed,
  /// so this is legal before and after FinalizeIndexes — the dataset
  /// generators use it to plant irregular groups and insights.
  void SetScore(size_t d, RecordId r, int value);

  /// Record ids rated by `reviewer` / rating `item` (requires finalized).
  SUBDEX_NODISCARD
  const std::vector<RecordId>& RecordsOfReviewer(RowId reviewer) const;
  SUBDEX_NODISCARD const std::vector<RecordId>& RecordsOfItem(RowId item) const;

  // --- group materialization ----------------------------------------------

  /// Bitmap over rows of `side`'s table matching `pred` (AND of value
  /// bitmaps; all-ones for the empty predicate). Requires finalized.
  SUBDEX_NODISCARD Bitmap MatchRows(Side side, const Predicate& pred) const;

  /// Record ids whose reviewer matches `reviewer_pred` and item matches
  /// `item_pred`. Requires finalized.
  SUBDEX_NODISCARD
  std::vector<RecordId> MatchRecords(const Predicate& reviewer_pred,
                                     const Predicate& item_pred) const;

 private:
  Table reviewers_;
  Table items_;
  std::vector<std::string> dimension_names_;
  int scale_;

  std::vector<RowId> record_reviewer_;
  std::vector<RowId> record_item_;
  // scores_[d][r]: SoA layout, one contiguous array per rating dimension.
  std::vector<std::vector<int8_t>> scores_;

  bool finalized_ = false;
  std::vector<std::vector<RecordId>> reviewer_records_;
  std::vector<std::vector<RecordId>> item_records_;
  // value_bitmaps_[side][attr][code] over the side's table rows.
  // Numeric attributes have empty entries.
  std::vector<std::vector<std::vector<Bitmap>>> value_bitmaps_;

  SUBDEX_NODISCARD
  const std::vector<std::vector<Bitmap>>& side_bitmaps(Side side) const {
    return value_bitmaps_[side == Side::kReviewer ? 0 : 1];
  }
};

}  // namespace subdex

#endif  // SUBDEX_SUBJECTIVE_SUBJECTIVE_DB_H_
