#include "pruning/ci_pruner.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace subdex {

void ComputeEnvelope(CandidateIntervals* cand) {
  // Deactivate every criterion interval lying entirely below some other
  // active interval (it can never realize the max).
  for (size_t i = 0; i < cand->criteria.size(); ++i) {
    if (!cand->criteria[i].active) continue;
    for (size_t j = 0; j < cand->criteria.size(); ++j) {
      if (i == j || !cand->criteria[j].active) continue;
      if (cand->criteria[i].ub < cand->criteria[j].lb) {
        cand->criteria[i].active = false;
        break;
      }
    }
  }
  double lb = 0.0;
  double ub = 0.0;
  bool any = false;
  for (const CriterionInterval& ci : cand->criteria) {
    if (!ci.active) continue;
    lb = any ? std::max(lb, ci.lb) : ci.lb;
    ub = any ? std::max(ub, ci.ub) : ci.ub;
    any = true;
  }
  SUBDEX_CHECK_MSG(any, "all criterion intervals deactivated");
  cand->lb = cand->weight * lb;
  cand->ub = cand->weight * ub;
}

std::vector<bool> CiPrune(const std::vector<CandidateIntervals>& candidates,
                          size_t k_prime) {
  std::vector<bool> prune(candidates.size(), false);
  if (candidates.size() <= k_prime || k_prime == 0) return prune;

  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a].ub > candidates[b].ub;
  });

  double lowest_lb = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < k_prime; ++r) {
    lowest_lb = std::min(lowest_lb, candidates[order[r]].lb);
  }
  for (size_t r = k_prime; r < order.size(); ++r) {
    if (candidates[order[r]].ub < lowest_lb) prune[order[r]] = true;
  }
  return prune;
}

}  // namespace subdex
