#include "pruning/ci_pruner.h"

#include <algorithm>
#include <functional>

#include "util/check.h"
#include "util/metrics.h"

namespace subdex {

namespace {

struct CiMetrics {
  Counter& calls;
  Counter& candidates;
  Counter& pruned;
  Histogram& bound_gap;

  static CiMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static CiMetrics m{
        reg.GetCounter("subdex_ci_prune_calls_total",
                       "CiPrune invocations (one per phase boundary with "
                       "CI pruning on)"),
        reg.GetCounter("subdex_ci_candidates_total",
                       "Candidate envelopes examined by CiPrune"),
        reg.GetCounter("subdex_ci_pruned_total",
                       "Candidates whose upper bound fell below the k'-th "
                       "largest lower bound (Algorithm 3)"),
        reg.GetHistogram("subdex_ci_bound_gap",
                         MetricsRegistry::UnitBuckets(),
                         "Width (ub - lb) of candidate DW-utility "
                         "envelopes at prune time"),
    };
    return m;
  }
};

}  // namespace

void ComputeEnvelope(CandidateIntervals* cand) {
  // Deactivate every criterion interval lying entirely below some other
  // active interval (it can never realize the max).
  for (size_t i = 0; i < cand->criteria.size(); ++i) {
    if (!cand->criteria[i].active) continue;
    for (size_t j = 0; j < cand->criteria.size(); ++j) {
      if (i == j || !cand->criteria[j].active) continue;
      if (cand->criteria[i].ub < cand->criteria[j].lb) {
        cand->criteria[i].active = false;
        break;
      }
    }
  }
  double lb = 0.0;
  double ub = 0.0;
  bool any = false;
  for (const CriterionInterval& ci : cand->criteria) {
    if (!ci.active) continue;
    // Algorithm 3 assumes well-ordered confidence intervals; a flipped
    // bound would silently corrupt the envelope and every pruning decision
    // derived from it.
    SUBDEX_DCHECK_LE(ci.lb, ci.ub);
    lb = any ? std::max(lb, ci.lb) : ci.lb;
    ub = any ? std::max(ub, ci.ub) : ci.ub;
    any = true;
  }
  SUBDEX_CHECK_MSG(any, "all criterion intervals deactivated");
  SUBDEX_DCHECK_GE(cand->weight, 0.0);
  cand->lb = cand->weight * lb;
  cand->ub = cand->weight * ub;
  // Envelope of max-aggregated criteria: max of lbs <= max of ubs.
  SUBDEX_DCHECK_LE(cand->lb, cand->ub);
}

std::vector<bool> CiPrune(const std::vector<CandidateIntervals>& candidates,
                          size_t k_prime) {
  CiMetrics& metrics = CiMetrics::Get();
  metrics.calls.Increment();
  metrics.candidates.Increment(candidates.size());
  for (const CandidateIntervals& cand : candidates) {
    metrics.bound_gap.Observe(cand.ub - cand.lb);
  }
  std::vector<bool> prune(candidates.size(), false);
  if (candidates.size() <= k_prime || k_prime == 0) return prune;

  // Threshold = the k'-th largest lower bound over ALL candidates: a
  // candidate whose upper bound falls below it is beaten w.h.p. by at
  // least k' others. (Taking the minimum lb among the top-k'-by-ub
  // candidates instead — an earlier bug — lets one wide interval with a
  // high ub and a tiny lb collapse the threshold and disable pruning.)
  std::vector<double> lbs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    SUBDEX_DCHECK_LE(candidates[i].lb, candidates[i].ub);
    lbs[i] = candidates[i].lb;
  }
  std::nth_element(lbs.begin(), lbs.begin() + (k_prime - 1), lbs.end(),
                   std::greater<double>());
  double threshold = lbs[k_prime - 1];

  size_t pruned = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    // A candidate with ub < threshold also has lb < threshold, so it can
    // never be one of the k' threshold-setting candidates itself.
    if (candidates[i].ub < threshold) {
      prune[i] = true;
      ++pruned;
    }
  }
  metrics.pruned.Increment(pruned);
  return prune;
}

}  // namespace subdex
