#ifndef SUBDEX_PRUNING_MAB_PRUNER_H_
#define SUBDEX_PRUNING_MAB_PRUNER_H_

#include <cstddef>
#include <vector>

namespace subdex {

/// Outcome of one Successive-Accepts-and-Rejects step (Bubeck et al. 2013),
/// used as the MAB-based pruning scheme (Section 4.2.1): rating maps are
/// arms, their running DW-utility means are rewards.
enum class SarAction {
  /// Fewer candidates than open slots — nothing to decide.
  kNone,
  /// The top arm's lead over the (k'+1)-th is larger than the bottom arm's
  /// deficit: accept the top arm into the top-k'.
  kAcceptTop,
  /// Otherwise: discard the bottom arm.
  kRejectBottom,
};

struct SarDecision {
  SarAction action = SarAction::kNone;
  /// Index (into the `means` vector passed to SarStep) of the arm acted on.
  size_t index = 0;
};

/// One SAR step over the still-undecided arms. `k_remaining` is the number
/// of top slots not yet filled by accepted arms. Returns kNone when
/// means.size() <= k_remaining (every remaining arm fits) or k_remaining is
/// 0 with no arms. When k_remaining == 0 and arms remain, rejects the bottom
/// arm (all slots are taken).
SarDecision SarStep(const std::vector<double>& means, size_t k_remaining);

}  // namespace subdex

#endif  // SUBDEX_PRUNING_MAB_PRUNER_H_
