#ifndef SUBDEX_PRUNING_CI_PRUNER_H_
#define SUBDEX_PRUNING_CI_PRUNER_H_

#include <array>
#include <cstddef>
#include <vector>

namespace subdex {

/// Confidence interval of one (normalized, [0,1]-valued) utility criterion.
struct CriterionInterval {
  double lb = 0.0;
  double ub = 1.0;
  /// Cleared when the interval is dominated by another criterion's interval
  /// (Algorithm 3): since the utility is the max over criteria, a criterion
  /// whose interval lies entirely below another's can never define the
  /// utility and need not be estimated in later phases.
  bool active = true;
};

/// Per-candidate interval state for confidence-interval pruning.
struct CandidateIntervals {
  std::array<CriterionInterval, 4> criteria;
  /// Dimension weight (1 - m_{r_i}/m) multiplying both bounds (Eq. 1).
  double weight = 1.0;
  /// Envelope of the DW utility, filled by ComputeEnvelope.
  double lb = 0.0;
  double ub = 1.0;
};

/// Algorithm 3, lines 1-11: deactivates dominated criterion intervals and
/// computes the candidate's DW-utility envelope. Because the utility is the
/// maximum of the criteria, the envelope is
///   [weight * max_i lb_i, weight * max_i ub_i]
/// over the still-active criteria.
void ComputeEnvelope(CandidateIntervals* cand);

/// Algorithm 3, lines 12-17: given the envelopes of all still-active
/// candidates, returns prune flags. A candidate is pruned when its upper
/// bound is below the k'-th largest lower bound over all candidates —
/// w.h.p. at least k' candidates beat it, so it cannot belong to the
/// top-k'.
std::vector<bool> CiPrune(const std::vector<CandidateIntervals>& candidates,
                          size_t k_prime);

}  // namespace subdex

#endif  // SUBDEX_PRUNING_CI_PRUNER_H_
