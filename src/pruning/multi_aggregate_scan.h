#ifndef SUBDEX_PRUNING_MULTI_AGGREGATE_SCAN_H_
#define SUBDEX_PRUNING_MULTI_AGGREGATE_SCAN_H_

#include <unordered_map>
#include <vector>

#include "core/rating_map.h"
#include "util/status.h"

namespace subdex {

/// The "Combining Multiple Aggregates" sharing optimization (Section 4.2.1):
/// all candidate rating maps that group by the same attribute are evaluated
/// in a single scan. Each pass over a slice of the rating group resolves the
/// record's grouping code once and updates one histogram per still-active
/// rating dimension, instead of re-scanning per candidate.
///
/// Dimensions are deactivated when their candidate map is pruned; per-
/// dimension processed counts therefore diverge, and snapshots reflect each
/// dimension's own processed prefix.
class MultiAggregateScan {
 public:
  MultiAggregateScan(const RatingGroup* group, Side side, size_t attribute);

  SUBDEX_NODISCARD Side side() const { return side_; }
  SUBDEX_NODISCARD size_t attribute() const { return attribute_; }

  /// Stops updating dimension `dim` (its candidate was pruned).
  void DeactivateDimension(size_t dim);
  SUBDEX_NODISCARD bool IsActive(size_t dim) const;
  /// Number of active dimensions (a scan with none is skipped entirely).
  SUBDEX_NODISCARD size_t num_active() const { return num_active_; }

  /// Processes records [begin, end) of the group's record list for every
  /// active dimension. Returns the number of (record, dimension) updates
  /// performed — the work measure reported by the generator.
  size_t Update(size_t begin, size_t end);

  /// Records processed so far for dimension `dim`.
  SUBDEX_NODISCARD size_t processed(size_t dim) const;

  /// Rating map for `dim` over the records processed for it so far.
  SUBDEX_NODISCARD RatingMap SnapshotMap(size_t dim) const;

 private:
  struct PerDimension {
    bool active = true;
    size_t processed = 0;
    std::unordered_map<ValueCode, RatingDistribution> partitions;
    RatingDistribution overall;
  };

  const RatingGroup* group_;
  Side side_;
  size_t attribute_;
  AttributeType attribute_type_;
  std::vector<PerDimension> dims_;
  size_t num_active_;
};

}  // namespace subdex

#endif  // SUBDEX_PRUNING_MULTI_AGGREGATE_SCAN_H_
