#include "pruning/multi_aggregate_scan.h"

#include "util/check.h"

namespace subdex {

MultiAggregateScan::MultiAggregateScan(const RatingGroup* group, Side side,
                                       size_t attribute)
    : group_(group), side_(side), attribute_(attribute) {
  SUBDEX_CHECK(group_ != nullptr);
  const SubjectiveDatabase& db = group_->db();
  const Table& table = db.table(side_);
  SUBDEX_CHECK(attribute_ < table.num_attributes());
  attribute_type_ = table.schema().attribute(attribute_).type;
  SUBDEX_CHECK(attribute_type_ != AttributeType::kNumeric);
  dims_.resize(db.num_dimensions());
  for (auto& d : dims_) {
    d.overall = RatingDistribution(db.scale());
  }
  num_active_ = dims_.size();
}

void MultiAggregateScan::DeactivateDimension(size_t dim) {
  SUBDEX_CHECK(dim < dims_.size());
  if (dims_[dim].active) {
    dims_[dim].active = false;
    --num_active_;
  }
}

bool MultiAggregateScan::IsActive(size_t dim) const {
  SUBDEX_CHECK(dim < dims_.size());
  return dims_[dim].active;
}

size_t MultiAggregateScan::Update(size_t begin, size_t end) {
  SUBDEX_CHECK(begin <= end && end <= group_->size());
  if (num_active_ == 0) return 0;
  const SubjectiveDatabase& db = group_->db();
  const Table& table = db.table(side_);
  int scale = db.scale();
  size_t updates = 0;

  // Active dimension list resolved once per slice.
  std::vector<size_t> active;
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d].active) active.push_back(d);
  }

  auto bucket = [&](PerDimension& pd, ValueCode code) -> RatingDistribution& {
    auto it = pd.partitions.find(code);
    if (it == pd.partitions.end()) {
      it = pd.partitions.emplace(code, RatingDistribution(scale)).first;
    }
    return it->second;
  };

  for (size_t i = begin; i < end; ++i) {
    RecordId rec = group_->records()[i];
    RowId row =
        side_ == Side::kReviewer ? db.reviewer_of(rec) : db.item_of(rec);
    if (attribute_type_ == AttributeType::kCategorical) {
      ValueCode code = table.CodeAt(attribute_, row);
      for (size_t d : active) {
        int score = db.score(d, rec);
        PerDimension& pd = dims_[d];
        pd.overall.Add(score);
        bucket(pd, code).Add(score);
        ++pd.processed;
        ++updates;
      }
    } else {
      const auto& codes = table.MultiCodesAt(attribute_, row);
      for (size_t d : active) {
        int score = db.score(d, rec);
        PerDimension& pd = dims_[d];
        pd.overall.Add(score);
        if (codes.empty()) {
          bucket(pd, kNullCode).Add(score);
        } else {
          for (ValueCode c : codes) bucket(pd, c).Add(score);
        }
        ++pd.processed;
        ++updates;
      }
    }
  }
  return updates;
}

size_t MultiAggregateScan::processed(size_t dim) const {
  SUBDEX_CHECK(dim < dims_.size());
  return dims_[dim].processed;
}

RatingMap MultiAggregateScan::SnapshotMap(size_t dim) const {
  SUBDEX_CHECK(dim < dims_.size());
  const PerDimension& pd = dims_[dim];
  std::vector<Subgroup> subgroups;
  subgroups.reserve(pd.partitions.size());
  for (const auto& [code, dist] : pd.partitions) {
    subgroups.push_back({code, dist});
  }
  RatingMap map({side_, attribute_, dim}, std::move(subgroups), pd.overall);
  map.set_full_group_size(group_->size());
  return map;
}

}  // namespace subdex
