#include "pruning/mab_pruner.h"

#include <algorithm>

#include "util/check.h"

namespace subdex {

SarDecision SarStep(const std::vector<double>& means, size_t k_remaining) {
  if (means.empty() || means.size() <= k_remaining) return {SarAction::kNone, 0};
  // Arm accounting: from here on there is at least one arm beyond the
  // still-needed k, so both rank gaps of SAR are well defined.
  SUBDEX_DCHECK_LT(k_remaining, means.size());

  std::vector<size_t> order(means.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return means[a] > means[b]; });

  if (k_remaining == 0) {
    return {SarAction::kRejectBottom, order.back()};
  }

  // Delta1: gap between the best arm and the first excluded rank.
  // Delta2: gap between the last included rank and the worst arm.
  double delta1 = means[order[0]] - means[order[k_remaining]];
  double delta2 = means[order[k_remaining - 1]] - means[order.back()];
  // `order` is sorted by descending mean, so both gaps are non-negative.
  SUBDEX_DCHECK_GE(delta1, 0.0);
  SUBDEX_DCHECK_GE(delta2, 0.0);
  if (delta1 > delta2) {
    return {SarAction::kAcceptTop, order[0]};
  }
  return {SarAction::kRejectBottom, order.back()};
}

}  // namespace subdex
