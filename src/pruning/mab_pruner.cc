#include "pruning/mab_pruner.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"

namespace subdex {

namespace {

struct SarMetrics {
  Counter& steps;
  Counter& accepts;
  Counter& rejects;

  static SarMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static SarMetrics m{
        reg.GetCounter("subdex_mab_sar_steps_total",
                       "Successive-Accepts-and-Rejects decisions taken"),
        reg.GetCounter("subdex_mab_accepts_total",
                       "Arms accepted into the top-k' by SAR"),
        reg.GetCounter("subdex_mab_rejects_total",
                       "Arms rejected (pruned) by SAR"),
    };
    return m;
  }
};

}  // namespace

SarDecision SarStep(const std::vector<double>& means, size_t k_remaining) {
  if (means.empty() || means.size() <= k_remaining) return {SarAction::kNone, 0};
  // Arm accounting: from here on there is at least one arm beyond the
  // still-needed k, so both rank gaps of SAR are well defined.
  SUBDEX_DCHECK_LT(k_remaining, means.size());

  std::vector<size_t> order(means.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return means[a] > means[b]; });

  SarMetrics& metrics = SarMetrics::Get();
  metrics.steps.Increment();
  if (k_remaining == 0) {
    metrics.rejects.Increment();
    return {SarAction::kRejectBottom, order.back()};
  }

  // Delta1: gap between the best arm and the first excluded rank.
  // Delta2: gap between the last included rank and the worst arm.
  double delta1 = means[order[0]] - means[order[k_remaining]];
  double delta2 = means[order[k_remaining - 1]] - means[order.back()];
  // `order` is sorted by descending mean, so both gaps are non-negative.
  SUBDEX_DCHECK_GE(delta1, 0.0);
  SUBDEX_DCHECK_GE(delta2, 0.0);
  if (delta1 > delta2) {
    metrics.accepts.Increment();
    return {SarAction::kAcceptTop, order[0]};
  }
  metrics.rejects.Increment();
  return {SarAction::kRejectBottom, order.back()};
}

}  // namespace subdex
