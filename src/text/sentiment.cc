#include "text/sentiment.h"

#include <cctype>
#include <cmath>

namespace subdex {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '\'') {
      current.push_back(c);
    } else {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      if (c == '!' || c == '?') tokens.push_back(std::string(1, c));
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

namespace {

struct WordValenceEntry {
  const char* word;
  double valence;
};

// Review-domain lexicon, valences on the VADER scale [-4, 4].
constexpr WordValenceEntry kLexicon[] = {
    // strong positive
    {"amazing", 3.4},      {"outstanding", 3.5}, {"exceptional", 3.3},
    {"fantastic", 3.3},    {"superb", 3.4},      {"perfect", 3.4},
    {"excellent", 3.2},    {"wonderful", 3.1},   {"delicious", 3.1},
    {"exquisite", 3.2},    {"phenomenal", 3.5},  {"incredible", 3.2},
    {"flawless", 3.3},     {"divine", 3.0},      {"stellar", 3.1},
    // positive
    {"great", 2.6},        {"tasty", 2.4},       {"lovely", 2.4},
    {"friendly", 2.2},     {"attentive", 2.1},   {"charming", 2.2},
    {"cozy", 2.0},         {"fresh", 1.9},       {"clean", 1.8},
    {"pleasant", 1.9},     {"good", 1.9},        {"nice", 1.8},
    {"enjoyable", 2.0},    {"welcoming", 2.0},   {"comfortable", 1.8},
    {"prompt", 1.6},       {"helpful", 1.9},     {"warm", 1.5},
    {"flavorful", 2.2},    {"generous", 1.8},    {"polite", 1.7},
    // mild positive
    {"decent", 1.1},       {"fine", 0.9},        {"okay", 0.6},
    {"acceptable", 0.7},   {"fair", 0.6},        {"reasonable", 0.8},
    {"adequate", 0.6},     {"passable", 0.5},
    // mild negative
    {"average", -0.3},     {"mediocre", -1.2},   {"bland", -1.4},
    {"plain", -0.6},       {"forgettable", -1.1}, {"uninspired", -1.2},
    {"ordinary", -0.5},    {"underwhelming", -1.5},
    // negative
    {"bad", -1.9},         {"slow", -1.3},       {"cold", -1.1},
    {"stale", -1.8},       {"noisy", -1.3},      {"dirty", -2.1},
    {"rude", -2.3},        {"cramped", -1.4},    {"greasy", -1.5},
    {"overpriced", -1.7},  {"soggy", -1.6},      {"unfriendly", -2.0},
    {"tasteless", -1.9},   {"sloppy", -1.7},     {"dull", -1.4},
    {"unpleasant", -2.0},  {"poor", -1.9},       {"lacking", -1.3},
    // strong negative
    {"terrible", -3.1},    {"awful", -3.1},      {"horrible", -3.2},
    {"disgusting", -3.3},  {"inedible", -3.2},   {"filthy", -3.0},
    {"atrocious", -3.4},   {"dreadful", -3.1},   {"appalling", -3.2},
    {"revolting", -3.3},   {"abysmal", -3.4},    {"vile", -3.2},
    {"worst", -3.1},       {"nasty", -2.7},      {"disaster", -2.9},
};

struct BoosterEntry {
  const char* word;
  double increment;
};

// Degree modifiers; positive entries intensify, negative ones dampen.
constexpr BoosterEntry kBoosters[] = {
    {"absolutely", 0.293}, {"extremely", 0.293},  {"incredibly", 0.293},
    {"really", 0.267},     {"very", 0.267},       {"truly", 0.267},
    {"remarkably", 0.267}, {"so", 0.241},         {"quite", 0.181},
    {"totally", 0.241},    {"utterly", 0.293},
    {"slightly", -0.293},  {"somewhat", -0.267},  {"barely", -0.293},
    {"marginally", -0.293}, {"kinda", -0.267},    {"fairly", -0.181},
};

constexpr const char* kNegations[] = {"not",    "no",      "never",
                                      "hardly", "neither", "nor",
                                      "cannot", "can't",   "isn't",
                                      "wasn't", "don't",   "didn't"};

constexpr double kNegationFactor = -0.74;
constexpr double kExclamationBoost = 0.292;
constexpr int kMaxExclamations = 3;
constexpr double kNormalizationAlpha = 15.0;

bool IsNegation(const std::string& word) {
  for (const char* n : kNegations) {
    if (word == n) return true;
  }
  return false;
}

}  // namespace

SentimentAnalyzer::SentimentAnalyzer() {
  for (const auto& e : kLexicon) lexicon_.emplace(e.word, e.valence);
  for (const auto& e : kBoosters) boosters_.emplace(e.word, e.increment);
}

double SentimentAnalyzer::WordValence(const std::string& word) const {
  auto it = lexicon_.find(word);
  return it == lexicon_.end() ? 0.0 : it->second;
}

double SentimentAnalyzer::ScoreTokens(
    const std::vector<std::string>& tokens) const {
  double total = 0.0;
  int exclamations = 0;
  for (const std::string& t : tokens) {
    if (t == "!") ++exclamations;
  }
  exclamations = std::min(exclamations, kMaxExclamations);

  for (size_t i = 0; i < tokens.size(); ++i) {
    auto it = lexicon_.find(tokens[i]);
    if (it == lexicon_.end()) continue;
    double valence = it->second;

    // Boosters within the 2 preceding tokens, scaled down with distance.
    for (size_t back = 1; back <= 2 && back <= i; ++back) {
      auto b = boosters_.find(tokens[i - back]);
      if (b == boosters_.end()) continue;
      double inc = b->second * (back == 1 ? 1.0 : 0.95);
      valence += valence >= 0 ? inc : -inc;
    }
    // Negation within the 3 preceding tokens flips and damps.
    for (size_t back = 1; back <= 3 && back <= i; ++back) {
      if (IsNegation(tokens[i - back])) {
        valence *= kNegationFactor;
        break;
      }
    }
    total += valence;
  }

  if (total > 0) {
    total += exclamations * kExclamationBoost;
  } else if (total < 0) {
    total -= exclamations * kExclamationBoost;
  }
  return total / std::sqrt(total * total + kNormalizationAlpha);
}

double SentimentAnalyzer::ScoreText(std::string_view text) const {
  return ScoreTokens(Tokenize(text));
}

int SentimentAnalyzer::CompoundToScale(double compound, int scale) {
  double clipped = std::min(1.0, std::max(-1.0, compound));
  double pos = (clipped + 1.0) / 2.0;  // [0, 1]
  int score = 1 + static_cast<int>(std::lround(pos * (scale - 1)));
  return std::min(scale, std::max(1, score));
}

}  // namespace subdex
