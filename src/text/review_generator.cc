#include "text/review_generator.h"

#include "util/check.h"

namespace subdex {

namespace {

// Word pools tuned against the analyzer's lexicon so each template's total
// valence falls inside the compound-score band of the target rating:
// 5 needs total valence >= ~4.4 (two boosted strong positives), 4 one plain
// positive, 3 a mild word, 2 one negative, 1 two boosted strong negatives.
const char* const kStrongPositive[] = {"amazing",   "outstanding",
                                       "exceptional", "fantastic",
                                       "superb",    "phenomenal",
                                       "incredible", "perfect"};
const char* const kPositive[] = {"great",    "tasty",   "lovely", "friendly",
                                 "pleasant", "good",    "nice",   "clean",
                                 "cozy",     "helpful", "flavorful"};
const char* const kMild[] = {"okay", "fine",     "fair",
                             "adequate", "acceptable", "passable"};
const char* const kNegative[] = {"bad",   "slow",  "cold",   "stale",
                                 "dirty", "rude",  "greasy", "bland",
                                 "noisy", "soggy", "poor"};
const char* const kStrongNegative[] = {"terrible",  "awful",    "horrible",
                                       "disgusting", "atrocious", "dreadful",
                                       "appalling", "abysmal"};
const char* const kIntensifiers[] = {"absolutely", "extremely", "incredibly",
                                     "truly", "utterly"};
// Spacers of at least 5 neutral (non-lexicon, non-booster, non-negation)
// tokens inserted between dimension sentences, so the +/-5-word extraction
// window of one dimension keyword never reaches the previous sentence's
// sentiment words or exclamation marks.
const char* const kSpacers[] = {
    "and then when it comes to the",
    "moving on to what we thought about the",
    "as for our impression of the",
    "turning next to the matter of the",
    "meanwhile with respect to the",
};

const char* const kFillers[] = {
    "we went there on a tuesday evening",
    "my friends recommended this place",
    "we waited about twenty minutes for a table",
    "the menu changes with the season",
    "parking nearby can be tricky",
    "we will see about coming back",
};

template <size_t N>
const char* Pick(const char* const (&pool)[N], Rng* rng) {
  return pool[rng->UniformU32(static_cast<uint32_t>(N))];
}

std::string DimensionSentence(const std::string& keyword, int score,
                              Rng* rng) {
  switch (score) {
    case 5:
      return std::string(Pick(kIntensifiers, rng)) + " " +
             Pick(kStrongPositive, rng) + " and " + Pick(kIntensifiers, rng) +
             " " + Pick(kStrongPositive, rng) + " " + keyword + " !";
    case 4:
      return std::string(Pick(kPositive, rng)) + " " + keyword + " overall .";
    case 3:
      return std::string(Pick(kMild, rng)) + " " + keyword +
             " , nothing more .";
    case 2:
      return std::string(Pick(kNegative, rng)) + " " + keyword +
             " this time .";
    case 1:
      return std::string(Pick(kIntensifiers, rng)) + " " +
             Pick(kStrongNegative, rng) + " and " + Pick(kIntensifiers, rng) +
             " " + Pick(kStrongNegative, rng) + " " + keyword + " .";
    default:
      SUBDEX_CHECK_MSG(false, "target score out of [1,5]");
      return "";
  }
}

}  // namespace

ReviewGenerator::ReviewGenerator(std::vector<std::string> dimension_keywords)
    : keywords_(std::move(dimension_keywords)) {
  SUBDEX_CHECK(!keywords_.empty());
}

std::string ReviewGenerator::Generate(const std::vector<int>& target_scores,
                                      Rng* rng) const {
  SUBDEX_CHECK(target_scores.size() == keywords_.size());
  std::string review = Pick(kFillers, rng);
  review += " . ";
  for (size_t d = 0; d < keywords_.size(); ++d) {
    review += Pick(kSpacers, rng);
    review += " ";
    review += DimensionSentence(keywords_[d], target_scores[d], rng);
    review += " ";
  }
  return review;
}

}  // namespace subdex
