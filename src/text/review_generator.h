#ifndef SUBDEX_TEXT_REVIEW_GENERATOR_H_
#define SUBDEX_TEXT_REVIEW_GENERATOR_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace subdex {

/// Synthesizes free-form review text whose per-dimension sentiment, when
/// run back through ReviewExtractor, lands on the requested 1..5 rating.
/// Together with the extractor, this closes the loop of the paper's Yelp
/// pipeline: the synthetic dataset stores review *text*, and the subjective
/// rating dimensions are extracted from it, not copied.
class ReviewGenerator {
 public:
  /// `dimension_keywords[d]` is the word the review uses to mention
  /// dimension d (e.g. "food", "service", "ambiance").
  explicit ReviewGenerator(std::vector<std::string> dimension_keywords);

  /// One review mentioning every dimension once; `target_scores[d]` must be
  /// in [1, 5].
  SUBDEX_NODISCARD
  std::string Generate(const std::vector<int>& target_scores, Rng* rng) const;

 private:
  std::vector<std::string> keywords_;
};

}  // namespace subdex

#endif  // SUBDEX_TEXT_REVIEW_GENERATOR_H_
