#ifndef SUBDEX_TEXT_REVIEW_EXTRACTION_H_
#define SUBDEX_TEXT_REVIEW_EXTRACTION_H_

#include <optional>
#include <string>
#include <vector>

#include "text/sentiment.h"
#include "util/status.h"

namespace subdex {

/// Per-dimension rating extraction from free-form review text, mirroring
/// the paper's Yelp pipeline (Section 5.1): for a rating dimension keyword
/// (e.g. "service"), every phrase containing the keyword within a fixed
/// window of words (default 5 on each side) is scored with the sentiment
/// analyzer, and the dimension's rating is the average phrase sentiment
/// mapped onto the integer scale.
class ReviewExtractor {
 public:
  /// `keywords[d]` holds the trigger words of dimension d (a dimension may
  /// have synonyms, e.g. {"ambiance", "atmosphere"}).
  ReviewExtractor(std::vector<std::vector<std::string>> keywords,
                  int scale = 5, size_t window = 5);

  SUBDEX_NODISCARD size_t num_dimensions() const { return keywords_.size(); }
  SUBDEX_NODISCARD int scale() const { return scale_; }

  /// Average compound sentiment of the keyword windows of dimension `d`, or
  /// nullopt when the review never mentions the dimension.
  SUBDEX_NODISCARD std::optional<double> DimensionSentiment(
      const std::vector<std::string>& tokens, size_t d) const;

  /// Ratings for all dimensions; unmentioned dimensions fall back to
  /// `fallback` (e.g. the review's overall score).
  SUBDEX_NODISCARD std::vector<double> ExtractScores(const std::string& review,
                                    double fallback) const;

 private:
  std::vector<std::vector<std::string>> keywords_;
  int scale_;
  size_t window_;
  SentimentAnalyzer analyzer_;
};

}  // namespace subdex

#endif  // SUBDEX_TEXT_REVIEW_EXTRACTION_H_
