#include "text/review_extraction.h"

#include <algorithm>

#include "util/check.h"

namespace subdex {

ReviewExtractor::ReviewExtractor(
    std::vector<std::vector<std::string>> keywords, int scale, size_t window)
    : keywords_(std::move(keywords)), scale_(scale), window_(window) {
  SUBDEX_CHECK(!keywords_.empty());
  SUBDEX_CHECK(scale_ >= 2);
}

std::optional<double> ReviewExtractor::DimensionSentiment(
    const std::vector<std::string>& tokens, size_t d) const {
  SUBDEX_CHECK(d < keywords_.size());
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    bool match = false;
    for (const std::string& kw : keywords_[d]) {
      if (tokens[i] == kw) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    size_t begin = i >= window_ ? i - window_ : 0;
    size_t end = std::min(tokens.size(), i + window_ + 1);
    std::vector<std::string> phrase(tokens.begin() + static_cast<long>(begin),
                                    tokens.begin() + static_cast<long>(end));
    sum += analyzer_.ScoreTokens(phrase);
    ++hits;
  }
  if (hits == 0) return std::nullopt;
  return sum / static_cast<double>(hits);
}

std::vector<double> ReviewExtractor::ExtractScores(const std::string& review,
                                                   double fallback) const {
  std::vector<std::string> tokens = Tokenize(review);
  std::vector<double> out(keywords_.size(), fallback);
  for (size_t d = 0; d < keywords_.size(); ++d) {
    std::optional<double> sentiment = DimensionSentiment(tokens, d);
    if (sentiment.has_value()) {
      out[d] = SentimentAnalyzer::CompoundToScale(*sentiment, scale_);
    }
  }
  return out;
}

}  // namespace subdex
