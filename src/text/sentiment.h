#ifndef SUBDEX_TEXT_SENTIMENT_H_
#define SUBDEX_TEXT_SENTIMENT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>
#include "util/status.h"

namespace subdex {

/// Lower-cased word tokens; punctuation tokens ("!", "?") are kept because
/// the scorer uses exclamation emphasis.
std::vector<std::string> Tokenize(std::string_view text);

/// A compact VADER-style rule-based sentiment scorer (Hutto & Gilbert 2014),
/// reimplemented from scratch with a built-in review-domain lexicon. The
/// paper extracts Yelp's per-dimension rating scores by running VADER over
/// phrase windows around dimension keywords; this class plays that role for
/// the synthetic review pipeline.
///
/// Supported rules: word valences in [-4, 4], booster/dampener words within
/// 2 tokens before a sentiment word, negation within 3 tokens before
/// (flips and damps the valence), exclamation emphasis, and the VADER
/// compound normalization x / sqrt(x^2 + alpha) into [-1, 1].
class SentimentAnalyzer {
 public:
  SentimentAnalyzer();

  /// Compound sentiment of a token span, in [-1, 1]; 0 for neutral text.
  SUBDEX_NODISCARD
  double ScoreTokens(const std::vector<std::string>& tokens) const;

  /// Convenience: tokenize + score.
  SUBDEX_NODISCARD double ScoreText(std::string_view text) const;

  /// Valence of a single lexicon word (0 if absent).
  SUBDEX_NODISCARD double WordValence(const std::string& word) const;

  /// Maps a compound score in [-1, 1] to the integer rating scale
  /// {1, ..., scale} by linear interpolation.
  static int CompoundToScale(double compound, int scale);

 private:
  std::unordered_map<std::string, double> lexicon_;
  std::unordered_map<std::string, double> boosters_;  // signed increments
};

}  // namespace subdex

#endif  // SUBDEX_TEXT_SENTIMENT_H_
