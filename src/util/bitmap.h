#ifndef SUBDEX_UTIL_BITMAP_H_
#define SUBDEX_UTIL_BITMAP_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace subdex {

/// Fixed-size bitset used for fast row-membership tests. The subjective
/// database keeps one bitmap per (attribute, value) so that rating groups —
/// conjunctions of attribute-value pairs over reviewers and items — can be
/// materialized with a handful of ANDs instead of per-row predicate checks.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits, bool value = false);

  SUBDEX_NODISCARD size_t size() const { return num_bits_; }

  void Set(size_t i);
  void Clear(size_t i);
  SUBDEX_NODISCARD bool Test(size_t i) const;

  /// In-place intersection; both operands must have the same size.
  void And(const Bitmap& other);
  /// In-place union; both operands must have the same size.
  void Or(const Bitmap& other);

  /// Number of set bits.
  SUBDEX_NODISCARD size_t Count() const;

  /// Indices of all set bits, ascending.
  SUBDEX_NODISCARD std::vector<uint32_t> ToIndices() const;

  /// Sets every bit.
  void SetAll();

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_BITMAP_H_
