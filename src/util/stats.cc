#include "util/stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/check.h"

namespace subdex {

void RunningStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  count_ = n;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double WallTimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double MedianOfRuns(size_t repeats, const std::function<double()>& sample) {
  if (repeats == 0) repeats = 1;
  std::vector<double> values;
  values.reserve(repeats);
  for (size_t i = 0; i < repeats; ++i) values.push_back(sample());
  return Median(std::move(values));
}

double HoeffdingSerflingEpsilon(size_t sampled, size_t total, double delta) {
  SUBDEX_CHECK(delta > 0.0 && delta < 1.0);
  SUBDEX_CHECK(total > 0);
  if (sampled < 2) return 1.0;
  if (sampled >= total) return 0.0;
  double u = static_cast<double>(sampled);
  double n = static_cast<double>(total);
  double coverage = 1.0 - (u - 1.0) / n;
  double log_term =
      2.0 * std::log(std::log(u)) + std::log(M_PI * M_PI / (3.0 * delta));
  // log(log(u)) is negative for u < e; clamp the numerator at a small
  // positive value so early phases get a wide (conservative) interval.
  if (log_term < 0.0) log_term = std::log(M_PI * M_PI / (3.0 * delta));
  double eps = std::sqrt(coverage * log_term / (2.0 * u));
  return std::min(eps, 1.0);
}

}  // namespace subdex
