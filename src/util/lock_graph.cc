#include "util/lock_graph.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace subdex::lock_graph {
namespace {

// The detector must not recurse into subdex::Mutex (its hooks are called
// from inside Mutex::Lock), so its own state is protected by a raw
// spinlock over std::atomic_flag. Hold times are microseconds (hash-map
// probes on short strings), so spinning beats blocking here — and it keeps
// the raw-primitive lint allowlist at exactly src/util/mutex.h.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) : l_(l) { l_.lock(); }
  ~SpinGuard() { l_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& l_;
};

// One lock currently held by a thread, with its acquisition site.
struct Held {
  const void* mutex;
  const char* name;
  int rank;
  const char* file;
  unsigned line;
};

struct EdgeInfo {
  // Sites recorded when the edge was first observed; later traversals of
  // the same edge don't overwrite them, so a cycle report always shows a
  // real interleaving that happened.
  std::string holder_site;
  std::string acquire_site;
};

// name -> (name acquired after it -> first-observation sites).
using Graph =
    std::unordered_map<std::string, std::unordered_map<std::string, EdgeInfo>>;

struct GlobalState {
  SpinLock lock;
  Graph graph;
};

GlobalState& State() {
  // Meyers static (not a leaked new: ci/lint.sh bans raw new even here).
  // Mutexes acquired during static destruction after this is destroyed
  // would be a pre-existing shutdown-order bug; SubDEx joins all threads
  // before main returns.
  static GlobalState state;
  return state;
}

std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

std::string Site(const char* file, unsigned line) {
  return std::string(file) + ":" + std::to_string(line);
}

// DFS over out-edges: is `to` reachable from `from`? Caller holds the
// state spinlock. Iterative with an explicit stack so a deep graph can't
// overflow the thread stack.
bool Reachable(const Graph& graph, const std::string& from,
               const std::string& to,
               std::vector<const std::string*>* path_out) {
  struct Frame {
    const std::string* node;
    std::unordered_map<std::string, EdgeInfo>::const_iterator next;
    std::unordered_map<std::string, EdgeInfo>::const_iterator end;
  };
  std::vector<Frame> stack;
  std::vector<std::string> visited;
  auto seen = [&visited](const std::string& n) {
    for (const auto& v : visited) {
      if (v == n) return true;
    }
    return false;
  };

  auto push = [&](const std::string& node) {
    auto it = graph.find(node);
    if (it == graph.end()) {
      stack.push_back(Frame{&node, {}, {}});
      stack.back().next = stack.back().end;  // no out-edges
    } else {
      stack.push_back(Frame{&node, it->second.begin(), it->second.end()});
    }
    visited.push_back(node);
  };

  if (from == to) {
    if (path_out != nullptr) path_out->push_back(&from);
    return true;
  }
  push(from);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next == top.end) {
      stack.pop_back();
      continue;
    }
    const std::string& succ = top.next->first;
    ++top.next;
    if (succ == to) {
      if (path_out != nullptr) {
        for (const Frame& f : stack) path_out->push_back(f.node);
        path_out->push_back(&succ);
      }
      return true;
    }
    if (!seen(succ)) push(succ);
  }
  return false;
}

[[noreturn]] void ReportViolation(const char* kind, const Held& held,
                                  const char* name, const char* file,
                                  unsigned line, const std::string& extra) {
  std::string msg = std::string(kind) + ": acquiring \"" + name + "\" at " +
                    Site(file, line) + " while holding \"" + held.name +
                    "\" acquired at " + Site(held.file, held.line);
  if (!extra.empty()) {
    msg += "; ";
    msg += extra;
  }
  check_internal::CheckFail(file, static_cast<int>(line),
                            "lock-discipline violation", msg.c_str());
}

}  // namespace

void OnAcquiring(const void* mutex, const char* name, int rank,
                 const char* file, unsigned line) {
  std::vector<Held>& held = HeldStack();

  for (const Held& h : held) {
    if (h.mutex == mutex) {
      ReportViolation("recursive acquisition (self-deadlock)", h, name, file,
                      line, "");
    }
    if (std::string_view(h.name) == name) {
      ReportViolation("same-name nesting", h, name, file, line,
                      "two locks of one family must never nest");
    }
    if (rank != 0 && h.rank != 0 && rank <= h.rank) {
      ReportViolation(
          "rank inversion", h, name, file, line,
          "rank " + std::to_string(rank) + " must exceed held rank " +
              std::to_string(h.rank) + " (see util/lock_rank.h)");
    }
  }

  if (!held.empty()) {
    GlobalState& state = State();
    SpinGuard guard(state.lock);
    // Cycle check BEFORE inserting this acquisition's edges: a path from
    // `name` back to any held lock means some other thread (or an earlier
    // call here) acquired them in the opposite order.
    for (const Held& h : held) {
      std::vector<const std::string*> path;
      std::string target(h.name);
      std::string source(name);
      if (Reachable(state.graph, source, target, &path)) {
        std::string chain;
        for (std::size_t i = 0; i < path.size(); ++i) {
          if (i != 0) chain += " -> ";
          chain += "\"" + *path[i] + "\"";
        }
        // The first edge of the reverse path carries the sites of the
        // conflicting (opposite-order) acquisition.
        std::string extra = "acquired-after cycle " + chain + " -> \"" +
                            name + "\"";
        if (path.size() >= 2) {
          auto from_it = state.graph.find(*path[0]);
          if (from_it != state.graph.end()) {
            auto to_it = from_it->second.find(*path[1]);
            if (to_it != from_it->second.end()) {
              extra += "; conflicting order: \"" + *path[0] +
                       "\" held at " + to_it->second.holder_site +
                       " when \"" + *path[1] + "\" was acquired at " +
                       to_it->second.acquire_site;
            }
          }
        }
        ReportViolation("lock-order cycle", h, name, file, line, extra);
      }
    }
    for (const Held& h : held) {
      auto& out = state.graph[h.name];
      out.try_emplace(name, EdgeInfo{Site(h.file, h.line), Site(file, line)});
    }
  }

  held.push_back(Held{mutex, name, rank, file, line});
}

void OnReleased(const void* mutex) {
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mutex == mutex) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock the detector never saw acquired: a hook-routing bug
  // in util/mutex.h, not a user error.
  check_internal::CheckFail(__FILE__, __LINE__, "lock-discipline violation",
                            "released a mutex not on this thread's held "
                            "stack (detector hook mismatch)");
}

std::vector<Edge> Edges() {
  GlobalState& state = State();
  SpinGuard guard(state.lock);
  std::vector<Edge> edges;
  for (const auto& [from, out] : state.graph) {
    for (const auto& [to, info] : out) {
      edges.push_back(Edge{from, to, info.holder_site, info.acquire_site});
    }
  }
  return edges;
}

bool HasEdge(std::string_view from, std::string_view to) {
  GlobalState& state = State();
  SpinGuard guard(state.lock);
  auto it = state.graph.find(std::string(from));
  if (it == state.graph.end()) return false;
  return it->second.find(std::string(to)) != it->second.end();
}

std::size_t HeldByCurrentThread() { return HeldStack().size(); }

void ResetForTest() {
  GlobalState& state = State();
  SpinGuard guard(state.lock);
  state.graph.clear();
  HeldStack().clear();
}

}  // namespace subdex::lock_graph
