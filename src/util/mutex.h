#ifndef SUBDEX_UTIL_MUTEX_H_
#define SUBDEX_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

#if !defined(SUBDEX_DEADLOCK_DETECTOR)
#define SUBDEX_DEADLOCK_DETECTOR 0
#endif

#if SUBDEX_DEADLOCK_DETECTOR
#include <source_location>

#include "util/lock_graph.h"
#endif

namespace subdex {

// The armed and unarmed Mutex/MutexLock have different member-function
// bodies (and MutexLock different members), so mixing translation units
// built with and without SUBDEX_DEADLOCK_DETECTOR would be an ODR
// violation with silently-merged inline symbols. The per-mode inline
// namespace gives the two definitions distinct mangled names: mixed
// objects fail to link instead of miscompiling.
#if SUBDEX_DEADLOCK_DETECTOR
inline namespace lock_discipline_armed {
#else
inline namespace lock_discipline_off {
#endif

/// Annotated wrapper around std::mutex. libstdc++'s std::mutex carries no
/// thread-safety attributes, so Clang's -Wthread-safety cannot track it;
/// this thin shim restores the analysis with zero overhead in ordinary
/// builds (every method inlines to the std call). All mutex-protected
/// SubDEx classes use subdex::Mutex + SUBDEX_GUARDED_BY.
///
/// Every Mutex carries a NAME (required) and a RANK (optional, from
/// util/lock_rank.h; 0 = unranked). In ordinary builds they are inert
/// metadata; under -DSUBDEX_DEADLOCK_DETECTOR=ON every acquisition is
/// routed through the util/lock_graph.h lock-order detector, which aborts
/// with both acquisition sites on self-deadlock, same-name nesting, rank
/// inversion, or an acquired-after cycle. DESIGN.md §12 documents the
/// process-wide hierarchy.
class SUBDEX_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must be a string literal (or otherwise outlive the Mutex): it
  /// is stored unowned so construction stays allocation-free.
  explicit Mutex(const char* name, int rank = 0)
      : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if SUBDEX_DEADLOCK_DETECTOR
  void Lock(const std::source_location& site =
                std::source_location::current()) SUBDEX_ACQUIRE() {
    // Hook BEFORE the lock: a self-deadlock aborts with a report instead
    // of hanging on the second mu_.lock().
    lock_graph::OnAcquiring(this, name_, rank_, site.file_name(),
                            site.line());
    mu_.lock();
  }
  void Unlock() SUBDEX_RELEASE() {
    mu_.unlock();
    lock_graph::OnReleased(this);
  }
#else
  void Lock() SUBDEX_ACQUIRE() { mu_.lock(); }
  void Unlock() SUBDEX_RELEASE() { mu_.unlock(); }
#endif

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  // Only MutexLock may reach the wrapped std::mutex: a public native()
  // would let callers bypass both the thread-safety annotations and the
  // deadlock detector.
  friend class MutexLock;
  std::mutex& native() { return mu_; }

  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

/// RAII lock with scoped-capability annotations, replacing both
/// std::lock_guard and std::unique_lock over a subdex::Mutex. `WaitOnce*`
/// bridge to std::condition_variable: the analysis treats the capability
/// as held across the wait, which matches the caller-visible contract (the
/// predicate and all code around the wait run with the lock held).
class SUBDEX_SCOPED_CAPABILITY MutexLock {
 public:
#if SUBDEX_DEADLOCK_DETECTOR
  explicit MutexLock(Mutex& mu, const std::source_location& site =
                                    std::source_location::current())
      SUBDEX_ACQUIRE(mu)
      : mu_(mu), lock_(mu.native(), std::defer_lock) {
    lock_graph::OnAcquiring(&mu_, mu_.name(), mu_.rank(), site.file_name(),
                            site.line());
    lock_.lock();
  }
  ~MutexLock() SUBDEX_RELEASE() {
    lock_.unlock();
    lock_graph::OnReleased(&mu_);
  }
#else
  explicit MutexLock(Mutex& mu) SUBDEX_ACQUIRE(mu)
      : mu_(mu), lock_(mu.native()) {}
  ~MutexLock() SUBDEX_RELEASE() = default;
#endif

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// One std::condition_variable::wait round: releases the lock, blocks
  /// until notified (or spuriously woken), re-acquires. Callers loop on
  /// the predicate with the members read inline —
  ///
  ///   while (!done_) lock.WaitOnce(cv_);
  ///
  /// — rather than passing a predicate lambda: Clang's thread-safety
  /// analysis checks lambda bodies without the enclosing lock context, so
  /// a predicate lambda over guarded members would defeat the analysis.
#if SUBDEX_DEADLOCK_DETECTOR
  void WaitOnce(std::condition_variable& cv,
                const std::source_location& site =
                    std::source_location::current()) {
    // The wait releases and re-acquires the lock; mirror that in the
    // detector so locks taken by other threads during the wait don't
    // appear nested under this one. The re-acquisition is recorded
    // post-hoc: cv re-lock order is the same order the detector already
    // validated at the original acquisition.
    lock_graph::OnReleased(&mu_);
    cv.wait(lock_);
    lock_graph::OnAcquiring(&mu_, mu_.name(), mu_.rank(), site.file_name(),
                            site.line());
  }
#else
  void WaitOnce(std::condition_variable& cv) { cv.wait(lock_); }
#endif

  /// Timed WaitOnce: one wait round bounded by `timeout`. Returns false on
  /// timeout, true when notified (or spuriously woken) — either way the
  /// lock is re-held, and callers re-check their predicate exactly as with
  /// WaitOnce. This is what periodic background threads (the session
  /// reaper) loop on: sleep-with-early-wakeup under the lock discipline
  /// the analysis can see.
#if SUBDEX_DEADLOCK_DETECTOR
  bool WaitOnceFor(std::condition_variable& cv,
                   std::chrono::milliseconds timeout,
                   const std::source_location& site =
                       std::source_location::current()) {
    lock_graph::OnReleased(&mu_);
    const bool notified = cv.wait_for(lock_, timeout) ==
                          std::cv_status::no_timeout;
    lock_graph::OnAcquiring(&mu_, mu_.name(), mu_.rank(), site.file_name(),
                            site.line());
    return notified;
  }
#else
  bool WaitOnceFor(std::condition_variable& cv,
                   std::chrono::milliseconds timeout) {
    return cv.wait_for(lock_, timeout) == std::cv_status::no_timeout;
  }
#endif

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

#if SUBDEX_DEADLOCK_DETECTOR
}  // inline namespace lock_discipline_armed
#else
}  // inline namespace lock_discipline_off
#endif

}  // namespace subdex

#endif  // SUBDEX_UTIL_MUTEX_H_
