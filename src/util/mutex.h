#ifndef SUBDEX_UTIL_MUTEX_H_
#define SUBDEX_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace subdex {

/// Annotated wrapper around std::mutex. libstdc++'s std::mutex carries no
/// thread-safety attributes, so Clang's -Wthread-safety cannot track it;
/// this thin shim restores the analysis with zero overhead (every method
/// inlines to the std call). All mutex-protected SubDEx classes use
/// subdex::Mutex + SUBDEX_GUARDED_BY.
class SUBDEX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SUBDEX_ACQUIRE() { mu_.lock(); }
  void Unlock() SUBDEX_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop with std wait primitives. Only
  /// MutexLock should need this.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock with scoped-capability annotations, replacing both
/// std::lock_guard and std::unique_lock over a subdex::Mutex. `Wait`
/// bridges to std::condition_variable: the analysis treats the capability
/// as held across the wait, which matches the caller-visible contract (the
/// predicate and all code around the wait run with the lock held).
class SUBDEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SUBDEX_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~MutexLock() SUBDEX_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// One std::condition_variable::wait round: releases the lock, blocks
  /// until notified (or spuriously woken), re-acquires. Callers loop on
  /// the predicate with the members read inline —
  ///
  ///   while (!done_) lock.WaitOnce(cv_);
  ///
  /// — rather than passing a predicate lambda: Clang's thread-safety
  /// analysis checks lambda bodies without the enclosing lock context, so
  /// a predicate lambda over guarded members would defeat the analysis.
  void WaitOnce(std::condition_variable& cv) { cv.wait(lock_); }

  /// Timed WaitOnce: one wait round bounded by `timeout`. Returns false on
  /// timeout, true when notified (or spuriously woken) — either way the
  /// lock is re-held, and callers re-check their predicate exactly as with
  /// WaitOnce. This is what periodic background threads (the session
  /// reaper) loop on: sleep-with-early-wakeup under the lock discipline
  /// the analysis can see.
  bool WaitOnceFor(std::condition_variable& cv,
                   std::chrono::milliseconds timeout) {
    return cv.wait_for(lock_, timeout) == std::cv_status::no_timeout;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_MUTEX_H_
