#ifndef SUBDEX_UTIL_RANDOM_H_
#define SUBDEX_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace subdex {

/// Deterministic PCG32 pseudo-random generator (O'Neill, pcg-random.org,
/// XSH-RR 64/32 variant). Every stochastic component of SubDEx draws from a
/// seeded Rng so that experiments, datasets and simulated-user sessions are
/// exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint32_t UniformU32(uint32_t bound) {
    SUBDEX_CHECK(bound > 0);
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    SUBDEX_CHECK(lo <= hi);
    return lo + static_cast<int>(
                    UniformU32(static_cast<uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble() {
    uint64_t hi = NextU32() >> 5;  // 27 bits
    uint64_t lo = NextU32() >> 6;  // 26 bits
    return (static_cast<double>(hi) * 67108864.0 + static_cast<double>(lo)) /
           9007199254740992.0;  // 2^53
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (single value, caches nothing).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks one index according to non-negative weights (sum > 0).
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent s.
/// P(X = i) proportional to 1 / (i + 1)^s. Precomputes the CDF; sampling is
/// a binary search, O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  SUBDEX_NODISCARD size_t Sample(Rng* rng) const;
  SUBDEX_NODISCARD size_t size() const { return cdf_.size(); }

  /// Probability mass of rank i.
  SUBDEX_NODISCARD double Pmf(size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_RANDOM_H_
