#ifndef SUBDEX_UTIL_THREAD_POOL_H_
#define SUBDEX_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/lock_rank.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/status.h"

namespace subdex {

/// Fixed-size worker pool. The SDE engine owns one pool for its lifetime
/// and routes every hot path through it (the paper's "parallel query
/// execution": the optimal number of in-flight tasks equals the number of
/// available cores). The pool is safe to *share*: each `ParallelFor` call
/// blocks on its own completion latch, so concurrent callers — including
/// nested calls issued from inside a worker task — never observe each
/// other's work. The calling thread participates in executing its own
/// batch, which keeps nested batches deadlock-free even on a saturated
/// pool.
class ThreadPool {
 public:
  /// Lifetime counters, for the engine's per-step metrics.
  struct Stats {
    /// Total tasks ever enqueued (Submit calls + ParallelFor helper tasks).
    size_t tasks_submitted = 0;
    /// Total ParallelFor batches run.
    size_t batches_run = 0;
    /// Tasks currently waiting in the queue.
    size_t queue_depth = 0;
    /// High-water mark of the queue depth since construction.
    size_t max_queue_depth = 0;
  };

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget task. Tasks submitted directly must not
  /// throw (use ParallelFor for work that may fail).
  void Submit(std::function<void()> task) SUBDEX_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no worker is running a task.
  /// This is a *global* condition — with concurrent users it also waits
  /// for their work; batch callers should rely on ParallelFor's per-batch
  /// completion instead.
  void WaitIdle() SUBDEX_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n) across the pool and the calling thread,
  /// returning when every index of *this batch* has completed. The first
  /// exception thrown by `fn` is captured, the batch's remaining work is
  /// abandoned, and the exception is rethrown here.
  ///
  /// `stop` makes the batch cancellable: once the token is cancelled or
  /// its deadline expires, in-flight workers stop claiming new chunks and
  /// the call returns with the remaining indices unexecuted (no exception
  /// — the caller owns the stop condition and decides how to degrade).
  /// Chunks already running are never interrupted, so `fn` sees each index
  /// either fully executed or not at all. Returns true when every index
  /// ran, false when the stop condition cut the batch short.
  bool ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const StopToken& stop = StopToken()) SUBDEX_EXCLUDES(mu_);

  /// Chunked overload: runs fn(begin, end) over half-open ranges of about
  /// `grain` indices. Chunks are claimed dynamically from a shared counter
  /// (work-stealing-friendly: fast workers drain what slow ones leave), so
  /// `fn` must tolerate any chunk-to-thread assignment.
  bool ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn,
                   const StopToken& stop = StopToken()) SUBDEX_EXCLUDES(mu_);

  SUBDEX_NODISCARD size_t num_threads() const { return workers_.size(); }
  SUBDEX_NODISCARD Stats stats() const SUBDEX_EXCLUDES(mu_);

 private:
  /// A queued task plus (when the metrics layer is compiled in) its
  /// enqueue time, so dequeue can observe the queue-wait latency.
  struct QueuedTask {
    std::function<void()> fn;
#if SUBDEX_METRICS_ENABLED
    std::chrono::steady_clock::time_point enqueued;
#endif
  };

  void WorkerLoop() SUBDEX_EXCLUDES(mu_);
  /// Pops and runs one queued task on the calling thread (batch waiters
  /// help drain the queue). Returns false if the queue was empty.
  bool RunOneQueuedTask() SUBDEX_EXCLUDES(mu_);
  /// Marks the running task finished and wakes WaitIdle waiters when the
  /// pool drained.
  void FinishTask() SUBDEX_EXCLUDES(mu_);
  /// Dequeue bookkeeping shared by workers and helpers: records the
  /// task's queue wait and the run in the process metrics.
  static void RecordDequeue(const QueuedTask& task, bool helped);

  mutable Mutex mu_{"pool.queue", lock_rank::kPoolQueue};
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<QueuedTask> queue_ SUBDEX_GUARDED_BY(mu_);
  // Started in the constructor, joined in the destructor; immutable (and
  // lock-free to read) in between, which keeps num_threads() cheap.
  std::vector<std::thread> workers_;
  Stats stats_ SUBDEX_GUARDED_BY(mu_);
  size_t active_ SUBDEX_GUARDED_BY(mu_) = 0;
  bool shutdown_ SUBDEX_GUARDED_BY(mu_) = false;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_THREAD_POOL_H_
