#ifndef SUBDEX_UTIL_THREAD_POOL_H_
#define SUBDEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace subdex {

/// Fixed-size worker pool. The SDE engine uses it to evaluate several
/// candidate next-step operations concurrently (the paper's "parallel query
/// execution": the optimal number of in-flight tasks equals the number of
/// available cores). Tasks are void() closures; `WaitIdle()` blocks until
/// everything submitted so far has finished.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  void WaitIdle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_THREAD_POOL_H_
