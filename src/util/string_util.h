#ifndef SUBDEX_UTIL_STRING_UTIL_H_
#define SUBDEX_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace subdex {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True iff `s` parses completely as a finite double; stores it in *out.
bool ParseDouble(std::string_view s, double* out);

/// True iff `s` parses completely as an int; stores it in *out.
bool ParseInt(std::string_view s, int* out);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits);

}  // namespace subdex

#endif  // SUBDEX_UTIL_STRING_UTIL_H_
