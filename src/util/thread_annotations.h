#ifndef SUBDEX_UTIL_THREAD_ANNOTATIONS_H_
#define SUBDEX_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations (-Wthread-safety), in the style of
// abseil's thread_annotations.h. Under Clang, lock-discipline violations —
// touching a SUBDEX_GUARDED_BY member without its mutex, calling a
// SUBDEX_REQUIRES function unlocked, releasing a lock twice — become
// compile errors instead of waiting for a TSan run to execute the race.
// Under GCC (which has no such analysis) every macro expands to nothing,
// so annotated code stays portable. ci/check.sh runs the clang gate when a
// clang toolchain is present.
//
// Conventions (see DESIGN.md, "Correctness tooling"):
//  - every mutex-protected member is SUBDEX_GUARDED_BY(mu_), declared
//    directly below its mutex;
//  - private helpers called with the lock held are SUBDEX_REQUIRES(mu_);
//  - public entry points that take the lock themselves are
//    SUBDEX_EXCLUDES(mu_) so self-deadlock is caught at the call site;
//  - use util/mutex.h (subdex::Mutex / subdex::MutexLock), not bare
//    std::mutex: libstdc++'s std::mutex is unannotated, so the analysis
//    cannot see its acquisitions.

#if defined(__clang__) && (!defined(SWIG))
#define SUBDEX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SUBDEX_THREAD_ANNOTATION_(x)  // no-op
#endif

// Data members: protected by the given capability (mutex).
#define SUBDEX_GUARDED_BY(x) SUBDEX_THREAD_ANNOTATION_(guarded_by(x))
// Pointer members: the pointed-to data is protected by the capability.
#define SUBDEX_PT_GUARDED_BY(x) SUBDEX_THREAD_ANNOTATION_(pt_guarded_by(x))

// Functions: caller must hold / must not hold the capability.
#define SUBDEX_REQUIRES(...) \
  SUBDEX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SUBDEX_EXCLUDES(...) \
  SUBDEX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Functions that acquire/release the capability for their caller.
#define SUBDEX_ACQUIRE(...) \
  SUBDEX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SUBDEX_RELEASE(...) \
  SUBDEX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Types: a capability (mutex-like class) / an RAII scoped lock.
#define SUBDEX_CAPABILITY(x) SUBDEX_THREAD_ANNOTATION_(capability(x))
#define SUBDEX_SCOPED_CAPABILITY SUBDEX_THREAD_ANNOTATION_(scoped_lockable)

// Return-value annotation: returns a reference to the capability guarding
// the annotated data.
#define SUBDEX_RETURN_CAPABILITY(x) \
  SUBDEX_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot model (condition-variable
// re-acquisition, lock juggling across objects). Use sparingly; say why.
#define SUBDEX_NO_THREAD_SAFETY_ANALYSIS \
  SUBDEX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SUBDEX_UTIL_THREAD_ANNOTATIONS_H_
