#ifndef SUBDEX_UTIL_LOCK_RANK_H_
#define SUBDEX_UTIL_LOCK_RANK_H_

// The process-wide lock hierarchy, in one place (DESIGN.md §12 renders the
// same table with owners and guarded state). Ranks strictly increase from
// outer to inner: while a thread holds a lock of rank R it may only acquire
// locks of rank > R. The deadlock detector (util/lock_graph.h, armed with
// -DSUBDEX_DEADLOCK_DETECTOR=ON) enforces this at every acquisition and
// additionally runs cycle detection over the observed acquired-after graph,
// so an inversion is caught the first time it executes — not the first time
// it deadlocks under load.
//
// Rank 0 is reserved for unranked mutexes (test-local locks); the detector
// skips the rank comparison for them and relies on the graph alone.
//
// Adding a lock: pick the rank band that matches where it nests, leave gaps
// for future locks, give it a unique rank, and document the edge set in
// DESIGN.md §12.
namespace subdex::lock_rank {

// -- Server front end (outermost: held around queue/watch bookkeeping
//    only, never across a handler).
inline constexpr int kSessionReaper = 10;   // SessionManager::reaper_mu_
inline constexpr int kHttpQueue = 20;       // HttpServer::mu_
inline constexpr int kHttpWatch = 22;       // HttpServer::watch_mu_
inline constexpr int kSessionShard = 30;    // SessionManager::Shard::mu
inline constexpr int kSessionOrder = 33;    // ServerSession::order_mu
inline constexpr int kSessionLastStep = 35; // ServerSession::mu
inline constexpr int kSessionJournal = 37;  // SessionJournal::mu_

// -- Engine (held across a step's history-dependent phases, which fan out
//    into the cache and the pool below).
inline constexpr int kEngineHistory = 40;   // SdeEngine::mu_

// -- Shared engine substrate.
inline constexpr int kGroupCacheLru = 50;     // RatingGroupCache::mu_
inline constexpr int kGroupCacheFlight = 52;  // RatingGroupCache::Flight::mu
inline constexpr int kPoolQueue = 60;         // ThreadPool::mu_
inline constexpr int kPoolBatch = 62;         // thread_pool.cc Batch::mu
inline constexpr int kSessionLogState = 70;   // SessionLog::mu_

// -- Leaf registries (innermost: acquired under any of the above, never
//    acquire anything themselves).
inline constexpr int kFaultRegistry = 80;    // FaultInjector::mu_
inline constexpr int kMetricsRegistry = 90;  // MetricsRegistry::mu_

}  // namespace subdex::lock_rank

#endif  // SUBDEX_UTIL_LOCK_RANK_H_
