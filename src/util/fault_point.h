#ifndef SUBDEX_UTIL_FAULT_POINT_H_
#define SUBDEX_UTIL_FAULT_POINT_H_

// Named, seed-deterministic fault points for robustness testing.
//
// Production code marks the places where the outside world can fail —
// pool task execution, group materialization, db_io streams, session-log
// writes — with one of two macros:
//
//   SUBDEX_FAULT_POINT("group_cache.load");         // throws when fired
//   SUBDEX_FAULT_POINT_STATUS("db_io.save");        // returns an error
//                                                   // Status when fired
//
// Both compile to nothing unless the build defines SUBDEX_FAULT_INJECTION
// (cmake -DSUBDEX_FAULT_INJECTION=ON), so release binaries carry zero
// overhead. In an injection build, tests arm points by name through the
// process-wide FaultInjector: a point can fail (throw / error Status),
// delay (sleep, to force deadline expiry deterministically), or both, on a
// deterministic schedule (skip the first N hits, then fire each hit with a
// seeded probability). The fault-sweep stress test arms every registered
// point in turn and asserts the engine's invariants hold.

#if defined(SUBDEX_FAULT_INJECTION)

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace subdex {

/// The exception thrown by a fired SUBDEX_FAULT_POINT. Derived from
/// std::runtime_error so generic exception propagation (ThreadPool's batch
/// error capture, the engine's strong exception guarantee) is exercised
/// exactly as by a real failure.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Process-wide fault-point registry and trigger. Thread-safe: points are
/// hit from pool workers and armed from test threads.
class FaultInjector {
 public:
  struct ArmSpec {
    /// Skip this many hits after arming before the point may fire.
    size_t after_hits = 0;
    /// Probability that an eligible hit fires; draws come from a PCG32
    /// stream seeded per Arm() call, so a fixed arm spec yields a fixed
    /// fire/no-fire sequence.
    double probability = 1.0;
    uint64_t seed = 1;
    /// Sleep this long when firing (before failing, if `fail` is set).
    double delay_ms = 0.0;
    /// Whether a fired hit fails (throw / error Status) after the delay.
    bool fail = true;
  };

  static FaultInjector& Instance();

  /// Arms `point`; replaces any previous spec and restarts its schedule.
  void Arm(const std::string& point, ArmSpec spec) SUBDEX_EXCLUDES(mu_);
  void Disarm(const std::string& point) SUBDEX_EXCLUDES(mu_);
  /// Disarms every point and clears all counters; the set of registered
  /// names survives so discovery persists across sweep iterations.
  void Reset() SUBDEX_EXCLUDES(mu_);

  /// Every point name that has executed at least once in this process —
  /// the self-maintaining fault-point catalog the sweep test iterates.
  SUBDEX_NODISCARD
  std::vector<std::string> RegisteredPoints() const SUBDEX_EXCLUDES(mu_);
  SUBDEX_NODISCARD
  size_t HitCount(const std::string& point) const SUBDEX_EXCLUDES(mu_);
  SUBDEX_NODISCARD
  size_t FireCount(const std::string& point) const SUBDEX_EXCLUDES(mu_);

  /// Called by the macros on every execution of a fault point. Applies the
  /// armed delay (outside the registry lock) and returns true when the hit
  /// should fail.
  bool OnHit(const char* point) SUBDEX_EXCLUDES(mu_);

 private:
  struct PointState {
    size_t hits = 0;
    size_t fires = 0;
    size_t hits_since_arm = 0;
    bool armed = false;
    ArmSpec spec;
    Rng rng;
  };

  FaultInjector() = default;

  mutable Mutex mu_{"fault.registry", lock_rank::kFaultRegistry};
  std::unordered_map<std::string, PointState> points_ SUBDEX_GUARDED_BY(mu_);
};

}  // namespace subdex

#define SUBDEX_FAULT_POINT(point)                                         \
  do {                                                                    \
    if (::subdex::FaultInjector::Instance().OnHit(point)) {               \
      throw ::subdex::FaultInjectedError("injected fault at " point);     \
    }                                                                     \
  } while (0)

// Status-returning variant for the no-exceptions I/O layer: a fired hit
// returns StatusCode::kIoError from the enclosing function.
#define SUBDEX_FAULT_POINT_STATUS(point)                                  \
  do {                                                                    \
    if (::subdex::FaultInjector::Instance().OnHit(point)) {               \
      return ::subdex::Status::IoError("injected fault at " point);       \
    }                                                                     \
  } while (0)

#else  // !SUBDEX_FAULT_INJECTION

#define SUBDEX_FAULT_POINT(point) \
  do {                            \
  } while (0)

#define SUBDEX_FAULT_POINT_STATUS(point) \
  do {                                   \
  } while (0)

#endif  // SUBDEX_FAULT_INJECTION

#endif  // SUBDEX_UTIL_FAULT_POINT_H_
