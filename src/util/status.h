#ifndef SUBDEX_UTIL_STATUS_H_
#define SUBDEX_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace subdex {

/// Error codes for recoverable failures (I/O, malformed input, bad config).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
};

/// A lightweight success-or-error value. SubDEx never throws; fallible
/// operations return Status (or Result<T> when they produce a value).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kIoError:
        return "IoError";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. `value()` aborts if the result holds an error,
/// so callers must test `ok()` first on fallible paths.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    SUBDEX_CHECK_MSG(!std::get<Status>(data_).ok(),
                     "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    SUBDEX_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    SUBDEX_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    SUBDEX_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_STATUS_H_
