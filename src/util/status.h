#ifndef SUBDEX_UTIL_STATUS_H_
#define SUBDEX_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

// Contract-enforcement attributes (DESIGN.md §10). SUBDEX_NODISCARD marks
// pure accessors and value-producing functions whose result is the whole
// point of the call; discarding one is almost always a logic bug.
// SUBDEX_MUST_USE_RESULT marks Status/Result-returning functions: a dropped
// error silently corrupts engine results, so every call site must consume
// the return value (SUBDEX_CHECK_OK it, branch on ok(), or propagate).
// Both expand to C++17 [[nodiscard]]; the two names exist so a reader can
// tell an ignored-value smell from a swallowed-error bug at the signature.
// The Status and Result class declarations below also carry [[nodiscard]],
// which enforces the contract even for functions that forget the macro.
#define SUBDEX_NODISCARD [[nodiscard]]
#define SUBDEX_MUST_USE_RESULT [[nodiscard]]

namespace subdex {

/// Error codes for recoverable failures (I/O, malformed input, bad config).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
};

/// A lightweight success-or-error value. SubDEx never throws; fallible
/// operations return Status (or Result<T> when they produce a value).
class SUBDEX_NODISCARD Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  SUBDEX_MUST_USE_RESULT static Status Ok() { return Status(); }
  SUBDEX_MUST_USE_RESULT static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  SUBDEX_MUST_USE_RESULT static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  SUBDEX_MUST_USE_RESULT static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  SUBDEX_MUST_USE_RESULT static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  SUBDEX_MUST_USE_RESULT static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  SUBDEX_NODISCARD bool ok() const { return code_ == StatusCode::kOk; }
  SUBDEX_NODISCARD StatusCode code() const { return code_; }
  SUBDEX_NODISCARD const std::string& message() const { return message_; }

  SUBDEX_NODISCARD std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kIoError:
        return "IoError";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. `value()` aborts if the result holds an error,
/// so callers must test `ok()` first on fallible paths.
template <typename T>
class SUBDEX_NODISCARD Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    SUBDEX_CHECK_MSG(!std::get<Status>(data_).ok(),
                     "Result constructed from OK status without a value");
  }

  SUBDEX_NODISCARD bool ok() const { return std::holds_alternative<T>(data_); }

  SUBDEX_NODISCARD const T& value() const& {
    SUBDEX_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(data_);
  }
  SUBDEX_NODISCARD T& value() & {
    SUBDEX_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(data_);
  }
  SUBDEX_NODISCARD T&& value() && {
    SUBDEX_CHECK_MSG(ok(), "%s", status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  SUBDEX_MUST_USE_RESULT Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_STATUS_H_
