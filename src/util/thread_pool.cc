#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/check.h"
#include "util/fault_point.h"
#include "util/lock_rank.h"
#include "util/metrics.h"

namespace subdex {

namespace {

// Process-wide pool metrics (DESIGN.md §9 catalogue). Resolved once; the
// hot paths pay a static-local read plus a relaxed atomic add.
struct PoolMetrics {
  Counter& tasks_run;
  Counter& tasks_helped;
  Counter& batches;
  Counter& batch_stops;
  Gauge& queue_depth;
  Histogram& queue_wait_ms;

  static PoolMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static PoolMetrics m{
        reg.GetCounter("subdex_pool_tasks_run_total",
                       "Tasks executed by pool worker threads"),
        reg.GetCounter("subdex_pool_tasks_helped_total",
                       "Queued tasks drained by batch waiters instead of "
                       "workers (help-while-waiting)"),
        reg.GetCounter("subdex_pool_batches_total",
                       "ParallelFor batches issued"),
        reg.GetCounter("subdex_pool_batch_stops_total",
                       "ParallelFor batches cut short by a stop token"),
        reg.GetGauge("subdex_pool_queue_depth",
                     "Tasks currently waiting in the pool queue"),
        reg.GetHistogram("subdex_pool_queue_wait_ms",
                         MetricsRegistry::LatencyBucketsMs(),
                         "Time tasks spent queued before starting"),
    };
    return m;
  }
};

// Completion latch of one ParallelFor call. Batches from concurrent
// callers interleave freely in the worker queue; each caller waits only
// for its own helpers, never for global idleness.
struct Batch {
  Mutex mu{"pool.batch", lock_rank::kPoolBatch};
  std::condition_variable done_cv;
  // Helper tasks not yet finished.
  size_t outstanding SUBDEX_GUARDED_BY(mu) = 0;
  std::atomic<size_t> next{0};
  std::exception_ptr error SUBDEX_GUARDED_BY(mu);
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  SUBDEX_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued;
  queued.fn = std::move(task);
#if SUBDEX_METRICS_ENABLED
  queued.enqueued = std::chrono::steady_clock::now();
#endif
  {
    MutexLock lock(mu_);
    SUBDEX_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(queued));
    ++stats_.tasks_submitted;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    PoolMetrics::Get().queue_depth.Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::RecordDequeue([[maybe_unused]] const QueuedTask& task,
                               [[maybe_unused]] bool helped) {
#if SUBDEX_METRICS_ENABLED
  PoolMetrics& m = PoolMetrics::Get();
  m.queue_wait_ms.Observe(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - task.enqueued)
                              .count());
  m.tasks_run.Increment();
  if (helped) m.tasks_helped.Increment();
#endif
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) lock.WaitOnce(idle_cv_);
}

bool ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const StopToken& stop) {
  return ParallelFor(
      n, 1,
      [&fn](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      },
      stop);
}

bool ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn,
                             const StopToken& stop) {
  if (n == 0) return true;
  if (grain == 0) grain = 1;
  {
    MutexLock lock(mu_);
    ++stats_.batches_run;
  }
  PoolMetrics::Get().batches.Increment();
  auto batch = std::make_shared<Batch>();

  // Claims chunks until the counter is exhausted. On the first failure —
  // or once the caller's stop condition holds — the counter is
  // fast-forwarded so the batch's remaining work is abandoned. `completed`
  // counts executed indices so the caller can tell a full batch from a cut
  // one without a second stop poll.
  std::atomic<size_t> completed{0};
  auto drain = [batch, n, grain, &fn, &stop, &completed] {
    for (;;) {
      if (stop.ShouldStop()) {
        batch->next.store(n);
        return;
      }
      size_t begin = batch->next.fetch_add(grain);
      if (begin >= n) return;
      size_t end = std::min(n, begin + grain);
      try {
        SUBDEX_FAULT_POINT("thread_pool.chunk");
        fn(begin, end);
        completed.fetch_add(end - begin, std::memory_order_relaxed);
      } catch (...) {
        MutexLock lock(batch->mu);
        if (!batch->error) batch->error = std::current_exception();
        batch->next.store(n);
        return;
      }
    }
  };

  size_t num_chunks = (n + grain - 1) / grain;
  // The caller drains too, so `num_threads()` helpers suffice; extra ones
  // would only find the counter exhausted.
  size_t helpers = std::min(num_chunks, num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    {
      MutexLock lock(batch->mu);
      ++batch->outstanding;
    }
    Submit([drain, batch] {
      drain();
      bool last;
      {
        MutexLock lock(batch->mu);
        last = --batch->outstanding == 0;
      }
      if (last) batch->done_cv.notify_all();
    });
  }
  // Participate: guarantees forward progress when every worker is busy
  // (including the nested case where the caller *is* a worker).
  drain();
  // While our helpers are outstanding, keep executing *any* queued task
  // instead of blocking. A queued helper can belong to another caller's
  // batch whose owner is likewise waiting; if every waiter merely slept,
  // nested batches could deadlock with all threads parked and helpers
  // stuck in the queue.
  for (;;) {
    {
      MutexLock lock(batch->mu);
      if (batch->outstanding == 0) break;
    }
    if (!RunOneQueuedTask()) {
      // Queue empty: every outstanding helper is running on some thread
      // and will finish; now sleeping is safe.
      MutexLock lock(batch->mu);
      while (batch->outstanding != 0) lock.WaitOnce(batch->done_cv);
      break;
    }
  }
  // All helpers finished: the batch counter must be exhausted.
  SUBDEX_DCHECK_GE(batch->next.load(), n);
  std::exception_ptr error;
  {
    MutexLock lock(batch->mu);
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
  const bool full = completed.load(std::memory_order_relaxed) == n;
  if (!full) PoolMetrics::Get().batch_stops.Increment();
  return full;
}

bool ThreadPool::RunOneQueuedTask() {
  QueuedTask task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    PoolMetrics::Get().queue_depth.Set(static_cast<int64_t>(queue_.size()));
  }
  RecordDequeue(task, /*helped=*/true);
  task.fn();
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  MutexLock lock(mu_);
  --active_;
  if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) lock.WaitOnce(work_cv_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      PoolMetrics::Get().queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    RecordDequeue(task, /*helped=*/false);
    task.fn();
    FinishTask();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  MutexLock lock(mu_);
  Stats s = stats_;
  s.queue_depth = queue_.size();
  return s;
}

}  // namespace subdex
