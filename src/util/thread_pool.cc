#include "util/thread_pool.h"

#include <atomic>

#include "util/check.h"

namespace subdex {

ThreadPool::ThreadPool(size_t num_threads) {
  SUBDEX_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SUBDEX_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  size_t shards = std::min(n, num_threads());
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace subdex
