#include "util/crc32c.h"

#include <array>

namespace subdex {

namespace {

// The 256-entry lookup table for the reflected Castagnoli polynomial,
// built at compile time (one shift-xor octet walk per byte value).
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace subdex
