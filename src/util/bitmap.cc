#include "util/bitmap.h"

#include <bit>

namespace subdex {

Bitmap::Bitmap(size_t num_bits, bool value)
    : num_bits_(num_bits),
      words_((num_bits + 63) / 64, value ? ~uint64_t{0} : uint64_t{0}) {
  if (value) {
    // Clear padding bits past the end so Count() stays exact.
    size_t tail = num_bits_ % 64;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }
}

void Bitmap::Set(size_t i) {
  SUBDEX_CHECK(i < num_bits_);
  words_[i / 64] |= uint64_t{1} << (i % 64);
}

void Bitmap::Clear(size_t i) {
  SUBDEX_CHECK(i < num_bits_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

bool Bitmap::Test(size_t i) const {
  SUBDEX_CHECK(i < num_bits_);
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void Bitmap::And(const Bitmap& other) {
  SUBDEX_CHECK(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void Bitmap::Or(const Bitmap& other) {
  SUBDEX_CHECK(num_bits_ == other.num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::vector<uint32_t> Bitmap::ToIndices() const {
  std::vector<uint32_t> out;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      int b = std::countr_zero(bits);
      out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

void Bitmap::SetAll() {
  for (uint64_t& w : words_) w = ~uint64_t{0};
  size_t tail = num_bits_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace subdex
