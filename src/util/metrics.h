#ifndef SUBDEX_UTIL_METRICS_H_
#define SUBDEX_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/status.h"

// Process-wide observability primitives (DESIGN.md §9). The engine's hot
// paths increment Counters, set Gauges and observe Histograms through a
// shared MetricsRegistry; exporters render a consistent snapshot in
// Prometheus text or JSON form. The paper's whole evaluation (§5, per-step
// latency / pruning effectiveness / cache behaviour) is expressible as
// queries over this registry, and interactive-exploration benchmarks
// (IDEBench) judge systems on per-interaction latency *distributions* —
// hence fixed-bucket histograms rather than running means.
//
// Cost model: a Counter::Increment is one relaxed atomic fetch_add on a
// thread-sharded, cache-line-padded slot (no false sharing between worker
// threads); Histogram::Observe is a short linear bucket scan plus two
// relaxed fetch_adds. Configuring with -DSUBDEX_METRICS=OFF defines
// SUBDEX_METRICS_DISABLED, which compiles every primitive down to an empty
// inline body — instrumented call sites emit no code at all, and the
// exporters render an empty (but still well-formed) snapshot.

#if !defined(SUBDEX_METRICS_DISABLED)
#define SUBDEX_METRICS_ENABLED 1
#else
#define SUBDEX_METRICS_ENABLED 0
#endif

namespace subdex {

/// Monotonically increasing event count. Increments are sharded by thread
/// onto cache-line-sized slots, so concurrent workers never contend on one
/// cache line; Value() folds the shards (exact, but not a point-in-time
/// atomic snapshot across concurrent writers — fine for monitoring).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

#if SUBDEX_METRICS_ENABLED
  void Increment(uint64_t n = 1) noexcept {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  SUBDEX_NODISCARD uint64_t Value() const noexcept {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }
  /// Zeroes the counter (test isolation only; races with writers).
  void Reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  /// Each thread hashes to one fixed shard. A power of two so the modulo
  /// is a mask; 16 shards cover far more workers than the engine pool ever
  /// runs while keeping Value() a 16-load fold.
  static constexpr size_t kNumShards = 16;
  static size_t ShardIndex() noexcept;

  std::array<Shard, kNumShards> shards_{};
#else
  void Increment(uint64_t = 1) noexcept {}
  SUBDEX_NODISCARD uint64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
#endif
};

/// Instantaneous signed value (queue depth, entry count). One atomic —
/// gauges are set on cold paths, sharding would only blur Value().
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

#if SUBDEX_METRICS_ENABLED
  void Set(int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  SUBDEX_NODISCARD int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
#else
  void Set(int64_t) noexcept {}
  void Add(int64_t) noexcept {}
  SUBDEX_NODISCARD int64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
#endif
};

/// Interpolated quantile extraction over fixed-bucket histogram data — the
/// one implementation shared by loadgen's latency recorder, the benches,
/// and consumers of the /metrics JSON export (Prometheus's
/// histogram_quantile() semantics, so a scrape and an in-process snapshot
/// agree). `bounds` are the inclusive upper bounds, `buckets` the
/// NON-cumulative per-bucket counts with one extra trailing +Inf entry
/// (the layout of Histogram::BucketCounts / HistogramSample::buckets).
///
/// Semantics, pinned by tests/metrics_test.cc:
///   - q is clamped to [0, 1]; the target rank is q * total_count.
///   - The quantile is linearly interpolated inside the bucket the rank
///     lands in; the first bucket's lower edge is 0 when bounds[0] > 0
///     (latency-style data), otherwise no interpolation is attempted and
///     bounds[0] itself is returned.
///   - A rank in the +Inf overflow bucket returns the last finite bound
///     (the histogram cannot resolve beyond it).
///   - An empty histogram (or empty `bounds`) returns NaN.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q);

/// Fixed-bucket distribution. `bounds` are inclusive upper bounds in
/// strictly increasing order; an implicit +Inf bucket catches the rest
/// (Prometheus histogram semantics: each exported bucket is cumulative).
/// Buckets are fixed at construction so Observe never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  SUBDEX_NODISCARD const std::vector<double>& bounds() const { return bounds_; }

#if SUBDEX_METRICS_ENABLED
  void Observe(double value) noexcept;
  SUBDEX_NODISCARD uint64_t TotalCount() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Interpolated quantile of the observed distribution; see
  /// HistogramQuantile for the exact semantics. NaN when empty.
  SUBDEX_NODISCARD double ValueAtQuantile(double q) const {
    return HistogramQuantile(bounds_, BucketCounts(), q);
  }
  SUBDEX_NODISCARD
  double Sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the
  /// last entry being the +Inf overflow bucket.
  SUBDEX_NODISCARD std::vector<uint64_t> BucketCounts() const;
  void Reset() noexcept;

 private:
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
#else
  void Observe(double) noexcept {}
  SUBDEX_NODISCARD uint64_t TotalCount() const noexcept { return 0; }
  SUBDEX_NODISCARD double Sum() const noexcept { return 0.0; }
  SUBDEX_NODISCARD std::vector<uint64_t> BucketCounts() const {
    return std::vector<uint64_t>(bounds_.size() + 1, 0);
  }
  SUBDEX_NODISCARD double ValueAtQuantile(double q) const {
    return HistogramQuantile(bounds_, BucketCounts(), q);
  }
  void Reset() noexcept {}
#endif

 private:
  std::vector<double> bounds_;
};

/// Point-in-time export of every registered metric, sorted by name. The
/// exporters are pure functions of this struct, so one snapshot renders
/// identically in both formats.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::string help;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string help;
    int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    std::string help;
    std::vector<double> bounds;
    /// Non-cumulative per-bucket counts; bounds.size() + 1 entries, the
    /// last one the +Inf bucket.
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;

    /// Interpolated quantile of the sampled distribution (see
    /// HistogramQuantile); how /metrics consumers and the load reports
    /// derive p50/p95/p99 from one scrape. NaN when the sample is empty.
    SUBDEX_NODISCARD double ValueAtQuantile(double q) const {
      return HistogramQuantile(bounds, buckets, q);
    }
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Prometheus text exposition format (# HELP / # TYPE lines, cumulative
  /// `_bucket{le=...}` series, `_sum` / `_count`).
  SUBDEX_NODISCARD std::string ToPrometheusText() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with full bucket detail.
  SUBDEX_NODISCARD std::string ToJson() const;
};

/// Process-wide metric registry. Get* registers on first use and returns a
/// stable reference — metrics are never destroyed or re-created, so call
/// sites may (and should) cache the reference in a static local and pay
/// the name lookup once. Re-registering an existing name returns the same
/// object (a histogram's original bounds win).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help = "")
      SUBDEX_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const std::string& help = "")
      SUBDEX_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "") SUBDEX_EXCLUDES(mu_);

  SUBDEX_NODISCARD MetricsSnapshot Snapshot() const SUBDEX_EXCLUDES(mu_);

  /// Zeroes every registered metric without unregistering it (cached
  /// references at call sites stay valid). Test isolation only.
  void ResetForTest() SUBDEX_EXCLUDES(mu_);

  /// Default latency buckets (ms): powers of two from 0.25 to 8192 — the
  /// sub-ms to multi-second range the paper's per-step latency tables
  /// (Table 2, Figs. 10-11) span.
  static std::vector<double> LatencyBucketsMs();
  /// Default magnitude buckets for sizes/counts: powers of four from 1 to
  /// ~10^6 (group sizes, candidate counts, fan-out widths).
  static std::vector<double> CountBuckets();
  /// Buckets for values already normalized into [0, 1] (bound gaps,
  /// utility spreads): ten equal 0.1-wide bins.
  static std::vector<double> UnitBuckets();

 private:
  template <typename M>
  struct Named {
    std::string name;
    std::string help;
    // unique_ptr keeps the metric's address stable across map rehashes.
    std::unique_ptr<M> metric;
  };

  mutable Mutex mu_{"metrics.registry", lock_rank::kMetricsRegistry};
  std::vector<Named<Counter>> counters_ SUBDEX_GUARDED_BY(mu_);
  std::vector<Named<Gauge>> gauges_ SUBDEX_GUARDED_BY(mu_);
  std::vector<Named<Histogram>> histograms_ SUBDEX_GUARDED_BY(mu_);
};

/// Renders the global registry in Prometheus text form — the one-liner for
/// examples and benches:  subdex::DumpMetrics(std::cout);
void DumpMetrics(std::ostream& out);

}  // namespace subdex

#endif  // SUBDEX_UTIL_METRICS_H_
