#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace subdex {

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; draws u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  SUBDEX_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SUBDEX_CHECK(w >= 0.0);
    total += w;
  }
  SUBDEX_CHECK(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  SUBDEX_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double r = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  SUBDEX_CHECK(i < cdf_.size());
  if (i == 0) return cdf_[0];
  return cdf_[i] - cdf_[i - 1];
}

}  // namespace subdex
