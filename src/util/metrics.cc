#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>
#include <thread>

#include "util/check.h"
#include "util/string_util.h"

namespace subdex {

namespace {

// Prometheus exposition: help text is a single line with backslash and
// newline escaped (label values would additionally escape '"', but SubDEx
// metrics are label-free except the generated `le` bounds, which are
// numeric).
std::string EscapePrometheusHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders a bucket bound as the shortest decimal that parses back to the
// identical double (so 0.25 stays "0.25", 1 stays "1"). Round-tripping is
// the conformance requirement: a scraper must recover the registered
// bounds exactly, and the previous fixed-precision rendering turned
// 1048576 into "1.04858e+06" and 0.1*7 into "0.7" (a different double).
std::string FormatBound(double bound) {
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, bound);
    if (std::strtod(buf, nullptr) == bound) break;
  }
  return buf;
}

}  // namespace

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q) {
  if (bounds.empty() || buckets.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  const size_t overflow = buckets.size() - 1;
  double cumulative_before = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0 || cumulative_before + in_bucket < rank) {
      cumulative_before += in_bucket;
      continue;
    }
    // The rank lands in bucket i. The overflow bucket has no finite upper
    // edge to interpolate toward; the best unbiased answer the fixed
    // buckets allow is the last finite bound.
    if (i >= overflow || i >= bounds.size()) return bounds.back();
    const double upper = bounds[i];
    double lower;
    if (i > 0) {
      lower = bounds[i - 1];
    } else if (upper > 0) {
      lower = 0.0;  // latency-style data: the first bucket starts at 0
    } else {
      return upper;  // no defensible lower edge; don't invent one
    }
    const double fraction = (rank - cumulative_before) / in_bucket;
    return lower + (upper - lower) * fraction;
  }
  // rank == total with trailing empty buckets: the last occupied bucket
  // already returned above; reaching here means floating-point slack.
  return bounds.back();
}

#if SUBDEX_METRICS_ENABLED

size_t Counter::ShardIndex() noexcept {
  // One hash per thread, cached: the hot path is a single thread_local
  // read. Thread ids recycle, but a collision only costs shared slots,
  // never correctness.
  thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kNumShards - 1);
  return index;
}

Histogram::Histogram(std::vector<double> bounds)
    : buckets_(bounds.size() + 1), bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SUBDEX_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double value) noexcept {
  // Linear scan: the registry's default bucket layouts have <= 16 bounds,
  // and the first bucket wins most observations on fast paths, so this
  // beats a branchy binary search in practice.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

#else

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {}

#endif  // SUBDEX_METRICS_ENABLED

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  for (auto& named : counters_) {
    if (named.name == name) return *named.metric;
  }
  counters_.push_back({name, help, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  for (auto& named : gauges_) {
    if (named.name == name) return *named.metric;
  }
  gauges_.push_back({name, help, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  MutexLock lock(mu_);
  for (auto& named : histograms_) {
    if (named.name == name) return *named.metric;
  }
  histograms_.push_back(
      {name, help, std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().metric;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    MutexLock lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& named : counters_) {
      snap.counters.push_back({named.name, named.help, named.metric->Value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& named : gauges_) {
      snap.gauges.push_back({named.name, named.help, named.metric->Value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& named : histograms_) {
      MetricsSnapshot::HistogramSample sample;
      sample.name = named.name;
      sample.help = named.help;
      sample.bounds = named.metric->bounds();
      sample.buckets = named.metric->BucketCounts();
      sample.count = named.metric->TotalCount();
      sample.sum = named.metric->Sum();
      snap.histograms.push_back(std::move(sample));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& named : counters_) named.metric->Reset();
  for (auto& named : gauges_) named.metric->Reset();
  for (auto& named : histograms_) named.metric->Reset();
}

std::vector<double> MetricsRegistry::LatencyBucketsMs() {
  std::vector<double> bounds;
  for (double b = 0.25; b <= 8192.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> MetricsRegistry::CountBuckets() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1048576.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> MetricsRegistry::UnitBuckets() {
  std::vector<double> bounds;
  // i / 10.0 is the double nearest each decimal (what strtod("0.7") gives);
  // 0.1 * i accumulates differently (0.1 * 7 != 0.7) and would force the
  // exporter to render 17 digits for a bound meant to read as "0.7".
  for (int i = 1; i <= 10; ++i) bounds.push_back(i / 10.0);
  return bounds;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const CounterSample& c : counters) {
    if (!c.help.empty()) {
      out << "# HELP " << c.name << ' ' << EscapePrometheusHelp(c.help)
          << '\n';
    }
    out << "# TYPE " << c.name << " counter\n";
    out << c.name << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : gauges) {
    if (!g.help.empty()) {
      out << "# HELP " << g.name << ' ' << EscapePrometheusHelp(g.help)
          << '\n';
    }
    out << "# TYPE " << g.name << " gauge\n";
    out << g.name << ' ' << g.value << '\n';
  }
  for (const HistogramSample& h : histograms) {
    if (!h.help.empty()) {
      out << "# HELP " << h.name << ' ' << EscapePrometheusHelp(h.help)
          << '\n';
    }
    out << "# TYPE " << h.name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out << h.name << "_bucket{le=\"" << FormatBound(h.bounds[i]) << "\"} "
          << cumulative << '\n';
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << h.name << "_sum " << FormatDouble(h.sum, 6) << '\n';
    out << h.name << "_count " << h.count << '\n';
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << EscapeJsonString(counters[i].name)
        << "\":" << counters[i].value;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << EscapeJsonString(gauges[i].name)
        << "\":" << gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    if (i > 0) out << ',';
    out << '"' << EscapeJsonString(h.name) << "\":{\"bounds\":[";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ',';
      out << FormatBound(h.bounds[b]);
    }
    out << "],\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ',';
      out << h.buckets[b];
    }
    out << "],\"count\":" << h.count
        << ",\"sum\":" << FormatDouble(h.sum, 6) << '}';
  }
  out << "}}";
  return out.str();
}

void DumpMetrics(std::ostream& out) {
  out << MetricsRegistry::Global().Snapshot().ToPrometheusText();
}

}  // namespace subdex
