#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace subdex {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars for double is available in GCC 11+.
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && std::isfinite(*out);
}

bool ParseInt(std::string_view s, int* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace subdex
