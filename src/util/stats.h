#ifndef SUBDEX_UTIL_STATS_H_
#define SUBDEX_UTIL_STATS_H_

#include <cstddef>
#include <functional>
#include <vector>
#include "util/status.h"

namespace subdex {

/// Streaming mean / variance accumulator (Welford's algorithm). Numerically
/// stable and mergeable, which the phased execution framework relies on to
/// combine per-phase partial results.
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);
  /// Merges another accumulator into this one (parallel/phased updates).
  void Merge(const RunningStat& other);

  SUBDEX_NODISCARD size_t count() const { return count_; }
  SUBDEX_NODISCARD double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divide by n); 0 for fewer than 2 samples.
  SUBDEX_NODISCARD double variance() const;
  /// Population standard deviation.
  SUBDEX_NODISCARD double stddev() const;
  SUBDEX_NODISCARD
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population standard deviation of a vector; 0 for fewer than 2 values.
double StdDev(const std::vector<double>& xs);

/// Median (averages the two middle values for even sizes); 0 for empty.
double Median(std::vector<double> xs);

/// Wall-clock duration of one `fn()` call in milliseconds (steady clock).
double WallTimeMs(const std::function<void()>& fn);

/// Runs `sample` max(repeats, 1) times and returns the median of the
/// returned values. The benches report median-of-N wall times through this
/// (one-sample timing is noise: a single page-fault- or frequency-scaling-
/// hit run would otherwise become a trajectory point); the repeat test in
/// tests/util_test.cc pins that an outlier run does not leak into the
/// reported value.
double MedianOfRuns(size_t repeats, const std::function<double()>& sample);

/// Hoeffding-Serfling deviation bound for the running mean of a [0,1]-valued
/// statistic computed from `sampled` draws without replacement out of a
/// population of `total`, at confidence 1 - delta. This is the worst-case
/// confidence-interval half-width used by SeeDB-style pruning (Vartak et al.
/// 2015, eq. derived from Serfling 1974):
///
///   eps = sqrt( (1 - (u-1)/n) * (2 ln ln u + ln(pi^2 / (3 delta))) / (2u) )
///
/// where u = sampled, n = total. Returns 1.0 (vacuous bound) when u < 2.
double HoeffdingSerflingEpsilon(size_t sampled, size_t total, double delta);

}  // namespace subdex

#endif  // SUBDEX_UTIL_STATS_H_
