#ifndef SUBDEX_UTIL_CRC32C_H_
#define SUBDEX_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace subdex {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// framing the session journal's records (storage/framed_log.h). Chosen
/// over CRC-32 (IEEE) for its better error-detection properties on short
/// records; matches RFC 3720 / iSCSI, so the test vectors are standard.
///
/// `Crc32cExtend` continues a running checksum: Crc32cExtend(Crc32c(a), b)
/// == Crc32c(a + b), letting callers checksum scattered buffers without
/// concatenating them.
SUBDEX_NODISCARD uint32_t Crc32cExtend(uint32_t crc, const void* data,
                                       size_t n);

SUBDEX_NODISCARD inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace subdex

#endif  // SUBDEX_UTIL_CRC32C_H_
