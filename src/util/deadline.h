#ifndef SUBDEX_UTIL_DEADLINE_H_
#define SUBDEX_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "util/status.h"

namespace subdex {

/// A steady-clock time budget. SubDEx is an interactive system: the paper's
/// per-step running time (StepResult::elapsed_ms) only matters because a
/// user is waiting, so every long-running phase takes a Deadline and
/// degrades to a best-effort answer instead of running long (the anytime
/// contract IDEBench asks of interactive data-exploration systems).
///
/// A default-constructed Deadline is unlimited and never expires; checking
/// it never reads the clock, so passing "no deadline" through hot paths is
/// free.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires.
  Deadline() = default;

  /// Expires at the fixed time point `at`.
  static Deadline At(Clock::time_point at) { return Deadline(at); }

  /// Expires `ms` milliseconds from now. Non-positive and NaN values
  /// produce an already-expired deadline (useful to force the fully
  /// degraded path; NaN is not a budget). Budgets too large for
  /// Clock::duration to represent clamp to Unlimited() — this is the
  /// untrusted-input edge: a client sending deadline_ms = 1e18 must get
  /// "effectively no deadline", not a duration-cast overflow that wraps
  /// to an already-expired deadline.
  static Deadline FromNowMs(double ms) {
    if (std::isnan(ms) || ms <= 0.0) return Expired();
    const Clock::time_point now = Clock::now();
    const double max_ms = std::chrono::duration<double, std::milli>(
                              Clock::time_point::max() - now)
                              .count();
    if (ms >= max_ms) return Unlimited();
    return Deadline(now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(ms)));
  }

  /// Unlimited, spelled explicitly.
  static Deadline Unlimited() { return Deadline(); }

  /// Already in the past: every check fails immediately. (The epoch, not
  /// time_point::min() — subtracting min() from now() in remaining_ms()
  /// would overflow the duration representation.)
  static Deadline Expired() { return Deadline(Clock::time_point{}); }

  SUBDEX_NODISCARD bool unlimited() const { return unlimited_; }

  SUBDEX_NODISCARD
  bool expired() const { return !unlimited_ && Clock::now() >= at_; }

  /// Milliseconds until expiry: +infinity when unlimited, <= 0 once
  /// expired.
  SUBDEX_NODISCARD double remaining_ms() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

  /// The expiry instant; meaningless when unlimited().
  SUBDEX_NODISCARD Clock::time_point time() const { return at_; }

 private:
  explicit Deadline(Clock::time_point at) : unlimited_(false), at_(at) {}

  bool unlimited_ = true;
  Clock::time_point at_{};
};

/// A shared cancellation flag. Copies observe one flag, so a caller can
/// hand a token into a running step (or a ParallelFor batch) and cancel it
/// from another thread. Cancellation is one-way and sticky.
class CancellationToken {
 public:
  CancellationToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; every copy of this token observes it.
  void RequestCancel() { cancelled_->store(true, std::memory_order_relaxed); }

  SUBDEX_NODISCARD bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// The polled stop condition handed into cancellable work: "has the caller
/// cancelled, or has the deadline passed?" A default-constructed StopToken
/// never stops and costs two predictable branches per poll — no clock
/// read, no atomic load — so unconditional polling on fast paths is safe.
class StopToken {
 public:
  /// Never stops.
  StopToken() = default;

  explicit StopToken(Deadline deadline) : deadline_(deadline) {}

  explicit StopToken(CancellationToken token)
      : token_(std::make_shared<CancellationToken>(std::move(token))) {}

  StopToken(Deadline deadline, CancellationToken token)
      : deadline_(deadline),
        token_(std::make_shared<CancellationToken>(std::move(token))) {}

  /// True once the token is cancelled or the deadline has expired. The
  /// order matters: an explicit cancel is reported even after expiry.
  SUBDEX_NODISCARD
  bool ShouldStop() const { return cancelled() || deadline_.expired(); }

  /// Explicit cancellation specifically (degrade-vs-abandon distinction:
  /// an expired deadline still wants a best-effort answer, a cancelled
  /// caller has walked away).
  SUBDEX_NODISCARD
  bool cancelled() const { return token_ != nullptr && token_->cancelled(); }

  SUBDEX_NODISCARD const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;  // unlimited by default
  // Null when no token was supplied; shared so copies of the StopToken
  // keep observing the caller's flag.
  std::shared_ptr<const CancellationToken> token_;
};

}  // namespace subdex

#endif  // SUBDEX_UTIL_DEADLINE_H_
