#ifndef SUBDEX_UTIL_CHECK_H_
#define SUBDEX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. SubDEx does not use exceptions; programming
// errors (violated preconditions, broken invariants) abort the process with
// a diagnostic, mirroring the CHECK() idiom of large C++ codebases.
// Recoverable errors (I/O, malformed input) are reported via Status/Result.

#define SUBDEX_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SUBDEX_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SUBDEX_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SUBDEX_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // SUBDEX_UTIL_CHECK_H_
