#ifndef SUBDEX_UTIL_CHECK_H_
#define SUBDEX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Invariant-checking macros. SubDEx does not use exceptions; programming
// errors (violated preconditions, broken invariants) abort the process with
// a diagnostic, mirroring the CHECK() idiom of large C++ codebases.
// Recoverable errors (I/O, malformed input) are reported via Status/Result.
//
// Policy (see DESIGN.md, "Correctness tooling"):
//   SUBDEX_CHECK      — preconditions that hold in every build; cheap enough
//                       to keep in release binaries (index bounds on cold
//                       paths, API misuse).
//   SUBDEX_DCHECK*    — algorithmic invariants verified in debug builds and
//                       compiled out of release builds; free on hot paths.
//   Status / Result   — anything untrusted input can trigger (I/O, parsing,
//                       malformed config). Never CHECK on user data.

namespace subdex {
namespace check_internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const char* detail) {
  if (detail != nullptr && detail[0] != '\0') {
    std::fprintf(stderr, "SUBDEX_CHECK failed at %s:%d: %s (%s)\n", file,
                 line, expr, detail);
  } else {
    std::fprintf(stderr, "SUBDEX_CHECK failed at %s:%d: %s\n", file, line,
                 expr);
  }
  std::fflush(stderr);
  std::abort();
}

// Streams both operand values of a failed binary DCHECK; ostringstream
// keeps this printable for any streamable type, and the call only happens
// on the (aborting) failure path, so the formatting cost is irrelevant.
template <typename A, typename B>
[[noreturn]] void DCheckBinaryFail(const char* file, int line,
                                   const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << "lhs=" << a << " rhs=" << b;
  CheckFail(file, line, expr, os.str().c_str());
}

// Renders either a Status (has ToString) or a Result<T> (has status()) for
// SUBDEX_CHECK_OK without this header depending on util/status.h.
template <typename T>
std::string StatusMessage(const T& v) {
  if constexpr (requires { v.status().ToString(); }) {
    return v.status().ToString();
  } else {
    return v.ToString();
  }
}

}  // namespace check_internal
}  // namespace subdex

#define SUBDEX_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::subdex::check_internal::CheckFail(__FILE__, __LINE__, #cond, "");   \
    }                                                                       \
  } while (0)

// Printf-style message, evaluated and formatted ONLY on failure:
//   SUBDEX_CHECK_MSG(n <= cap, "n=%zu exceeds capacity %zu", n, cap);
// A plain string literal also works: SUBDEX_CHECK_MSG(ok, "bad state").
// Dynamic strings must come through a format: SUBDEX_CHECK_MSG(ok, "%s", s).
#define SUBDEX_CHECK_MSG(cond, ...)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      char subdex_check_buf_[512];                                          \
      std::snprintf(subdex_check_buf_, sizeof(subdex_check_buf_),           \
                    __VA_ARGS__);                                           \
      ::subdex::check_internal::CheckFail(__FILE__, __LINE__, #cond,        \
                                          subdex_check_buf_);               \
    }                                                                       \
  } while (0)

// Aborts when a Status/Result-producing expression failed on a path where
// failure is a programming error (tests, examples, generators with
// validated inputs): SUBDEX_CHECK_OK(table.AppendRow(cells));
#define SUBDEX_CHECK_OK(expr)                                               \
  do {                                                                      \
    auto&& subdex_check_st_ = (expr);                                       \
    if (!subdex_check_st_.ok()) {                                           \
      ::subdex::check_internal::CheckFail(                                  \
          __FILE__, __LINE__, #expr " is OK",                               \
          ::subdex::check_internal::StatusMessage(subdex_check_st_)         \
              .c_str());                                                    \
    }                                                                       \
  } while (0)

// Debug-only invariants. Enabled when NDEBUG is unset (Debug builds) or
// when SUBDEX_FORCE_DCHECK is defined (the dedicated check_test target and
// the sanitizer trees force them on regardless of build type).
#if !defined(NDEBUG) || defined(SUBDEX_FORCE_DCHECK)
#define SUBDEX_DCHECK_ENABLED 1
#else
#define SUBDEX_DCHECK_ENABLED 0
#endif

#if SUBDEX_DCHECK_ENABLED

#define SUBDEX_DCHECK(cond) SUBDEX_CHECK(cond)

#define SUBDEX_DCHECK_OP_(op, a, b)                                         \
  do {                                                                      \
    auto&& subdex_dcheck_a_ = (a);                                          \
    auto&& subdex_dcheck_b_ = (b);                                          \
    if (!(subdex_dcheck_a_ op subdex_dcheck_b_)) {                          \
      ::subdex::check_internal::DCheckBinaryFail(                           \
          __FILE__, __LINE__, #a " " #op " " #b, subdex_dcheck_a_,          \
          subdex_dcheck_b_);                                                \
    }                                                                       \
  } while (0)

#else  // !SUBDEX_DCHECK_ENABLED

// Compiled out: operands are parsed (so they stay well-formed) but never
// evaluated at runtime, and the whole statement folds away.
#define SUBDEX_DCHECK(cond)          \
  do {                               \
    if (false) { (void)(cond); }     \
  } while (0)

// Same compiled-out shape: the discards keep both operands parsed and
// odr-used without evaluating them.
#define SUBDEX_DCHECK_OP_(op, a, b)           \
  do {                                        \
    if (false) { (void)(a), (void)(b); }      \
  } while (0)

#endif  // SUBDEX_DCHECK_ENABLED

#define SUBDEX_DCHECK_EQ(a, b) SUBDEX_DCHECK_OP_(==, a, b)
#define SUBDEX_DCHECK_NE(a, b) SUBDEX_DCHECK_OP_(!=, a, b)
#define SUBDEX_DCHECK_GE(a, b) SUBDEX_DCHECK_OP_(>=, a, b)
#define SUBDEX_DCHECK_GT(a, b) SUBDEX_DCHECK_OP_(>, a, b)
#define SUBDEX_DCHECK_LE(a, b) SUBDEX_DCHECK_OP_(<=, a, b)
#define SUBDEX_DCHECK_LT(a, b) SUBDEX_DCHECK_OP_(<, a, b)

#endif  // SUBDEX_UTIL_CHECK_H_
