#include "util/fault_point.h"

// The registry only exists in injection builds; in a normal build this
// translation unit is intentionally empty.
#if defined(SUBDEX_FAULT_INJECTION)

#include <chrono>
#include <thread>

namespace subdex {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::Arm(const std::string& point, ArmSpec spec) {
  MutexLock lock(mu_);
  PointState& state = points_[point];
  state.armed = true;
  state.spec = spec;
  state.hits_since_arm = 0;
  state.rng = Rng(spec.seed);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, state] : points_) {
    state.armed = false;
    state.hits = 0;
    state.fires = 0;
    state.hits_since_arm = 0;
  }
}

std::vector<std::string> FaultInjector::RegisteredPoints() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) names.push_back(name);
  return names;
}

size_t FaultInjector::HitCount(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

size_t FaultInjector::FireCount(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

bool FaultInjector::OnHit(const char* point) {
  double delay_ms = 0.0;
  bool fail = false;
  {
    MutexLock lock(mu_);
    PointState& state = points_[point];
    ++state.hits;
    if (state.armed) {
      ++state.hits_since_arm;
      if (state.hits_since_arm > state.spec.after_hits &&
          state.rng.Bernoulli(state.spec.probability)) {
        ++state.fires;
        delay_ms = state.spec.delay_ms;
        fail = state.spec.fail;
      }
    }
  }
  // Sleep outside the registry lock so a delaying point never serializes
  // unrelated points (or the arming test thread).
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return fail;
}

}  // namespace subdex

#endif  // SUBDEX_FAULT_INJECTION
