#ifndef SUBDEX_UTIL_LOCK_GRAPH_H_
#define SUBDEX_UTIL_LOCK_GRAPH_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

// Runtime lock-order (deadlock) detector behind subdex::Mutex. Compiled
// into the binary only when SUBDEX_DEADLOCK_DETECTOR=1 (cmake
// -DSUBDEX_DEADLOCK_DETECTOR=ON); in ordinary builds util/mutex.h never
// calls these hooks and the translation unit is dead weightless.
//
// Model (lockdep-style): each thread keeps a stack of currently-held
// subdex::Mutex instances. On every acquisition the detector
//
//   1. aborts on re-acquisition of the SAME instance (self-deadlock — the
//      hook runs before the underlying std::mutex::lock, so the process
//      dies with a report instead of hanging),
//   2. aborts when a lock is acquired while another lock of the SAME NAME
//      is held (two shards of one family must never nest),
//   3. aborts on a rank inversion: both locks carry a nonzero rank from
//      util/lock_rank.h and the incoming rank is <= a held rank,
//   4. records name->name "acquired-after" edges from every held lock to
//      the incoming one in a global graph, keyed by name so an order
//      proven on one instance pair indicts the whole family, and
//   5. searches the graph for a path from the incoming name back to any
//      held name — a cycle means two threads CAN deadlock even if this
//      interleaving didn't; the report shows both acquisition sites (the
//      site that created the conflicting edge, and the current one).
//
// Reports go through subdex::check_internal::CheckFail, i.e. the same
// abort-with-diagnostic machinery as SUBDEX_CHECK, carrying the caller's
// file:line captured via std::source_location in util/mutex.h.
namespace subdex::lock_graph {

// Pre-acquisition hook: runs rules 1-5 above, then pushes the lock onto
// the calling thread's held stack. `mutex` is an opaque instance identity;
// `name`/`rank` come from the Mutex constructor; `file`/`line` are the
// acquisition site.
void OnAcquiring(const void* mutex, const char* name, int rank,
                 const char* file, unsigned line);

// Release hook: pops `mutex` from the thread's held stack (locks are
// almost always released in LIFO order, but out-of-order release is legal
// and handled). Edges already recorded are deliberately kept forever:
// the graph accumulates orders over the whole process lifetime.
void OnReleased(const void* mutex);

// A recorded acquired-after edge: `to` was acquired while `from` was held.
// `holder_site` is where `from` had been acquired, `acquire_site` where
// `to` was — the two sites a deadlock report needs.
struct Edge {
  std::string from;
  std::string to;
  std::string holder_site;
  std::string acquire_site;
};

// Snapshot of the global graph, for tests and debugging.
std::vector<Edge> Edges();

// True when the graph has recorded `to` acquired while `from` was held.
bool HasEdge(std::string_view from, std::string_view to);

// Number of locks the calling thread currently holds (detector's view).
std::size_t HeldByCurrentThread();

// Clears the global graph and the calling thread's held stack. Test-only:
// real code never resets, the graph is cumulative by design.
void ResetForTest();

}  // namespace subdex::lock_graph

#endif  // SUBDEX_UTIL_LOCK_GRAPH_H_
