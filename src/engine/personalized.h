#ifndef SUBDEX_ENGINE_PERSONALIZED_H_
#define SUBDEX_ENGINE_PERSONALIZED_H_

#include <map>
#include <vector>

#include "engine/recommendation_builder.h"
#include "engine/session_log.h"
#include "util/status.h"

namespace subdex {

/// Log-based personalization — the modular Recommendation Builder
/// replacement the paper sketches ("personalized recommendations using
/// logs of previous operations [23, 42]", Section 5.2.2 / conclusion).
///
/// The model learns, from past sessions, how often the user's operations
/// touched each (side, attribute) — e.g. an analyst who always slices by
/// neighborhood and cuisine — and re-ranks SubDEx's candidate
/// recommendations by blending their Eq. 2 utility with that affinity.
class OperationPreferenceModel {
 public:
  OperationPreferenceModel() = default;

  /// Learns from one applied operation: every attribute added, removed or
  /// changed between the two selections gets a count.
  void ObserveTransition(const GroupSelection& from, const GroupSelection& to);

  /// Learns from every consecutive step pair of a logged session.
  void ObserveLog(const SessionLog& log);

  /// Total observed attribute touches.
  SUBDEX_NODISCARD double total_observations() const { return total_; }

  /// Affinity of moving from `from` to `to`, in [0, 1]: the mean relative
  /// popularity of the attributes the operation touches (0.5 when the
  /// model has seen nothing, so an untrained model is neutral).
  SUBDEX_NODISCARD
  double Affinity(const GroupSelection& from, const GroupSelection& to) const;

  /// Re-ranks recommendations by (1 - blend) * normalized utility +
  /// blend * affinity; blend in [0, 1], 0 keeps SubDEx's order.
  SUBDEX_NODISCARD
  std::vector<Recommendation> Rerank(std::vector<Recommendation> recs,
                                     const GroupSelection& current,
                                     double blend) const;

 private:
  // (0 = reviewer, 1 = item, attribute) -> touch count.
  std::map<std::pair<int, size_t>, double> touches_;
  double total_ = 0.0;
  double max_count_ = 0.0;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_PERSONALIZED_H_
