#ifndef SUBDEX_ENGINE_STEP_TIMINGS_H_
#define SUBDEX_ENGINE_STEP_TIMINGS_H_

#include <cstddef>

namespace subdex {

/// The pipeline phases of one exploration step, in execution order. Used
/// by the anytime/deadline machinery to report which phase a degraded step
/// cut short (StepResult::cut_phase).
enum class StepPhase {
  /// Nothing was cut (the step ran to completion).
  kNone = 0,
  /// Rating-group materialization (the step returned before doing any
  /// work — e.g. the deadline was already expired on entry).
  kMaterialize,
  /// The RM-Generator's phased scans stopped before consuming the whole
  /// group; the returned maps are scored over the records processed so
  /// far.
  kRmGeneration,
  /// GMM diversification was skipped; the returned maps are the
  /// best-so-far top-k by DW interestingness instead of the diversified
  /// RM-set.
  kGmmSelection,
  /// The recommendation fan-out was skipped or stopped early; the
  /// recommendation list is empty or incomplete.
  kRecommendations,
};

inline const char* StepPhaseName(StepPhase phase) {
  switch (phase) {
    case StepPhase::kNone:
      return "none";
    case StepPhase::kMaterialize:
      return "materialize";
    case StepPhase::kRmGeneration:
      return "rm-generation";
    case StepPhase::kGmmSelection:
      return "gmm-selection";
    case StepPhase::kRecommendations:
      return "recommendations";
  }
  return "unknown";
}

/// Wall-clock breakdown of one exploration step plus thread-pool work
/// counters. Surfaced on StepResult and reported by bench_micro; the sum
/// of the phase times can be less than StepResult::elapsed_ms (history
/// bookkeeping and candidate enumeration are not itemized).
struct StepTimings {
  /// Rating-group materialization of the step's own selection (cache
  /// lookup or O(|R|) scan).
  double materialize_ms = 0.0;
  /// RM-Generator phases of the display pipeline (Algorithm 1).
  double rm_generation_ms = 0.0;
  /// GMM diversification of the display pipeline.
  double gmm_selection_ms = 0.0;
  /// Recommendation fan-out: enumerating and evaluating candidate
  /// operations (each runs the full pipeline on its target group).
  double recommendation_ms = 0.0;
  /// Pool tasks enqueued during the step (0 without a pool).
  size_t pool_tasks = 0;
  /// ParallelFor batches issued during the step.
  size_t pool_batches = 0;
  /// Pool queue-depth high-water mark (pool lifetime, not per step).
  size_t pool_max_queue_depth = 0;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_STEP_TIMINGS_H_
