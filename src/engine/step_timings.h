#ifndef SUBDEX_ENGINE_STEP_TIMINGS_H_
#define SUBDEX_ENGINE_STEP_TIMINGS_H_

#include <cstddef>

namespace subdex {

/// Wall-clock breakdown of one exploration step plus thread-pool work
/// counters. Surfaced on StepResult and reported by bench_micro; the sum
/// of the phase times can be less than StepResult::elapsed_ms (history
/// bookkeeping and candidate enumeration are not itemized).
struct StepTimings {
  /// Rating-group materialization of the step's own selection (cache
  /// lookup or O(|R|) scan).
  double materialize_ms = 0.0;
  /// RM-Generator phases of the display pipeline (Algorithm 1).
  double rm_generation_ms = 0.0;
  /// GMM diversification of the display pipeline.
  double gmm_selection_ms = 0.0;
  /// Recommendation fan-out: enumerating and evaluating candidate
  /// operations (each runs the full pipeline on its target group).
  double recommendation_ms = 0.0;
  /// Pool tasks enqueued during the step (0 without a pool).
  size_t pool_tasks = 0;
  /// ParallelFor batches issued during the step.
  size_t pool_batches = 0;
  /// Pool queue-depth high-water mark (pool lifetime, not per step).
  size_t pool_max_queue_depth = 0;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_STEP_TIMINGS_H_
