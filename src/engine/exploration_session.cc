#include "engine/exploration_session.h"

#include "util/check.h"

namespace subdex {

const char* ExplorationModeName(ExplorationMode mode) {
  switch (mode) {
    case ExplorationMode::kUserDriven:
      return "user-driven";
    case ExplorationMode::kRecommendationPowered:
      return "recommendation-powered";
    case ExplorationMode::kFullyAutomated:
      return "fully-automated";
  }
  return "unknown";
}

ExplorationSession::ExplorationSession(const SubjectiveDatabase* db,
                                       EngineConfig config,
                                       ExplorationMode mode)
    : engine_(db, config), mode_(mode) {}

const StepResult& ExplorationSession::Execute(const GroupSelection& selection) {
  bool with_recs = mode_ != ExplorationMode::kUserDriven;
  path_.push_back(engine_.ExecuteStep(selection, with_recs));
  return path_.back();
}

const StepResult& ExplorationSession::Start(const GroupSelection& initial) {
  SUBDEX_CHECK_MSG(path_.empty(), "session already started");
  return Execute(initial);
}

const StepResult& ExplorationSession::ApplyOperation(
    const GroupSelection& next) {
  SUBDEX_CHECK_MSG(!path_.empty(), "call Start() first");
  SUBDEX_CHECK_MSG(mode_ != ExplorationMode::kFullyAutomated,
                   "fully-automated sessions accept no user operations");
  return Execute(next);
}

bool ExplorationSession::ApplyRecommendation(size_t index) {
  SUBDEX_CHECK_MSG(!path_.empty(), "call Start() first");
  SUBDEX_CHECK_MSG(mode_ != ExplorationMode::kUserDriven,
                   "user-driven sessions have no recommendations");
  const StepResult& prev = path_.back();
  if (index >= prev.recommendations.size()) return false;
  Execute(prev.recommendations[index].operation.target);
  return true;
}

size_t ExplorationSession::RunAutomated(size_t steps) {
  SUBDEX_CHECK_MSG(!path_.empty(), "call Start() first");
  size_t done = 0;
  for (; done < steps; ++done) {
    if (!ApplyRecommendation(0)) break;
  }
  return done;
}

const StepResult& ExplorationSession::last() const {
  SUBDEX_CHECK(!path_.empty());
  return path_.back();
}

}  // namespace subdex
