#include "engine/group_cache.h"

#include "util/check.h"
#include "util/fault_point.h"
#include "util/metrics.h"

namespace subdex {

namespace {

struct CacheMetrics {
  Counter& hits;
  Counter& misses;
  Counter& coalesced;
  Counter& evictions;
  Counter& loaded_bytes;
  Gauge& entries;

  static CacheMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static CacheMetrics m{
        reg.GetCounter("subdex_group_cache_hits_total",
                       "Rating-group lookups served from the cache"),
        reg.GetCounter("subdex_group_cache_misses_total",
                       "Rating-group lookups that materialized (leader "
                       "scans)"),
        reg.GetCounter("subdex_group_cache_coalesced_total",
                       "Lookups that waited on an in-flight scan instead "
                       "of duplicating it"),
        reg.GetCounter("subdex_group_cache_evictions_total",
                       "LRU evictions"),
        reg.GetCounter("subdex_group_cache_loaded_bytes_total",
                       "Bytes of record ids materialized by cache-miss "
                       "scans"),
        reg.GetGauge("subdex_group_cache_entries",
                     "Cached rating groups currently resident"),
    };
    return m;
  }
};

}  // namespace

RatingGroupCache::RatingGroupCache(const SubjectiveDatabase* db,
                                   size_t capacity)
    : db_(db), capacity_(capacity) {
  SUBDEX_CHECK(db_ != nullptr && db_->finalized());
}

std::string RatingGroupCache::KeyOf(const GroupSelection& selection) {
  std::string key;
  for (const AttributeValue& av : selection.reviewer_pred.conjuncts()) {
    key += "r" + std::to_string(av.attribute) + "=" +
           std::to_string(av.code) + ";";
  }
  for (const AttributeValue& av : selection.item_pred.conjuncts()) {
    key += "i" + std::to_string(av.attribute) + "=" +
           std::to_string(av.code) + ";";
  }
  return key;
}

RatingGroup RatingGroupCache::Get(const GroupSelection& selection) {
  if (capacity_ == 0) {
    {
      MutexLock lock(mu_);
      ++stats_.misses;
    }
    CacheMetrics::Get().misses.Increment();
    SUBDEX_FAULT_POINT("group_cache.load");
    RatingGroup group = RatingGroup::Materialize(*db_, selection);
    CacheMetrics::Get().loaded_bytes.Increment(group.size() *
                                               sizeof(RecordId));
    return group;
  }
  std::string key = KeyOf(selection);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU position
      ++stats_.hits;
      CacheMetrics::Get().hits.Increment();
      return RatingGroup(db_, selection, it->second->second);
    }
    auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      // Another thread is already scanning for this key: coalesce onto its
      // result instead of duplicating the O(|R|) materialization.
      flight = fit->second;
      ++stats_.coalesced;
      CacheMetrics::Get().coalesced.Increment();
    } else {
      flight = std::make_shared<Flight>();
      inflight_.emplace(key, flight);
      leader = true;
      ++stats_.misses;
      CacheMetrics::Get().misses.Increment();
    }
  }

  if (!leader) {
    // The leader completes the flight even on failure, so this wait is
    // bounded by the leader's scan; a deadline here would only duplicate
    // the scan the coalescing exists to avoid.
    // lint: unbounded(wait ends when the leader's scan does, failure included)
    MutexLock lock(flight->mu);
    while (!flight->done) lock.WaitOnce(flight->cv);
    // The leader failed: its error is ours too — the whole point of
    // coalescing is that waiters observe exactly what one scan would have
    // produced, failure included.
    if (flight->error) std::rethrow_exception(flight->error);
    return RatingGroup(db_, selection, flight->records);
  }

  // Leader: materialize outside the cache lock — single-flight guarantees
  // exactly one scan per key, and other keys' lookups are never blocked.
  // On failure the flight must still complete (exception stored, waiters
  // woken) or coalesced callers would sleep forever.
  RatingGroup group = [&] {
    try {
      SUBDEX_FAULT_POINT("group_cache.load");
      return RatingGroup::Materialize(*db_, selection);
    } catch (...) {
      {
        MutexLock lock(mu_);
        inflight_.erase(key);
      }
      {
        MutexLock lock(flight->mu);
        flight->error = std::current_exception();
        flight->done = true;
      }
      flight->cv.notify_all();
      throw;
    }
  }();
  CacheMetrics::Get().loaded_bytes.Increment(group.size() * sizeof(RecordId));
  {
    MutexLock lock(mu_);
    inflight_.erase(key);
    if (index_.find(key) == index_.end()) {
      lru_.emplace_front(key, group.shared_records());
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
        CacheMetrics::Get().evictions.Increment();
      }
    }
    // LRU discipline: the index mirrors the list exactly, and eviction
    // keeps the cache within its configured capacity.
    SUBDEX_DCHECK_EQ(index_.size(), lru_.size());
    SUBDEX_DCHECK_LE(lru_.size(), capacity_);
    stats_.entries = lru_.size();
    CacheMetrics::Get().entries.Set(static_cast<int64_t>(lru_.size()));
  }
  {
    MutexLock lock(flight->mu);
    flight->records = group.shared_records();
    flight->done = true;
  }
  flight->cv.notify_all();
  return group;
}

RatingGroupCache::Stats RatingGroupCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void RatingGroupCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  CacheMetrics::Get().entries.Set(0);
}

}  // namespace subdex
