#include "engine/group_cache.h"

#include "util/check.h"

namespace subdex {

RatingGroupCache::RatingGroupCache(const SubjectiveDatabase* db,
                                   size_t capacity)
    : db_(db), capacity_(capacity) {
  SUBDEX_CHECK(db_ != nullptr && db_->finalized());
}

std::string RatingGroupCache::KeyOf(const GroupSelection& selection) {
  std::string key;
  for (const AttributeValue& av : selection.reviewer_pred.conjuncts()) {
    key += "r" + std::to_string(av.attribute) + "=" +
           std::to_string(av.code) + ";";
  }
  for (const AttributeValue& av : selection.item_pred.conjuncts()) {
    key += "i" + std::to_string(av.attribute) + "=" +
           std::to_string(av.code) + ";";
  }
  return key;
}

RatingGroup RatingGroupCache::Get(const GroupSelection& selection) {
  if (capacity_ == 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
    }
    return RatingGroup::Materialize(*db_, selection);
  }
  std::string key = KeyOf(selection);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU position
      ++stats_.hits;
      return RatingGroup(db_, selection, it->second->second);
    }
    ++stats_.misses;
  }
  // Materialize outside the lock: concurrent misses may duplicate work for
  // the same key, but never block each other on an O(|R|) scan.
  RatingGroup group = RatingGroup::Materialize(*db_, selection);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(key) == index_.end()) {
      lru_.emplace_front(key, group.records());
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
    stats_.entries = lru_.size();
  }
  return group;
}

RatingGroupCache::Stats RatingGroupCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RatingGroupCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

}  // namespace subdex
