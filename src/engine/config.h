#ifndef SUBDEX_ENGINE_CONFIG_H_
#define SUBDEX_ENGINE_CONFIG_H_

#include <cstdint>

#include "core/distance.h"
#include "core/interestingness.h"
#include "subjective/operation.h"

namespace subdex {

/// Which pruning optimizations the RM generator applies (Section 4.2.1).
/// The full SubDEx configuration is kHybrid; the restricted variants are
/// the scalability baselines of Section 5.1.
enum class PruningScheme {
  kNone,
  kConfidenceInterval,
  kMab,
  kHybrid,
};

const char* PruningSchemeName(PruningScheme scheme);

/// How the final k-size display set is chosen from the generated candidates
/// (Section 5.2.3 studies the extremes).
enum class SelectionMode {
  /// Top-(k*l) by DW utility, then GMM picks the k most diverse (default).
  kUtilityAndDiversity,
  /// Top-k by DW utility (equivalent to l = 1).
  kUtilityOnly,
  /// GMM over every candidate map, ignoring utility ranking.
  kDiversityOnly,
};

const char* SelectionModeName(SelectionMode mode);

/// All knobs of the SDE engine. Defaults mirror Table 3 of the paper.
struct EngineConfig {
  /// Number of rating maps displayed per step (k).
  size_t k = 3;
  /// Number of next-step recommendations (o).
  size_t o = 3;
  /// Pruning-diversity factor (l): the generator keeps the top k*l maps.
  size_t l = 3;
  /// Number of phases of the phased execution framework (n); the paper
  /// adopts SeeDB's finding that 10 works well.
  size_t num_phases = 10;
  PruningScheme pruning = PruningScheme::kHybrid;
  /// "Combining Multiple Aggregates" (Section 4.2.1): candidate maps that
  /// group by the same attribute share one scan per phase. Disabled only
  /// by the sharing ablation benchmark.
  bool share_scans = true;
  /// Confidence parameter of the Hoeffding-Serfling intervals.
  double ci_delta = 0.05;
  UtilityConfig utility;
  /// Apply the dimension-weighted utility of Eq. 1. Disabled only by the
  /// Figure 9 ablation ("without weights").
  bool use_dimension_weights = true;
  SelectionMode selection = SelectionMode::kUtilityAndDiversity;
  MapDistanceKind map_distance = MapDistanceKind::kSignatureEmd;
  /// Evaluate candidate operations on a thread pool ("parallel query
  /// execution"); the No-Parallelism / Naive baselines clear this.
  bool parallel_recommendations = true;
  /// Run the RM generator's per-phase scan updates and final exact scoring
  /// on the engine pool. Parallel and serial execution are equivalent by
  /// construction (disjoint state, deterministic reduction order); this
  /// knob exists for the serial baselines and for bisecting regressions.
  bool parallel_generation = true;
  /// Number of workers of the engine-owned thread pool ("available
  /// cores"); 1 disables the pool entirely.
  size_t num_threads = 4;
  /// Shuffle seed of the phased framework (record order within phases).
  uint64_t seed = 42;
  /// Candidate-operation enumeration knobs.
  OperationEnumerationOptions operations;
  /// Candidate operations yielding fewer records are discarded.
  size_t min_group_size = 5;
  /// Capacity (entries) of the LRU rating-group cache shared by the engine
  /// and the recommendation builder; 0 disables caching. Saves the O(|R|)
  /// materialization of candidate operations that point back toward
  /// already-evaluated selections (roll-ups, changes, revisited regions).
  size_t group_cache_capacity = 512;
  /// Cap on fully evaluated candidate operations per step (0 = evaluate
  /// every enumerated candidate). The paper's Recommendation Builder
  /// evaluates an o-proportional budget (top-o operations per displayed
  /// map), which is what makes its sequential variants scale linearly in o
  /// (Fig. 11b); setting this to a multiple of k*o reproduces that cost
  /// model. Single-edit candidates are prioritized under a cap.
  size_t max_operation_evaluations = 0;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_CONFIG_H_
