#include "engine/step_trace.h"

#include <sstream>

#include "util/string_util.h"

namespace subdex {

namespace {

void WritePruning(std::ostringstream& out, const char* key,
                  const StepTrace::PruningTrace& p) {
  out << '"' << key << "\":{\"candidates\":" << p.candidates
      << ",\"pruned_ci\":" << p.pruned_ci
      << ",\"pruned_mab\":" << p.pruned_mab
      << ",\"mab_accepted\":" << p.mab_accepted
      << ",\"survivors\":" << p.survivors
      << ",\"phases_run\":" << p.phases_run
      << ",\"record_updates\":" << p.record_updates << '}';
}

}  // namespace

std::string StepTrace::ToJson(bool include_timings) const {
  std::ostringstream out;
  out << "{\"group_size\":" << group_size
      << ",\"maps_displayed\":" << maps_displayed
      << ",\"recommendations\":" << recommendations_returned
      << ",\"degraded\":" << (degraded ? "true" : "false")
      << ",\"cancelled\":" << (cancelled ? "true" : "false")
      << ",\"cut_phase\":\"" << StepPhaseName(cut_phase) << "\"";
  out << ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const PhaseSpan& s = spans[i];
    if (i > 0) out << ',';
    out << "{\"phase\":\"" << StepPhaseName(s.phase) << "\"";
    if (include_timings) {
      out << ",\"start_ms\":" << FormatDouble(s.start_ms, 3)
          << ",\"duration_ms\":" << FormatDouble(s.duration_ms, 3);
    }
    out << ",\"completed\":" << (s.completed ? "true" : "false") << '}';
  }
  out << "],";
  WritePruning(out, "display", display);
  out << ',';
  WritePruning(out, "recommendation", recommendations);
  out << ",\"cache\":{\"hits\":" << cache.hits
      << ",\"misses\":" << cache.misses
      << ",\"coalesced\":" << cache.coalesced << "}}";
  return out.str();
}

}  // namespace subdex
