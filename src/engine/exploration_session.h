#ifndef SUBDEX_ENGINE_EXPLORATION_SESSION_H_
#define SUBDEX_ENGINE_EXPLORATION_SESSION_H_

#include <vector>

#include "engine/sde_engine.h"
#include "util/status.h"

namespace subdex {

/// The three exploration modes of Section 3.3.
enum class ExplorationMode {
  /// The system shows k maps; the user chooses every operation herself.
  kUserDriven,
  /// The system shows k maps and the top-o recommendations; the user picks
  /// a recommendation or her own operation.
  kRecommendationPowered,
  /// The system applies the top-1 recommendation at every step.
  kFullyAutomated,
};

const char* ExplorationModeName(ExplorationMode mode);

/// A multi-step SDE process: wraps an SdeEngine, records the exploration
/// path, and exposes the operations each mode allows. Recommendations are
/// computed for every step except in User-Driven mode.
class ExplorationSession {
 public:
  ExplorationSession(const SubjectiveDatabase* db, EngineConfig config,
                     ExplorationMode mode);

  /// Executes the first step on `initial` (typically the empty selection —
  /// the whole database).
  const StepResult& Start(const GroupSelection& initial);

  /// Applies a user-provided operation (User-Driven and
  /// Recommendation-Powered modes).
  const StepResult& ApplyOperation(const GroupSelection& next);

  /// Applies the index-th recommendation of the last step; returns false
  /// when no such recommendation exists. Index 0 realizes Fully-Automated
  /// exploration.
  bool ApplyRecommendation(size_t index = 0);

  /// Runs `steps` Fully-Automated steps after Start; stops early when no
  /// recommendation is available. Returns the number of steps executed.
  size_t RunAutomated(size_t steps);

  SUBDEX_NODISCARD ExplorationMode mode() const { return mode_; }
  SUBDEX_NODISCARD const std::vector<StepResult>& path() const { return path_; }
  SUBDEX_NODISCARD const StepResult& last() const;
  SdeEngine& engine() { return engine_; }
  SUBDEX_NODISCARD const SdeEngine& engine() const { return engine_; }

 private:
  const StepResult& Execute(const GroupSelection& selection);

  SdeEngine engine_;
  ExplorationMode mode_;
  std::vector<StepResult> path_;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_EXPLORATION_SESSION_H_
