#ifndef SUBDEX_ENGINE_GROUP_CACHE_H_
#define SUBDEX_ENGINE_GROUP_CACHE_H_

#include <condition_variable>
#include <exception>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "subjective/rating_group.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/status.h"

namespace subdex {

/// Thread-safe LRU cache of materialized rating groups, keyed by the joint
/// selection. The in-memory counterpart of the repeated-data-access
/// avoidance systems the paper builds on (in-memory caching/prefetching
/// [18], Data Canopy [57]). Hits come from candidate operations that lead
/// back toward previously evaluated selections — roll-ups, sideways
/// changes, and a user revisiting a region — so the benefit is modest for
/// a path that keeps moving into fresh territory (a few percent of
/// materializations) and grows for interactive sessions that hop around
/// explored areas.
///
/// Groups are pure functions of the (immutable, finalized) database and
/// the selection, so cached entries never go stale. Capacity is bounded;
/// eviction is least-recently-used.
class RatingGroupCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    /// Concurrent misses on a key already being materialized: the caller
    /// waited for the in-flight scan instead of duplicating it.
    size_t coalesced = 0;
    size_t evictions = 0;
    size_t entries = 0;

    SUBDEX_NODISCARD double HitRate() const {
      size_t total = hits + misses + coalesced;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// `capacity` = maximum number of cached groups; 0 disables caching
  /// (every call materializes).
  RatingGroupCache(const SubjectiveDatabase* db, size_t capacity);

  RatingGroupCache(const RatingGroupCache&) = delete;
  RatingGroupCache& operator=(const RatingGroupCache&) = delete;

  /// The rating group of `selection`, from cache or freshly materialized.
  RatingGroup Get(const GroupSelection& selection) SUBDEX_EXCLUDES(mu_);

  SUBDEX_NODISCARD Stats stats() const SUBDEX_EXCLUDES(mu_);
  SUBDEX_NODISCARD size_t capacity() const { return capacity_; }
  void Clear() SUBDEX_EXCLUDES(mu_);

 private:
  // Canonical cache key: conjuncts are kept sorted by Predicate, so the
  // rendered form is unique per selection.
  static std::string KeyOf(const GroupSelection& selection);

  // Single-flight rendezvous: the first miss on a key materializes while
  // later concurrent misses wait here for the result. A leader that fails
  // still completes the flight — `error` carries its exception to every
  // coalesced waiter (who rethrow), so no failure mode leaves waiters
  // parked on the condition variable forever.
  struct Flight {
    Mutex mu{"cache.flight", lock_rank::kGroupCacheFlight};
    std::condition_variable cv;
    bool done SUBDEX_GUARDED_BY(mu) = false;
    RatingGroup::SharedRecords records SUBDEX_GUARDED_BY(mu);
    std::exception_ptr error SUBDEX_GUARDED_BY(mu);
  };

  const SubjectiveDatabase* db_;
  size_t capacity_;

  mutable Mutex mu_{"cache.lru", lock_rank::kGroupCacheLru};
  // MRU-first list of (key, records); map points into the list. Records
  // are shared with every RatingGroup handed out, so a hit never copies.
  using Entry = std::pair<std::string, RatingGroup::SharedRecords>;
  std::list<Entry> lru_ SUBDEX_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      SUBDEX_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_
      SUBDEX_GUARDED_BY(mu_);
  Stats stats_ SUBDEX_GUARDED_BY(mu_);
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_GROUP_CACHE_H_
