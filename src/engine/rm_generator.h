#ifndef SUBDEX_ENGINE_RM_GENERATOR_H_
#define SUBDEX_ENGINE_RM_GENERATOR_H_

#include <vector>

#include "core/rating_map.h"
#include "core/seen_maps.h"
#include "engine/config.h"
#include "util/deadline.h"
#include "util/status.h"

namespace subdex {

class ThreadPool;

/// A rating map together with its final (full-data) interestingness scores.
struct ScoredRatingMap {
  RatingMap map;
  InterestingnessScores scores;
  double utility = 0.0;
  double dw_utility = 0.0;
};

/// Work counters of one Generate() call, reported by the scalability
/// benchmarks.
struct RmGeneratorStats {
  size_t num_candidates = 0;
  size_t pruned_ci = 0;
  size_t pruned_mab = 0;
  size_t mab_accepted = 0;
  /// Total (record, dimension) histogram updates — the dominant cost.
  size_t record_updates = 0;
  size_t phases_run = 0;

  void Merge(const RmGeneratorStats& other);
};

/// The RM-Generator (Section 4.2.1): Algorithm 1's phase-based execution
/// framework. Starts from every candidate rating map of the group, processes
/// the (shuffled) rating group in `num_phases` equal fractions with shared
/// multi-aggregate scans, estimates each candidate's dimension-weighted
/// utility with per-criterion confidence intervals after every phase, and
/// prunes low-utility candidates via confidence intervals and/or
/// Successive-Accepts-and-Rejects, per the configured scheme.
///
/// Returns (w.h.p.) the `k_prime` candidates with the highest DW utility,
/// scored exactly over the full group, sorted by descending DW utility.
class RmGenerator {
 public:
  /// `pool` may be null (serial execution). With a pool and
  /// `config->parallel_generation`, the per-phase scan updates and the
  /// final exact-scoring pass — the two loops that dominate step latency —
  /// run on the pool; results are identical to serial execution (disjoint
  /// state per scan/candidate, deterministic reduction order).
  explicit RmGenerator(const EngineConfig* config, ThreadPool* pool = nullptr)
      : config_(config), pool_(pool) {}

  /// `stop` bounds the work (anytime semantics): the phase loop checks the
  /// budget at phase boundaries and stops consuming the group once it is
  /// exhausted, returning maps scored over the records processed so far —
  /// still sorted by descending (partial-data) DW utility. Phase 0 always
  /// runs, so every returned map covers at least 1/num_phases of the
  /// group. `*truncated` (if non-null) is set to true when the budget cut
  /// the phase loop short, and left untouched otherwise.
  SUBDEX_NODISCARD
  std::vector<ScoredRatingMap> Generate(const RatingGroup& group,
                                        const SeenMapsTracker& seen,
                                        size_t k_prime,
                                        RmGeneratorStats* stats = nullptr,
                                        const StopToken& stop = StopToken(),
                                        bool* truncated = nullptr) const;

 private:
  const EngineConfig* config_;
  ThreadPool* pool_;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_RM_GENERATOR_H_
