#ifndef SUBDEX_ENGINE_SESSION_LOG_H_
#define SUBDEX_ENGINE_SESSION_LOG_H_

#include <fstream>
#include <string>
#include <vector>

#include "engine/sde_engine.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace subdex {

/// One logged exploration step: the selection examined and the rating maps
/// displayed for it.
struct LoggedStep {
  GroupSelection selection;
  std::vector<RatingMapKey> displayed;
  size_t group_size = 0;
  double elapsed_ms = 0.0;
};

/// A persistent record of an exploration session. The paper points at
/// operation logs as the fuel for personalized recommendations ([23, 42]);
/// SessionLog captures them in a plain-text format:
///
///   step <group_size> <elapsed_ms>
///   reviewers: <query or ->
///   items: <query or ->
///   map <reviewer|item> <attribute> <dimension>     (one per displayed map)
///
/// Selections serialize through the SQL-style query syntax
/// (storage/query_parser.h), so logs are human-readable and replayable.
///
/// Thread safety: internally synchronized. Concurrent exploration threads
/// may Append into one shared log while another serializes or snapshots
/// it; `steps()` returns a consistent copy of the history.
class SessionLog {
 public:
  SessionLog() = default;

  // Movable (Result<SessionLog>, by-value returns); not copyable, so "the
  // log" stays one synchronized object rather than silently forking.
  SessionLog(SessionLog&& other) noexcept;
  SessionLog& operator=(SessionLog&& other) noexcept;
  SessionLog(const SessionLog&) = delete;
  SessionLog& operator=(const SessionLog&) = delete;

  /// Records one step. Always appends to the in-memory history; when a
  /// write-through sink is open (OpenSink), the step is also serialized,
  /// written and flushed, and any stream failure surfaces as a Status
  /// instead of being dropped silently. Callers that must not fail on a
  /// logging error (the engine) count the non-OK returns rather than
  /// ignoring them — see SdeEngine::dropped_log_entries().
  SUBDEX_MUST_USE_RESULT
  Status Append(const StepResult& step) SUBDEX_EXCLUDES(mu_);
  SUBDEX_NODISCARD size_t size() const SUBDEX_EXCLUDES(mu_);
  SUBDEX_NODISCARD bool empty() const SUBDEX_EXCLUDES(mu_);

  /// Opens a write-through sink: every subsequent Append is serialized to
  /// `path` (truncated here) and flushed, so a crash loses at most the
  /// step being written. `db` renders selections and map keys; it must
  /// outlive the sink. Any previously open sink is flush-closed first; if
  /// that close fails (e.g. buffered entries hit a full disk), the error
  /// surfaces in the returned Status — the new sink is still opened, so a
  /// non-ok Status here can mean "replacement succeeded, but the old sink
  /// lost data". Only a failure to open `path` leaves the log sinkless.
  SUBDEX_MUST_USE_RESULT
  Status OpenSink(const SubjectiveDatabase* db, const std::string& path)
      SUBDEX_EXCLUDES(mu_);

  /// Flushes and closes the sink (no-op when none is open). Errors
  /// detected on the final flush surface here.
  SUBDEX_MUST_USE_RESULT Status CloseSink() SUBDEX_EXCLUDES(mu_);

  SUBDEX_NODISCARD bool has_sink() const SUBDEX_EXCLUDES(mu_);

  /// Snapshot of the logged steps at the time of the call.
  SUBDEX_NODISCARD std::vector<LoggedStep> steps() const SUBDEX_EXCLUDES(mu_);

  SUBDEX_NODISCARD std::string Serialize(const SubjectiveDatabase& db) const
      SUBDEX_EXCLUDES(mu_);
  SUBDEX_MUST_USE_RESULT
  static Result<SessionLog> Deserialize(SubjectiveDatabase* db,
                                        const std::string& text);

  SUBDEX_MUST_USE_RESULT
  Status SaveToFile(const SubjectiveDatabase& db,
                    const std::string& path) const SUBDEX_EXCLUDES(mu_);
  SUBDEX_MUST_USE_RESULT
  static Result<SessionLog> LoadFromFile(SubjectiveDatabase* db,
                                         const std::string& path);

 private:
  mutable Mutex mu_{"log.state", lock_rank::kSessionLogState};
  std::vector<LoggedStep> steps_ SUBDEX_GUARDED_BY(mu_);
  // Write-through sink (optional): open stream + the database that renders
  // entries. Both are moved with the log.
  std::ofstream sink_ SUBDEX_GUARDED_BY(mu_);
  const SubjectiveDatabase* sink_db_ SUBDEX_GUARDED_BY(mu_) = nullptr;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_SESSION_LOG_H_
