#ifndef SUBDEX_ENGINE_SESSION_LOG_H_
#define SUBDEX_ENGINE_SESSION_LOG_H_

#include <string>
#include <vector>

#include "engine/sde_engine.h"
#include "util/status.h"

namespace subdex {

/// One logged exploration step: the selection examined and the rating maps
/// displayed for it.
struct LoggedStep {
  GroupSelection selection;
  std::vector<RatingMapKey> displayed;
  size_t group_size = 0;
  double elapsed_ms = 0.0;
};

/// A persistent record of an exploration session. The paper points at
/// operation logs as the fuel for personalized recommendations ([23, 42]);
/// SessionLog captures them in a plain-text format:
///
///   step <group_size> <elapsed_ms>
///   reviewers: <query or ->
///   items: <query or ->
///   map <reviewer|item> <attribute> <dimension>     (one per displayed map)
///
/// Selections serialize through the SQL-style query syntax
/// (storage/query_parser.h), so logs are human-readable and replayable.
class SessionLog {
 public:
  SessionLog() = default;

  void Append(const StepResult& step);
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const std::vector<LoggedStep>& steps() const { return steps_; }

  std::string Serialize(const SubjectiveDatabase& db) const;
  static Result<SessionLog> Deserialize(SubjectiveDatabase* db,
                                        const std::string& text);

  Status SaveToFile(const SubjectiveDatabase& db,
                    const std::string& path) const;
  static Result<SessionLog> LoadFromFile(SubjectiveDatabase* db,
                                         const std::string& path);

 private:
  std::vector<LoggedStep> steps_;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_SESSION_LOG_H_
