#ifndef SUBDEX_ENGINE_SESSION_LOG_H_
#define SUBDEX_ENGINE_SESSION_LOG_H_

#include <string>
#include <vector>

#include "engine/sde_engine.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace subdex {

/// One logged exploration step: the selection examined and the rating maps
/// displayed for it.
struct LoggedStep {
  GroupSelection selection;
  std::vector<RatingMapKey> displayed;
  size_t group_size = 0;
  double elapsed_ms = 0.0;
};

/// A persistent record of an exploration session. The paper points at
/// operation logs as the fuel for personalized recommendations ([23, 42]);
/// SessionLog captures them in a plain-text format:
///
///   step <group_size> <elapsed_ms>
///   reviewers: <query or ->
///   items: <query or ->
///   map <reviewer|item> <attribute> <dimension>     (one per displayed map)
///
/// Selections serialize through the SQL-style query syntax
/// (storage/query_parser.h), so logs are human-readable and replayable.
///
/// Thread safety: internally synchronized. Concurrent exploration threads
/// may Append into one shared log while another serializes or snapshots
/// it; `steps()` returns a consistent copy of the history.
class SessionLog {
 public:
  SessionLog() = default;

  // Movable (Result<SessionLog>, by-value returns); not copyable, so "the
  // log" stays one synchronized object rather than silently forking.
  SessionLog(SessionLog&& other) noexcept;
  SessionLog& operator=(SessionLog&& other) noexcept;
  SessionLog(const SessionLog&) = delete;
  SessionLog& operator=(const SessionLog&) = delete;

  void Append(const StepResult& step) SUBDEX_EXCLUDES(mu_);
  size_t size() const SUBDEX_EXCLUDES(mu_);
  bool empty() const SUBDEX_EXCLUDES(mu_);

  /// Snapshot of the logged steps at the time of the call.
  std::vector<LoggedStep> steps() const SUBDEX_EXCLUDES(mu_);

  std::string Serialize(const SubjectiveDatabase& db) const
      SUBDEX_EXCLUDES(mu_);
  static Result<SessionLog> Deserialize(SubjectiveDatabase* db,
                                        const std::string& text);

  Status SaveToFile(const SubjectiveDatabase& db,
                    const std::string& path) const SUBDEX_EXCLUDES(mu_);
  static Result<SessionLog> LoadFromFile(SubjectiveDatabase* db,
                                         const std::string& path);

 private:
  mutable Mutex mu_;
  std::vector<LoggedStep> steps_ SUBDEX_GUARDED_BY(mu_);
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_SESSION_LOG_H_
