#include "engine/rm_selector.h"

#include <algorithm>

#include "core/gmm.h"
#include "util/metrics.h"

namespace subdex {

namespace {

struct GmmMetrics {
  Counter& selections;
  Counter& candidates;
  Counter& distance_evals;

  static GmmMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static GmmMetrics m{
        reg.GetCounter("subdex_gmm_selections_total",
                       "GMM diversification passes run"),
        reg.GetCounter("subdex_gmm_candidates_total",
                       "Candidate maps entering GMM diversification"),
        reg.GetCounter("subdex_gmm_distance_evals_total",
                       "Pairwise rating-map distance evaluations inside "
                       "GMM (the O(k*n) iteration cost)"),
    };
    return m;
  }
};

}  // namespace

std::vector<ScoredRatingMap> RmSelector::SelectDiverse(
    std::vector<ScoredRatingMap> candidates, size_t k) const {
  if (candidates.size() <= k) return candidates;
  GmmMetrics& metrics = GmmMetrics::Get();
  metrics.selections.Increment();
  metrics.candidates.Increment(candidates.size());
  // Candidates arrive sorted by DW utility; index 0 seeds GMM so the single
  // guaranteed pick is the most useful map.
  MapDistanceKind kind = config_->map_distance;
  size_t evals = 0;
  auto dist = [&](size_t a, size_t b) {
    ++evals;
    return RatingMapDistance(candidates[a].map, candidates[b].map, kind);
  };
  std::vector<size_t> chosen = GmmSelect(candidates.size(), k, dist, 0);
  metrics.distance_evals.Increment(evals);
  std::sort(chosen.begin(), chosen.end());
  std::vector<ScoredRatingMap> out;
  out.reserve(chosen.size());
  for (size_t idx : chosen) out.push_back(std::move(candidates[idx]));
  // Ascending index order == descending DW utility (input ordering).
  return out;
}

}  // namespace subdex
