#include "engine/rm_selector.h"

#include <algorithm>

#include "core/gmm.h"

namespace subdex {

std::vector<ScoredRatingMap> RmSelector::SelectDiverse(
    std::vector<ScoredRatingMap> candidates, size_t k) const {
  if (candidates.size() <= k) return candidates;
  // Candidates arrive sorted by DW utility; index 0 seeds GMM so the single
  // guaranteed pick is the most useful map.
  MapDistanceKind kind = config_->map_distance;
  auto dist = [&](size_t a, size_t b) {
    return RatingMapDistance(candidates[a].map, candidates[b].map, kind);
  };
  std::vector<size_t> chosen = GmmSelect(candidates.size(), k, dist, 0);
  std::sort(chosen.begin(), chosen.end());
  std::vector<ScoredRatingMap> out;
  out.reserve(chosen.size());
  for (size_t idx : chosen) out.push_back(std::move(candidates[idx]));
  // Ascending index order == descending DW utility (input ordering).
  return out;
}

}  // namespace subdex
