#include "engine/rm_generator.h"

#include <algorithm>
#include <memory>

#include "pruning/ci_pruner.h"
#include "pruning/mab_pruner.h"
#include "pruning/multi_aggregate_scan.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace subdex {

namespace {

struct RmGenMetrics {
  Counter& runs;
  Counter& candidates;
  Counter& pruned_ci;
  Counter& pruned_mab;
  Counter& mab_accepted;
  Counter& survivors;
  Counter& record_updates;
  Counter& phases;
  Counter& truncated;

  static RmGenMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static RmGenMetrics m{
        reg.GetCounter("subdex_rmgen_runs_total",
                       "RM-Generator executions (display pipeline + one "
                       "per evaluated candidate operation)"),
        reg.GetCounter("subdex_rmgen_candidates_total",
                       "Candidate rating maps entering Algorithm 1"),
        reg.GetCounter("subdex_rmgen_pruned_ci_total",
                       "Candidates killed by confidence-interval pruning"),
        reg.GetCounter("subdex_rmgen_pruned_mab_total",
                       "Candidates killed by SAR rejection"),
        reg.GetCounter("subdex_rmgen_mab_accepted_total",
                       "Candidates accepted early by SAR"),
        reg.GetCounter("subdex_rmgen_survivors_total",
                       "Candidates surviving to exact scoring"),
        reg.GetCounter("subdex_rmgen_record_updates_total",
                       "(record, dimension) histogram updates — the "
                       "dominant generation cost"),
        reg.GetCounter("subdex_rmgen_phases_total",
                       "Phases of the phased execution framework run"),
        reg.GetCounter("subdex_rmgen_truncated_total",
                       "Generate calls cut short at a phase boundary by "
                       "the step budget"),
    };
    return m;
  }
};

}  // namespace

const char* PruningSchemeName(PruningScheme scheme) {
  switch (scheme) {
    case PruningScheme::kNone:
      return "no-pruning";
    case PruningScheme::kConfidenceInterval:
      return "ci-pruning";
    case PruningScheme::kMab:
      return "mab-pruning";
    case PruningScheme::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

const char* SelectionModeName(SelectionMode mode) {
  switch (mode) {
    case SelectionMode::kUtilityAndDiversity:
      return "utility+diversity";
    case SelectionMode::kUtilityOnly:
      return "utility-only";
    case SelectionMode::kDiversityOnly:
      return "diversity-only";
  }
  return "unknown";
}

void RmGeneratorStats::Merge(const RmGeneratorStats& other) {
  num_candidates += other.num_candidates;
  pruned_ci += other.pruned_ci;
  pruned_mab += other.pruned_mab;
  mab_accepted += other.mab_accepted;
  record_updates += other.record_updates;
  phases_run += other.phases_run;
}

namespace {

struct Candidate {
  RatingMapKey key;
  size_t scan_index = 0;
  bool pruned = false;
  bool accepted = false;
  InterestingnessScores scores;
  CandidateIntervals intervals;
  double dw_mean = 0.0;
};

// Recomputes the still-active criteria of `cand` from its current snapshot
// and refreshes the confidence intervals. Under the default max-aggregation,
// criteria deactivated by interval domination (Algorithm 3) are skipped —
// they can no longer define the utility. Other aggregations keep a single
// interval around the aggregated utility.
void EstimateCandidate(Candidate* cand, const RatingMap& snapshot,
                       const std::vector<RatingDistribution>& seen_dists,
                       const UtilityConfig& utility_config, double eps) {
  auto clip = [](double x) { return std::min(1.0, std::max(0.0, x)); };
  if (utility_config.aggregation == UtilityAggregation::kMax) {
    // Max-aggregation addresses the four criterion slots directly; guard
    // the assumption so a future change of the criteria container (e.g.
    // to a dynamically sized one) fails loudly here, not as a wild read.
    SUBDEX_CHECK_MSG(cand->intervals.criteria.size() >= 4,
                     "kMax aggregation requires 4 criterion intervals");
    auto& crit = cand->intervals.criteria;
    if (crit[0].active) {
      cand->scores.conciseness = Conciseness(snapshot, utility_config);
      crit[0].lb = clip(cand->scores.conciseness - eps);
      crit[0].ub = clip(cand->scores.conciseness + eps);
    }
    if (crit[1].active) {
      cand->scores.agreement = Agreement(snapshot, utility_config);
      crit[1].lb = clip(cand->scores.agreement - eps);
      crit[1].ub = clip(cand->scores.agreement + eps);
    }
    if (crit[2].active) {
      cand->scores.self_peculiarity = SelfPeculiarity(snapshot, utility_config);
      crit[2].lb = clip(cand->scores.self_peculiarity - eps);
      crit[2].ub = clip(cand->scores.self_peculiarity + eps);
    }
    if (crit[3].active) {
      cand->scores.global_peculiarity =
          GlobalPeculiarity(snapshot, seen_dists, utility_config);
      crit[3].lb = clip(cand->scores.global_peculiarity - eps);
      crit[3].ub = clip(cand->scores.global_peculiarity + eps);
    }
    ComputeEnvelope(&cand->intervals);
  } else {
    cand->scores = ComputeScores(snapshot, seen_dists, utility_config);
    double u = Utility(cand->scores, utility_config);
    // Collapse to one interval on the aggregated utility: domination-based
    // criterion deactivation is only sound for the max aggregation.
    cand->intervals.criteria[0] = {clip(u - eps), clip(u + eps), true};
    for (size_t c = 1; c < cand->intervals.criteria.size(); ++c) {
      cand->intervals.criteria[c].active = false;
    }
    cand->intervals.lb = cand->intervals.weight * clip(u - eps);
    cand->intervals.ub = cand->intervals.weight * clip(u + eps);
  }
  cand->dw_mean =
      cand->intervals.weight * Utility(cand->scores, utility_config);
}

}  // namespace

std::vector<ScoredRatingMap> RmGenerator::Generate(
    const RatingGroup& group, const SeenMapsTracker& seen, size_t k_prime,
    RmGeneratorStats* stats, const StopToken& stop, bool* truncated) const {
  RmGeneratorStats local_stats;
  RmGeneratorStats* st = stats != nullptr ? stats : &local_stats;
  if (group.empty() || k_prime == 0) return {};
  // `st` may be a caller-owned accumulator spanning many Generate calls;
  // snapshot it so the process metrics receive only this run's deltas.
  const RmGeneratorStats entry_stats = *st;
  const SubjectiveDatabase& db = group.db();

  // Algorithm 1, line 1: all possible rating maps of the group.
  std::vector<RatingMapKey> keys = AllRatingMapKeys(db, group.selection());
  if (keys.empty()) return {};

  // Line 2: dimension weights from the displayed-maps history.
  std::vector<double> dim_weight(db.num_dimensions());
  for (size_t d = 0; d < db.num_dimensions(); ++d) {
    dim_weight[d] =
        config_->use_dimension_weights ? seen.DimensionWeight(d) : 1.0;
  }

  // Phases consume the group in random order (sampling without
  // replacement), which is what the Hoeffding-Serfling intervals assume.
  std::vector<RecordId> records = group.records();
  Rng rng(config_->seed);
  rng.Shuffle(&records);
  RatingGroup shuffled(&db, group.selection(), std::move(records));

  // Shared scans: one per (side, grouping attribute).
  std::vector<std::unique_ptr<MultiAggregateScan>> scans;
  std::vector<Candidate> cands;
  cands.reserve(keys.size());
  for (const RatingMapKey& key : keys) {
    size_t scan_index = scans.size();
    if (config_->share_scans) {
      for (size_t s = 0; s < scans.size(); ++s) {
        if (scans[s]->side() == key.side &&
            scans[s]->attribute() == key.attribute) {
          scan_index = s;
          break;
        }
      }
    }
    if (scan_index == scans.size()) {
      scans.push_back(std::make_unique<MultiAggregateScan>(
          &shuffled, key.side, key.attribute));
      if (!config_->share_scans) {
        // Sharing ablation: one scan per candidate, aggregating only its
        // own dimension (each candidate re-reads the grouping codes).
        for (size_t d = 0; d < db.num_dimensions(); ++d) {
          if (d != key.dimension) scans.back()->DeactivateDimension(d);
        }
      }
    }
    Candidate cand;
    cand.key = key;
    cand.scan_index = scan_index;
    // Start from the vacuous envelope on every criterion slot: estimation
    // (and the max-aggregation fast path) relies on all 4 being present
    // and active.
    cand.intervals.criteria.fill(CriterionInterval{});
    cand.intervals.weight = dim_weight[key.dimension];
    cands.push_back(std::move(cand));
  }
  st->num_candidates += cands.size();

  const bool use_ci = config_->pruning == PruningScheme::kConfidenceInterval ||
                      config_->pruning == PruningScheme::kHybrid;
  const bool use_mab = config_->pruning == PruningScheme::kMab ||
                       config_->pruning == PruningScheme::kHybrid;
  const size_t num_phases = std::max<size_t>(1, config_->num_phases);
  const size_t total = shuffled.size();
  // SAR decides (at most) one arm per step; spreading the arm budget across
  // phases decides every arm by the end of the framework.
  const size_t sar_steps_per_phase =
      use_mab ? (cands.size() + num_phases - 1) / num_phases : 0;
  size_t accepted_count = 0;

  auto prune_candidate = [&](Candidate* cand) {
    cand->pruned = true;
    scans[cand->scan_index]->DeactivateDimension(cand->key.dimension);
  };

  const bool parallel = pool_ != nullptr && config_->parallel_generation;

  for (size_t phase = 0; phase < num_phases; ++phase) {
    // Anytime cut, at phase boundaries only: a phase's scan updates must
    // all advance through the same records (estimation aligns each
    // candidate's snapshot with its scan's processed count), so the budget
    // is never allowed to stop individual scans mid-phase. Phase 0 always
    // runs: a map over zero records would be meaningless, while 1/n of the
    // group is a bounded, honest best-effort sample.
    if (phase > 0 && stop.ShouldStop()) {
      if (truncated != nullptr) *truncated = true;
      RmGenMetrics::Get().truncated.Increment();
      break;
    }
    size_t begin = total * phase / num_phases;
    size_t end = total * (phase + 1) / num_phases;
    if (parallel && scans.size() > 1) {
      // Scans own disjoint histograms, so the phase update is
      // embarrassingly parallel; the per-scan work counts are reduced in
      // index order to keep stats deterministic. No stop token here — see
      // the phase-boundary comment above.
      std::vector<size_t> updates(scans.size(), 0);
      pool_->ParallelFor(scans.size(), [&](size_t s) {
        updates[s] = scans[s]->Update(begin, end);
      });
      for (size_t u : updates) st->record_updates += u;
    } else {
      for (auto& scan : scans) {
        st->record_updates += scan->Update(begin, end);
      }
    }
    ++st->phases_run;
    if (config_->pruning == PruningScheme::kNone) continue;
    if (phase + 1 == num_phases) break;  // full data processed; no estimate needed

    // Refresh estimates of all undecided candidates.
    for (Candidate& cand : cands) {
      if (cand.pruned) continue;
      const MultiAggregateScan& scan = *scans[cand.scan_index];
      size_t processed = scan.processed(cand.key.dimension);
      if (processed == 0) continue;
      // Sampling without replacement: a scan can never have consumed more
      // records than the group holds (the Hoeffding-Serfling bound is
      // meaningless past that point).
      SUBDEX_DCHECK_LE(processed, total);
      double eps =
          HoeffdingSerflingEpsilon(processed, total, config_->ci_delta);
      RatingMap snapshot = scan.SnapshotMap(cand.key.dimension);
      EstimateCandidate(&cand, snapshot, seen.seen_distributions(),
                        config_->utility, eps);
    }

    if (use_ci) {
      std::vector<size_t> live;
      std::vector<CandidateIntervals> intervals;
      for (size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].pruned) continue;
        live.push_back(i);
        intervals.push_back(cands[i].intervals);
      }
      std::vector<bool> prune = CiPrune(intervals, k_prime);
      for (size_t j = 0; j < live.size(); ++j) {
        Candidate& cand = cands[live[j]];
        if (prune[j] && !cand.accepted) {
          prune_candidate(&cand);
          ++st->pruned_ci;
        }
      }
    }

    if (use_mab) {
      for (size_t step = 0; step < sar_steps_per_phase; ++step) {
        std::vector<size_t> open;
        std::vector<double> means;
        for (size_t i = 0; i < cands.size(); ++i) {
          if (cands[i].pruned || cands[i].accepted) continue;
          open.push_back(i);
          means.push_back(cands[i].dw_mean);
        }
        size_t k_remaining =
            k_prime > accepted_count ? k_prime - accepted_count : 0;
        SarDecision decision = SarStep(means, k_remaining);
        if (decision.action == SarAction::kNone) break;
        // MAB arm accounting: SAR must decide an open arm, and accepts can
        // never exceed the k' display slots the arms compete for.
        SUBDEX_DCHECK_LT(decision.index, open.size());
        Candidate& cand = cands[open[decision.index]];
        if (decision.action == SarAction::kAcceptTop) {
          cand.accepted = true;
          ++accepted_count;
          SUBDEX_DCHECK_LE(accepted_count, k_prime);
          ++st->mab_accepted;
        } else {
          prune_candidate(&cand);
          ++st->pruned_mab;
        }
      }
    }
  }

  // Survivors were updated through every phase that ran, so their
  // snapshots cover the whole group — or, when the budget truncated the
  // phase loop, the processed prefix (best-so-far anytime answer). Score
  // the snapshots and keep the top k_prime by DW utility. This pass is
  // histogram-bound (independent of |group|), so it is not budgeted: it is
  // the step that turns work already done into a returnable result.
  std::vector<size_t> live;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (!cands[i].pruned) live.push_back(i);
  }
  std::vector<ScoredRatingMap> out(live.size());
  auto score_exact = [&](size_t j) {
    const Candidate& cand = cands[live[j]];
    ScoredRatingMap scored;
    scored.map = scans[cand.scan_index]->SnapshotMap(cand.key.dimension);
    scored.scores = ComputeScores(scored.map, seen.seen_distributions(),
                                  config_->utility);
    scored.utility = Utility(scored.scores, config_->utility);
    scored.dw_utility = dim_weight[cand.key.dimension] * scored.utility;
    out[j] = std::move(scored);
  };
  if (parallel && live.size() > 1) {
    // Survivors only read their scan (SnapshotMap is const) and write
    // their own slot, so exact scoring parallelizes without reordering.
    pool_->ParallelFor(live.size(), score_exact);
  } else {
    for (size_t j = 0; j < live.size(); ++j) score_exact(j);
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredRatingMap& a, const ScoredRatingMap& b) {
              if (a.dw_utility != b.dw_utility) {
                return a.dw_utility > b.dw_utility;
              }
              const RatingMapKey& ka = a.map.key();
              const RatingMapKey& kb = b.map.key();
              if (ka.side != kb.side) return ka.side == Side::kReviewer;
              if (ka.attribute != kb.attribute) {
                return ka.attribute < kb.attribute;
              }
              return ka.dimension < kb.dimension;
            });
  if (out.size() > k_prime) out.resize(k_prime);

  RmGenMetrics& metrics = RmGenMetrics::Get();
  metrics.runs.Increment();
  metrics.candidates.Increment(st->num_candidates - entry_stats.num_candidates);
  metrics.pruned_ci.Increment(st->pruned_ci - entry_stats.pruned_ci);
  metrics.pruned_mab.Increment(st->pruned_mab - entry_stats.pruned_mab);
  metrics.mab_accepted.Increment(st->mab_accepted - entry_stats.mab_accepted);
  metrics.record_updates.Increment(st->record_updates -
                                   entry_stats.record_updates);
  metrics.phases.Increment(st->phases_run - entry_stats.phases_run);
  metrics.survivors.Increment(live.size());
  return out;
}

}  // namespace subdex
