#ifndef SUBDEX_ENGINE_FALLACY_H_
#define SUBDEX_ENGINE_FALLACY_H_

#include <string>
#include <vector>

#include "core/rating_map.h"
#include "util/status.h"

namespace subdex {

/// A potential drill-down fallacy (Lee et al. 2019, the paper's ref [38]):
/// two subgroups of the same rating map swap their relative average
/// ratings between a parent group and a group drilled down from it — the
/// Simpson's-paradox situation where an insight read off the child view
/// alone ("A is rated above B") contradicts the parent view.
struct FallacyWarning {
  RatingMapKey key;
  ValueCode subgroup_a = kNullCode;
  ValueCode subgroup_b = kNullCode;
  /// Average of subgroup_a minus subgroup_b in each view; opposite signs.
  double parent_gap = 0.0;
  double child_gap = 0.0;

  SUBDEX_NODISCARD std::string Describe(const SubjectiveDatabase& db) const;
};

struct FallacyDetectionOptions {
  /// Subgroups with fewer records (in either view) are ignored.
  size_t min_count = 10;
  /// Both gaps must be at least this large (in score points) for the
  /// reversal to count — tiny flips are noise, not fallacies.
  double min_gap = 0.3;
};

/// Checks every candidate rating map of the child's selection for subgroup
/// reversals between `parent` and `child` (the child's selection should
/// extend the parent's; callers typically pass consecutive exploration
/// steps). Returns one warning per reversed subgroup pair.
std::vector<FallacyWarning> DetectDrillDownFallacies(
    const RatingGroup& parent, const RatingGroup& child,
    const FallacyDetectionOptions& options = {});

}  // namespace subdex

#endif  // SUBDEX_ENGINE_FALLACY_H_
