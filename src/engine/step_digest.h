#ifndef SUBDEX_ENGINE_STEP_DIGEST_H_
#define SUBDEX_ENGINE_STEP_DIGEST_H_

#include <cstdint>

#include "engine/sde_engine.h"

namespace subdex {

/// Order-sensitive 64-bit digest (FNV-1a) of everything a step showed the
/// user: the selection's canonical queries, the group size, the displayed
/// maps (keys, scores, subgroups) and the recommendations. Deliberately
/// excludes timings, traces and the degraded/cut markers — the digest must
/// be identical when the same committed step is re-executed during journal
/// replay (server/session_journal.h), and wall-clock fields never are.
///
/// Two steps with equal digests displayed the same result; replay recovery
/// compares the journaled digest against the re-executed step's and flags
/// the session as divergent on mismatch instead of serving wrong state.
/// Doubles are hashed by bit pattern: replay runs the same binary on the
/// same data, where the engine's fixed reduction order makes scores
/// bit-identical.
SUBDEX_NODISCARD uint64_t ComputeStepDigest(const SubjectiveDatabase& db,
                                            const StepResult& result);

}  // namespace subdex

#endif  // SUBDEX_ENGINE_STEP_DIGEST_H_
