#include "engine/recommendation_builder.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace subdex {

namespace {

struct RecoMetrics {
  Counter& fanouts;
  Counter& candidates;
  Counter& evaluated;
  Counter& skipped_small;
  Counter& returned;
  Counter& truncated;
  Histogram& fanout_size;
  Histogram& utility_spread;

  static RecoMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static RecoMetrics m{
        reg.GetCounter("subdex_reco_fanouts_total",
                       "TopRecommendations calls (one per recommending "
                       "step)"),
        reg.GetCounter("subdex_reco_candidates_total",
                       "Candidate operations enumerated (after explored-"
                       "selection filtering and the evaluation cap)"),
        reg.GetCounter("subdex_reco_evaluated_total",
                       "Candidate operations whose target group was "
                       "materialized and scored"),
        reg.GetCounter("subdex_reco_skipped_small_total",
                       "Candidates discarded for falling below "
                       "min_group_size"),
        reg.GetCounter("subdex_reco_returned_total",
                       "Recommendations returned to the user (<= o per "
                       "step)"),
        reg.GetCounter("subdex_reco_truncated_total",
                       "Fan-outs cut short by the step budget"),
        reg.GetHistogram("subdex_reco_fanout_size",
                         MetricsRegistry::CountBuckets(),
                         "Candidate operations per recommending step"),
        reg.GetHistogram("subdex_reco_utility_spread",
                         MetricsRegistry::UnitBuckets(),
                         "Operation-utility spread (best minus worst) of "
                         "each returned top-o list"),
    };
    return m;
  }
};

}  // namespace

std::vector<Recommendation> RecommendationBuilder::TopRecommendations(
    const GroupSelection& current, const SeenMapsTracker& seen,
    const std::vector<GroupSelection>& explored, RmGeneratorStats* stats,
    const StopToken& stop, bool* truncated) const {
  std::vector<Operation> candidates =
      EnumerateCandidateOperations(*db_, current, config_->operations);
  if (!explored.empty()) {
    std::erase_if(candidates, [&](const Operation& op) {
      for (const GroupSelection& sel : explored) {
        if (op.target == sel) return true;
      }
      return false;
    });
  }

  if (config_->max_operation_evaluations > 0 &&
      candidates.size() > config_->max_operation_evaluations) {
    // Evaluation budget (paper cost model, Fig. 11b): keep single-edit
    // operations first — the "small adjustment" candidates users expect —
    // then composites, in enumeration order.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Operation& a, const Operation& b) {
                       return a.num_edits < b.num_edits;
                     });
    candidates.resize(config_->max_operation_evaluations);
  }

  RecoMetrics& metrics = RecoMetrics::Get();
  metrics.fanouts.Increment();
  metrics.candidates.Increment(candidates.size());
  metrics.fanout_size.Observe(static_cast<double>(candidates.size()));

  std::vector<std::optional<Recommendation>> results(candidates.size());
  std::vector<RmGeneratorStats> per_candidate_stats(candidates.size());
  // Set when the budget demonstrably skipped or shortened candidate work;
  // atomic because pool workers evaluate candidates concurrently.
  std::atomic<bool> cut{false};

  auto evaluate = [&](size_t i) {
    if (stop.ShouldStop()) {
      cut.store(true, std::memory_order_relaxed);
      return;
    }
    metrics.evaluated.Increment();
    RatingGroup group = cache_ != nullptr
                            ? cache_->Get(candidates[i].target)
                            : RatingGroup::Materialize(*db_, candidates[i].target);
    if (group.size() < config_->min_group_size) {
      metrics.skipped_small.Increment();
      return;
    }
    // The budget flows into the per-candidate pipeline too, so one slow
    // candidate cannot blow the deadline; its best-so-far maps still yield
    // a comparable (if approximate) operation utility.
    StepPhase candidate_phase = StepPhase::kNone;
    std::vector<ScoredRatingMap> maps = pipeline_->SelectForDisplay(
        group, seen, &per_candidate_stats[i], nullptr, stop, &candidate_phase);
    if (candidate_phase != StepPhase::kNone) {
      cut.store(true, std::memory_order_relaxed);
    }
    if (maps.empty()) return;
    // A recommendation previews at most the k display slots of Problem 1.
    SUBDEX_DCHECK_LE(maps.size(), config_->k);
    Recommendation rec;
    rec.operation = candidates[i];
    rec.maps = std::move(maps);
    rec.utility = RmPipeline::OperationUtility(rec.maps);
    rec.group_size = group.size();
    results[i] = std::move(rec);
  };

  // The engine-owned pool outlives every step: no per-call thread churn.
  // The stop token also reaches the pool, which stops scheduling whole
  // candidates once the budget is gone (their result slots stay empty).
  if (pool_ != nullptr && config_->parallel_recommendations &&
      candidates.size() > 1) {
    if (!pool_->ParallelFor(candidates.size(), evaluate, stop)) {
      cut.store(true, std::memory_order_relaxed);
    }
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (stop.ShouldStop()) {
        cut.store(true, std::memory_order_relaxed);
        break;
      }
      evaluate(i);
    }
  }
  if (cut.load(std::memory_order_relaxed)) {
    metrics.truncated.Increment();
    if (truncated != nullptr) *truncated = true;
  }

  if (stats != nullptr) {
    for (const RmGeneratorStats& s : per_candidate_stats) stats->Merge(s);
  }

  std::vector<Recommendation> recs;
  for (auto& r : results) {
    if (r.has_value()) recs.push_back(std::move(*r));
  }
  // Candidates are enumerated deterministically; stable sort keeps the
  // outcome reproducible under utility ties.
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.utility > b.utility;
                   });
  if (recs.size() > config_->o) recs.resize(config_->o);
  // Problem 2's contract: the top-o list is ordered by operation utility.
  for (size_t i = 1; i < recs.size(); ++i) {
    SUBDEX_DCHECK_GE(recs[i - 1].utility, recs[i].utility);
  }
  metrics.returned.Increment(recs.size());
  if (!recs.empty()) {
    // Spread of the returned list: near 0 means the next-step choices are
    // interchangeable, near k means the ranking is doing real work.
    metrics.utility_spread.Observe(recs.front().utility -
                                   recs.back().utility);
  }
  return recs;
}

}  // namespace subdex
