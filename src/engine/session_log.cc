#include "engine/session_log.h"

#include <sstream>
#include <utility>

#include "storage/query_parser.h"
#include "util/fault_point.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace subdex {

namespace {

struct LogMetrics {
  Counter& appends;
  Counter& sink_failures;

  static LogMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static LogMetrics m{
        reg.GetCounter("subdex_session_log_appends_total",
                       "Steps appended to session logs"),
        reg.GetCounter("subdex_session_log_sink_failures_total",
                       "Appends whose write-through sink write or flush "
                       "failed (the in-memory history still recorded the "
                       "step)"),
    };
    return m;
  }
};

// Renders one logged step in the on-disk format (see the class comment).
// Shared by Serialize and the write-through sink so both always agree.
void WriteStepText(std::ostream& out, const LoggedStep& step,
                   const SubjectiveDatabase& db) {
  out << "step " << step.group_size << ' '
      << FormatDouble(step.elapsed_ms, 3) << '\n';
  std::string reviewers =
      PredicateToQuery(db.reviewers(), step.selection.reviewer_pred);
  std::string items = PredicateToQuery(db.items(), step.selection.item_pred);
  out << "reviewers: " << (reviewers.empty() ? "-" : reviewers) << '\n';
  out << "items: " << (items.empty() ? "-" : items) << '\n';
  for (const RatingMapKey& key : step.displayed) {
    out << "map " << SideName(key.side) << ' '
        << db.table(key.side).schema().attribute(key.attribute).name << ' '
        << db.dimension_name(key.dimension) << '\n';
  }
}

}  // namespace

SessionLog::SessionLog(SessionLog&& other) noexcept {
  MutexLock lock(other.mu_);
  steps_ = std::move(other.steps_);
  sink_ = std::move(other.sink_);
  sink_db_ = std::exchange(other.sink_db_, nullptr);
}

SessionLog& SessionLog::operator=(SessionLog&& other) noexcept {
  if (this == &other) return *this;
  std::vector<LoggedStep> taken;
  std::ofstream taken_sink;
  const SubjectiveDatabase* taken_db = nullptr;
  {
    MutexLock lock(other.mu_);
    taken = std::move(other.steps_);
    taken_sink = std::move(other.sink_);
    taken_db = std::exchange(other.sink_db_, nullptr);
  }
  MutexLock lock(mu_);
  steps_ = std::move(taken);
  sink_ = std::move(taken_sink);
  sink_db_ = taken_db;
  return *this;
}

Status SessionLog::Append(const StepResult& step) {
  LoggedStep logged;
  logged.selection = step.selection;
  for (const ScoredRatingMap& m : step.maps) {
    logged.displayed.push_back(m.map.key());
  }
  logged.group_size = step.group_size;
  logged.elapsed_ms = step.elapsed_ms;
  MutexLock lock(mu_);
  // The in-memory history records the step no matter what: a failing disk
  // must not make steps() disagree with what the engine executed.
  steps_.push_back(std::move(logged));
  LogMetrics::Get().appends.Increment();
  SUBDEX_FAULT_POINT_STATUS("session_log.append");
  if (sink_db_ == nullptr) return Status::Ok();
  WriteStepText(sink_, steps_.back(), *sink_db_);
  sink_.flush();
  if (!sink_) {
    // One failure report per lost entry: clear the stream's error state so
    // the next Append tries (and is accounted) afresh.
    sink_.clear();
    LogMetrics::Get().sink_failures.Increment();
    return Status::IoError("session log sink write/flush failed");
  }
  return Status::Ok();
}

Status SessionLog::OpenSink(const SubjectiveDatabase* db,
                            const std::string& path) {
  MutexLock lock(mu_);
  Status old_sink = Status::Ok();
  if (sink_db_ != nullptr) {
    // Flush-close the replaced sink instead of silently discarding it:
    // bytes a failed Append left buffered get one last chance to reach
    // disk, and a failure surfaces here rather than vanishing with the
    // stream. (Append clears the error state after reporting, so any
    // sticky failbit at this point is from close itself.)
    sink_.flush();
    bool ok = static_cast<bool>(sink_);
    sink_.close();
    if (!ok || sink_.fail()) {
      old_sink =
          Status::IoError("previous session log sink failed on close; "
                          "buffered entries may be lost");
    }
    sink_db_ = nullptr;
  }
  sink_.clear();
  sink_.open(path, std::ios::trunc);
  if (!sink_) {
    // The open failure is the more actionable error: the caller asked for
    // this sink and did not get it.
    return Status::IoError("cannot create session log sink '" + path + "'");
  }
  sink_db_ = db;
  return old_sink;
}

Status SessionLog::CloseSink() {
  MutexLock lock(mu_);
  if (sink_db_ == nullptr) return Status::Ok();
  sink_db_ = nullptr;
  sink_.flush();
  bool ok = static_cast<bool>(sink_);
  sink_.close();
  sink_.clear();
  if (!ok) return Status::IoError("session log sink failed on final flush");
  return Status::Ok();
}

bool SessionLog::has_sink() const {
  MutexLock lock(mu_);
  return sink_db_ != nullptr;
}

size_t SessionLog::size() const {
  MutexLock lock(mu_);
  return steps_.size();
}

bool SessionLog::empty() const {
  MutexLock lock(mu_);
  return steps_.empty();
}

std::vector<LoggedStep> SessionLog::steps() const {
  MutexLock lock(mu_);
  return steps_;
}

std::string SessionLog::Serialize(const SubjectiveDatabase& db) const {
  // Render from a snapshot so a concurrent Append never invalidates the
  // iteration (and the lock is not held across query rendering).
  const std::vector<LoggedStep> snapshot = steps();
  std::ostringstream out;
  for (const LoggedStep& step : snapshot) {
    out << "step " << step.group_size << ' '
        << FormatDouble(step.elapsed_ms, 3) << '\n';
    std::string reviewers =
        PredicateToQuery(db.reviewers(), step.selection.reviewer_pred);
    std::string items = PredicateToQuery(db.items(), step.selection.item_pred);
    out << "reviewers: " << (reviewers.empty() ? "-" : reviewers) << '\n';
    out << "items: " << (items.empty() ? "-" : items) << '\n';
    for (const RatingMapKey& key : step.displayed) {
      out << "map " << SideName(key.side) << ' '
          << db.table(key.side).schema().attribute(key.attribute).name << ' '
          << db.dimension_name(key.dimension) << '\n';
    }
  }
  return out.str();
}

Result<SessionLog> SessionLog::Deserialize(SubjectiveDatabase* db,
                                           const std::string& text) {
  // Parse into a plain vector; the synchronized log object is only built
  // once the whole text is valid.
  std::vector<LoggedStep> steps;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  auto error = [&line_no](const std::string& message) {
    return Status::InvalidArgument("session log line " +
                                   std::to_string(line_no) + ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed.rfind("step ", 0) == 0) {
      std::vector<std::string> fields = Split(trimmed, ' ');
      if (fields.size() != 3) return error("malformed step header");
      LoggedStep step;
      int group_size = 0;
      double elapsed = 0.0;
      if (!ParseInt(fields[1], &group_size) || group_size < 0 ||
          !ParseDouble(fields[2], &elapsed)) {
        return error("bad step header values");
      }
      step.group_size = static_cast<size_t>(group_size);
      step.elapsed_ms = elapsed;
      steps.push_back(std::move(step));
    } else if (trimmed.rfind("reviewers:", 0) == 0 ||
               trimmed.rfind("items:", 0) == 0) {
      if (steps.empty()) return error("selection before any step");
      bool is_reviewers = trimmed.rfind("reviewers:", 0) == 0;
      std::string query(
          Trim(trimmed.substr(is_reviewers ? 10 : 6)));
      if (query == "-") query.clear();
      Table* table = is_reviewers ? &db->reviewers() : &db->items();
      Result<Predicate> pred = ParsePredicate(table, query);
      if (!pred.ok()) return pred.status();
      GroupSelection& sel = steps.back().selection;
      (is_reviewers ? sel.reviewer_pred : sel.item_pred) =
          std::move(pred).value();
    } else if (trimmed.rfind("map ", 0) == 0) {
      if (steps.empty()) return error("map before any step");
      std::vector<std::string> fields = Split(trimmed, ' ');
      if (fields.size() != 4) return error("malformed map line");
      RatingMapKey key;
      if (fields[1] == "reviewer") {
        key.side = Side::kReviewer;
      } else if (fields[1] == "item") {
        key.side = Side::kItem;
      } else {
        return error("unknown side '" + fields[1] + "'");
      }
      int attr = db->table(key.side).schema().IndexOf(fields[2]);
      if (attr < 0) return error("unknown attribute '" + fields[2] + "'");
      key.attribute = static_cast<size_t>(attr);
      int dim = db->DimensionIndexOf(fields[3]);
      if (dim < 0) return error("unknown dimension '" + fields[3] + "'");
      key.dimension = static_cast<size_t>(dim);
      steps.back().displayed.push_back(key);
    } else {
      return error("unrecognized line '" + trimmed + "'");
    }
  }
  SessionLog log;
  {
    MutexLock lock(log.mu_);
    log.steps_ = std::move(steps);
  }
  return log;
}

Status SessionLog::SaveToFile(const SubjectiveDatabase& db,
                              const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  out << Serialize(db);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<SessionLog> SessionLog::LoadFromFile(SubjectiveDatabase* db,
                                            const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return Deserialize(db, text.str());
}

}  // namespace subdex
