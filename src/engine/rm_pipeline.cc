#include "engine/rm_pipeline.h"

#include <chrono>
#include <limits>

namespace subdex {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::vector<ScoredRatingMap> RmPipeline::SelectForDisplay(
    const RatingGroup& group, const SeenMapsTracker& seen,
    RmGeneratorStats* stats, StepTimings* timings) const {
  size_t k = config_->k;
  switch (config_->selection) {
    case SelectionMode::kUtilityAndDiversity: {
      Clock::time_point t0 = Clock::now();
      std::vector<ScoredRatingMap> top =
          generator_.Generate(group, seen, k * config_->l, stats);
      if (timings != nullptr) timings->rm_generation_ms += MsSince(t0);
      Clock::time_point t1 = Clock::now();
      std::vector<ScoredRatingMap> picked =
          selector_.SelectDiverse(std::move(top), k);
      if (timings != nullptr) timings->gmm_selection_ms += MsSince(t1);
      return picked;
    }
    case SelectionMode::kUtilityOnly: {
      // Equivalent to l = 1: the k highest-DW-utility maps, no GMM pass.
      Clock::time_point t0 = Clock::now();
      std::vector<ScoredRatingMap> top = generator_.Generate(group, seen, k, stats);
      if (timings != nullptr) timings->rm_generation_ms += MsSince(t0);
      return top;
    }
    case SelectionMode::kDiversityOnly: {
      // Keep every candidate map (pruning is vacuous with an unbounded
      // budget) and let GMM pick the k most diverse.
      Clock::time_point t0 = Clock::now();
      std::vector<ScoredRatingMap> all = generator_.Generate(
          group, seen, std::numeric_limits<size_t>::max(), stats);
      if (timings != nullptr) timings->rm_generation_ms += MsSince(t0);
      Clock::time_point t1 = Clock::now();
      std::vector<ScoredRatingMap> picked =
          selector_.SelectDiverse(std::move(all), k);
      if (timings != nullptr) timings->gmm_selection_ms += MsSince(t1);
      return picked;
    }
  }
  return {};
}

double RmPipeline::OperationUtility(const std::vector<ScoredRatingMap>& maps) {
  double sum = 0.0;
  for (const ScoredRatingMap& m : maps) sum += m.dw_utility;
  return sum;
}

}  // namespace subdex
