#include "engine/rm_pipeline.h"

#include <chrono>
#include <limits>

#include "util/metrics.h"

namespace subdex {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The pipeline's degradation events: how often the anytime ladder actually
// skipped GMM diversification (DESIGN.md §8 / §9).
Counter& GmmFallbackCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "subdex_gmm_fallbacks_total",
      "Display selections that skipped GMM diversification (budget "
      "exhausted) and fell back to best-so-far top-k by DW utility");
  return c;
}

}  // namespace

std::vector<ScoredRatingMap> RmPipeline::SelectForDisplay(
    const RatingGroup& group, const SeenMapsTracker& seen,
    RmGeneratorStats* stats, StepTimings* timings, const StopToken& stop,
    StepPhase* cut) const {
  size_t k = config_->k;
  bool generation_truncated = false;
  // Degradation order within the display pipeline (paper-sane: utility
  // ranking is the primary objective, diversification a refinement): an
  // exhausted budget skips the GMM pass and returns the best-so-far top-k
  // by DW utility — the generator's output order — instead of the
  // diversified RM-set.
  auto diversify = [&](std::vector<ScoredRatingMap> candidates) {
    if (stop.ShouldStop()) {
      GmmFallbackCounter().Increment();
      if (cut != nullptr && *cut == StepPhase::kNone) {
        *cut = generation_truncated ? StepPhase::kRmGeneration
                                    : StepPhase::kGmmSelection;
      }
      if (candidates.size() > k) candidates.resize(k);
      return candidates;
    }
    Clock::time_point t1 = Clock::now();
    std::vector<ScoredRatingMap> picked =
        selector_.SelectDiverse(std::move(candidates), k);
    if (timings != nullptr) timings->gmm_selection_ms += MsSince(t1);
    if (generation_truncated && cut != nullptr &&
        *cut == StepPhase::kNone) {
      *cut = StepPhase::kRmGeneration;
    }
    return picked;
  };
  switch (config_->selection) {
    case SelectionMode::kUtilityAndDiversity: {
      Clock::time_point t0 = Clock::now();
      std::vector<ScoredRatingMap> top = generator_.Generate(
          group, seen, k * config_->l, stats, stop, &generation_truncated);
      if (timings != nullptr) timings->rm_generation_ms += MsSince(t0);
      return diversify(std::move(top));
    }
    case SelectionMode::kUtilityOnly: {
      // Equivalent to l = 1: the k highest-DW-utility maps, no GMM pass.
      Clock::time_point t0 = Clock::now();
      std::vector<ScoredRatingMap> top = generator_.Generate(
          group, seen, k, stats, stop, &generation_truncated);
      if (timings != nullptr) timings->rm_generation_ms += MsSince(t0);
      if (generation_truncated && cut != nullptr &&
          *cut == StepPhase::kNone) {
        *cut = StepPhase::kRmGeneration;
      }
      return top;
    }
    case SelectionMode::kDiversityOnly: {
      // Keep every candidate map (pruning is vacuous with an unbounded
      // budget) and let GMM pick the k most diverse.
      Clock::time_point t0 = Clock::now();
      std::vector<ScoredRatingMap> all = generator_.Generate(
          group, seen, std::numeric_limits<size_t>::max(), stats, stop,
          &generation_truncated);
      if (timings != nullptr) timings->rm_generation_ms += MsSince(t0);
      return diversify(std::move(all));
    }
  }
  return {};
}

double RmPipeline::OperationUtility(const std::vector<ScoredRatingMap>& maps) {
  double sum = 0.0;
  for (const ScoredRatingMap& m : maps) sum += m.dw_utility;
  return sum;
}

}  // namespace subdex
