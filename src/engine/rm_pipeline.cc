#include "engine/rm_pipeline.h"

#include <limits>

namespace subdex {

std::vector<ScoredRatingMap> RmPipeline::SelectForDisplay(
    const RatingGroup& group, const SeenMapsTracker& seen,
    RmGeneratorStats* stats) const {
  size_t k = config_->k;
  switch (config_->selection) {
    case SelectionMode::kUtilityAndDiversity: {
      std::vector<ScoredRatingMap> top =
          generator_.Generate(group, seen, k * config_->l, stats);
      return selector_.SelectDiverse(std::move(top), k);
    }
    case SelectionMode::kUtilityOnly:
      // Equivalent to l = 1: the k highest-DW-utility maps, no GMM pass.
      return generator_.Generate(group, seen, k, stats);
    case SelectionMode::kDiversityOnly: {
      // Keep every candidate map (pruning is vacuous with an unbounded
      // budget) and let GMM pick the k most diverse.
      std::vector<ScoredRatingMap> all = generator_.Generate(
          group, seen, std::numeric_limits<size_t>::max(), stats);
      return selector_.SelectDiverse(std::move(all), k);
    }
  }
  return {};
}

double RmPipeline::OperationUtility(const std::vector<ScoredRatingMap>& maps) {
  double sum = 0.0;
  for (const ScoredRatingMap& m : maps) sum += m.dw_utility;
  return sum;
}

}  // namespace subdex
