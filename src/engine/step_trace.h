#ifndef SUBDEX_ENGINE_STEP_TRACE_H_
#define SUBDEX_ENGINE_STEP_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "engine/step_timings.h"
#include "util/status.h"

namespace subdex {

/// Structured trace of one exploration step — the per-interaction record
/// the paper's evaluation aggregates (per-step latency breakdowns, pruning
/// effectiveness, cache behaviour). Attached to every StepResult;
/// serializes to JSON for session dumps and the determinism golden test.
/// The counts are exact; the span timings are wall-clock and therefore
/// run-dependent, so ToJson(/*include_timings=*/false) renders a
/// deterministic view for golden comparisons.
struct StepTrace {
  /// One executed pipeline phase: offset from step start plus duration.
  /// `completed` is false when the budget cut the phase short (the phase
  /// still produced its best-effort output — see DESIGN.md §8).
  struct PhaseSpan {
    StepPhase phase = StepPhase::kNone;
    double start_ms = 0.0;
    double duration_ms = 0.0;
    bool completed = true;
  };

  /// Pruning decisions of one pipeline run (Algorithm 1 + Algorithm 3 /
  /// SAR): how many candidate rating maps entered, how many each scheme
  /// killed, how many survived to exact scoring.
  struct PruningTrace {
    size_t candidates = 0;
    size_t pruned_ci = 0;
    size_t pruned_mab = 0;
    size_t mab_accepted = 0;
    size_t survivors = 0;
    size_t phases_run = 0;
    size_t record_updates = 0;
  };

  /// Rating-group cache outcomes attributed to the step (deltas of the
  /// shared cache's stats across the step; concurrent steps on one engine
  /// may interleave their deltas).
  struct CacheTrace {
    size_t hits = 0;
    size_t misses = 0;
    size_t coalesced = 0;
  };

  std::vector<PhaseSpan> spans;
  /// The display pipeline's pruning decisions (Problem 1).
  PruningTrace display;
  /// Aggregate pruning over the recommendation fan-out (Problem 2): every
  /// candidate operation runs the full pipeline on its target group.
  PruningTrace recommendations;
  CacheTrace cache;

  size_t group_size = 0;
  size_t maps_displayed = 0;
  size_t recommendations_returned = 0;
  bool degraded = false;
  bool cancelled = false;
  StepPhase cut_phase = StepPhase::kNone;

  /// Single-line JSON object. With `include_timings` false, the span
  /// start/duration fields are omitted (phase order and completion flags
  /// remain), making the output a pure function of the engine's
  /// deterministic execution.
  SUBDEX_NODISCARD std::string ToJson(bool include_timings = true) const;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_STEP_TRACE_H_
