#ifndef SUBDEX_ENGINE_RM_SELECTOR_H_
#define SUBDEX_ENGINE_RM_SELECTOR_H_

#include <vector>

#include "engine/rm_generator.h"
#include "util/status.h"

namespace subdex {

/// The RM-Selector (Section 4.2.2): picks the most diverse k-size subset of
/// the generator's top-(k*l) maps with the GMM algorithm, seeded at the
/// highest-DW-utility map. The returned maps keep their scores and are
/// ordered by descending DW utility.
class RmSelector {
 public:
  explicit RmSelector(const EngineConfig* config) : config_(config) {}

  SUBDEX_NODISCARD std::vector<ScoredRatingMap> SelectDiverse(
      std::vector<ScoredRatingMap> candidates, size_t k) const;

 private:
  const EngineConfig* config_;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_RM_SELECTOR_H_
