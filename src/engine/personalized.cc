#include "engine/personalized.h"

#include <algorithm>

#include "util/check.h"

namespace subdex {

namespace {

// Attributes whose conjunct differs between the two predicates.
void CollectTouchedAttributes(const Predicate& from, const Predicate& to,
                              int side_tag,
                              std::vector<std::pair<int, size_t>>* out) {
  for (const AttributeValue& av : to.conjuncts()) {
    bool same = false;
    for (const AttributeValue& bv : from.conjuncts()) {
      if (bv.attribute == av.attribute && bv.code == av.code) {
        same = true;
        break;
      }
    }
    if (!same) out->push_back({side_tag, av.attribute});
  }
  for (const AttributeValue& av : from.conjuncts()) {
    if (!to.ConstrainsAttribute(av.attribute)) {
      out->push_back({side_tag, av.attribute});
    }
  }
}

std::vector<std::pair<int, size_t>> TouchedAttributes(
    const GroupSelection& from, const GroupSelection& to) {
  std::vector<std::pair<int, size_t>> touched;
  CollectTouchedAttributes(from.reviewer_pred, to.reviewer_pred, 0, &touched);
  CollectTouchedAttributes(from.item_pred, to.item_pred, 1, &touched);
  return touched;
}

}  // namespace

void OperationPreferenceModel::ObserveTransition(const GroupSelection& from,
                                                 const GroupSelection& to) {
  for (const auto& key : TouchedAttributes(from, to)) {
    double& count = touches_[key];
    count += 1.0;
    max_count_ = std::max(max_count_, count);
    total_ += 1.0;
  }
}

void OperationPreferenceModel::ObserveLog(const SessionLog& log) {
  // steps() snapshots the synchronized log; take it once, not per access.
  const std::vector<LoggedStep> steps = log.steps();
  for (size_t i = 1; i < steps.size(); ++i) {
    ObserveTransition(steps[i - 1].selection, steps[i].selection);
  }
}

double OperationPreferenceModel::Affinity(const GroupSelection& from,
                                          const GroupSelection& to) const {
  if (max_count_ <= 0.0) return 0.5;  // untrained: neutral
  std::vector<std::pair<int, size_t>> touched = TouchedAttributes(from, to);
  if (touched.empty()) return 0.5;
  double sum = 0.0;
  for (const auto& key : touched) {
    auto it = touches_.find(key);
    sum += it == touches_.end() ? 0.0 : it->second / max_count_;
  }
  return sum / static_cast<double>(touched.size());
}

std::vector<Recommendation> OperationPreferenceModel::Rerank(
    std::vector<Recommendation> recs, const GroupSelection& current,
    double blend) const {
  SUBDEX_CHECK(blend >= 0.0 && blend <= 1.0);
  if (recs.empty() || blend == 0.0) return recs;
  double max_utility = 0.0;
  for (const Recommendation& r : recs) {
    max_utility = std::max(max_utility, r.utility);
  }
  auto blended = [&](const Recommendation& r) {
    double utility = max_utility > 0.0 ? r.utility / max_utility : 0.0;
    return (1.0 - blend) * utility +
           blend * Affinity(current, r.operation.target);
  };
  std::stable_sort(recs.begin(), recs.end(),
                   [&](const Recommendation& a, const Recommendation& b) {
                     return blended(a) > blended(b);
                   });
  return recs;
}

}  // namespace subdex
