#ifndef SUBDEX_ENGINE_RECOMMENDATION_BUILDER_H_
#define SUBDEX_ENGINE_RECOMMENDATION_BUILDER_H_

#include <vector>

#include "engine/group_cache.h"
#include "engine/rm_pipeline.h"
#include "subjective/operation.h"
#include "util/status.h"

namespace subdex {

/// A scored next-step recommendation: the operation, the k rating maps its
/// target group would display, and the operation utility of Eq. 2.
struct Recommendation {
  Operation operation;
  double utility = 0.0;
  std::vector<ScoredRatingMap> maps;
  size_t group_size = 0;
};

/// The Recommendation Builder of Figure 4 (Section 4.3): enumerates
/// candidate operations within 2 attribute-value edits of the current
/// selection, evaluates each by running the full RM-set pipeline on its
/// target rating group, and returns the top-o by utility. Candidates are
/// evaluated concurrently on the caller-supplied long-lived worker pool
/// (the paper's parallel query execution — the number of simultaneous
/// evaluations is the number of available cores); without a pool, or for
/// the No-Parallelism and Naive baselines, evaluation is sequential. The
/// builder never constructs threads itself.
///
/// Note: the paper partitions this work per displayed rating map purely to
/// parallelize it; an operation's utility does not depend on which map it
/// is shown next to, so evaluating the candidate pool directly is
/// equivalent.
class RecommendationBuilder {
 public:
  /// `cache` may be null (every candidate group is materialized afresh);
  /// `pool` may be null (sequential evaluation).
  RecommendationBuilder(const SubjectiveDatabase* db,
                        const EngineConfig* config, const RmPipeline* pipeline,
                        RatingGroupCache* cache = nullptr,
                        ThreadPool* pool = nullptr)
      : db_(db),
        config_(config),
        pipeline_(pipeline),
        cache_(cache),
        pool_(pool) {}

  /// Top-o recommendations from `current` given history `seen` (Problem 2).
  /// Candidates whose target selection appears in `explored` (the
  /// selections whose maps the user has already been shown) are skipped —
  /// re-recommending an already-displayed view shows nothing new, the same
  /// rationale as global peculiarity's multi-step diversity.
  ///
  /// `stop` makes the fan-out anytime: once the budget is exhausted,
  /// unevaluated candidates are skipped (the pool stops scheduling them)
  /// and the ranking covers only the candidates evaluated so far.
  /// `*truncated` (if non-null) is set to true when the budget cut the
  /// fan-out short, and left untouched otherwise.
  SUBDEX_NODISCARD std::vector<Recommendation> TopRecommendations(
      const GroupSelection& current, const SeenMapsTracker& seen,
      const std::vector<GroupSelection>& explored = {},
      RmGeneratorStats* stats = nullptr, const StopToken& stop = StopToken(),
      bool* truncated = nullptr) const;

 private:
  const SubjectiveDatabase* db_;
  const EngineConfig* config_;
  const RmPipeline* pipeline_;
  RatingGroupCache* cache_;
  ThreadPool* pool_;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_RECOMMENDATION_BUILDER_H_
