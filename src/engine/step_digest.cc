#include "engine/step_digest.h"

#include <cstring>
#include <string_view>

#include "storage/query_parser.h"

namespace subdex {

namespace {

/// FNV-1a, fed length-prefixed fields so adjacent strings can't collide
/// by shifting bytes across a boundary ("ab"+"c" vs "a"+"bc").
class Fnv64 {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  SUBDEX_NODISCARD uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ULL;
};

void HashSelection(Fnv64* h, const SubjectiveDatabase& db,
                   const GroupSelection& selection) {
  h->Str(PredicateToQuery(db.table(Side::kReviewer),
                          selection.reviewer_pred));
  h->Str(PredicateToQuery(db.table(Side::kItem), selection.item_pred));
}

}  // namespace

uint64_t ComputeStepDigest(const SubjectiveDatabase& db,
                           const StepResult& result) {
  Fnv64 h;
  HashSelection(&h, db, result.selection);
  h.U64(result.group_size);
  h.U64(result.maps.size());
  for (const ScoredRatingMap& map : result.maps) {
    const RatingMapKey& key = map.map.key();
    h.Str(SideName(key.side));
    h.Str(db.table(key.side).schema().attribute(key.attribute).name);
    h.Str(db.dimension_name(key.dimension));
    h.F64(map.utility);
    h.F64(map.dw_utility);
    h.U64(map.map.full_group_size());
    h.U64(map.map.subgroups().size());
    for (const Subgroup& sg : map.map.subgroups()) {
      h.U64(sg.value);
      h.U64(sg.count());
      h.F64(sg.average());
    }
  }
  h.U64(result.recommendations.size());
  for (const Recommendation& reco : result.recommendations) {
    h.Str(OperationKindName(reco.operation.kind));
    HashSelection(&h, db, reco.operation.target);
    h.F64(reco.utility);
    h.U64(reco.group_size);
  }
  return h.hash();
}

}  // namespace subdex
