#ifndef SUBDEX_ENGINE_RM_PIPELINE_H_
#define SUBDEX_ENGINE_RM_PIPELINE_H_

#include <vector>

#include "engine/rm_generator.h"
#include "engine/rm_selector.h"
#include "engine/step_timings.h"
#include "util/status.h"

namespace subdex {

/// The RM-Set generator of Figure 4: composes the RM-Generator (top k*l
/// maps by DW utility, with pruning) and the RM-Selector (GMM diversity)
/// to solve the Diverse Rating Map Set Selection problem (Problem 1) for a
/// rating group, honoring the configured SelectionMode.
class RmPipeline {
 public:
  /// `pool` may be null (serial execution); it is forwarded to the
  /// RM-Generator's parallel phase loops.
  explicit RmPipeline(const EngineConfig* config, ThreadPool* pool = nullptr)
      : config_(config), generator_(config, pool), selector_(config) {}

  /// The k-size display set for `group` given history `seen`. Does not
  /// mutate the history. When `timings` is non-null, the generation and
  /// GMM-selection wall-clock times are accumulated into it.
  ///
  /// `stop` makes the call anytime: the generator stops consuming the
  /// group at the first phase boundary past the budget, and an exhausted
  /// budget skips GMM diversification, falling back to the best-so-far
  /// top-k by DW interestingness (the generator's utility order). When a
  /// cut happens and `cut` is non-null, `*cut` is set to the earliest
  /// phase affected (kRmGeneration or kGmmSelection); it is left untouched
  /// on a complete run.
  SUBDEX_NODISCARD std::vector<ScoredRatingMap> SelectForDisplay(
      const RatingGroup& group, const SeenMapsTracker& seen,
      RmGeneratorStats* stats = nullptr, StepTimings* timings = nullptr,
      const StopToken& stop = StopToken(), StepPhase* cut = nullptr) const;

  /// Utility of an exploration operation (Eq. 2): the sum of DW utilities
  /// of the maps the operation would display.
  static double OperationUtility(const std::vector<ScoredRatingMap>& maps);

 private:
  const EngineConfig* config_;
  RmGenerator generator_;
  RmSelector selector_;
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_RM_PIPELINE_H_
