#include "engine/fallacy.h"

#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace subdex {

std::string FallacyWarning::Describe(const SubjectiveDatabase& db) const {
  const Dictionary& dict = db.table(key.side).dictionary(key.attribute);
  auto name = [&](ValueCode code) {
    return code == kNullCode ? std::string("unspecified") : dict.ValueOf(code);
  };
  return "drill-down fallacy on " + key.ToString(db) + ": '" +
         name(subgroup_a) + "' vs '" + name(subgroup_b) +
         "' reverses (parent gap " + FormatDouble(parent_gap, 2) +
         ", child gap " + FormatDouble(child_gap, 2) + ")";
}

std::vector<FallacyWarning> DetectDrillDownFallacies(
    const RatingGroup& parent, const RatingGroup& child,
    const FallacyDetectionOptions& options) {
  SUBDEX_CHECK(&parent.db() == &child.db());
  const SubjectiveDatabase& db = parent.db();
  std::vector<FallacyWarning> warnings;

  for (const RatingMapKey& key : AllRatingMapKeys(db, child.selection())) {
    RatingMap parent_map = RatingMap::Build(parent, key);
    RatingMap child_map = RatingMap::Build(child, key);

    // Index the parent's qualifying subgroups by value code.
    struct Entry {
      double avg;
      uint64_t count;
    };
    std::vector<std::pair<ValueCode, Entry>> parent_groups;
    for (const Subgroup& sg : parent_map.subgroups()) {
      if (sg.count() >= options.min_count) {
        parent_groups.push_back({sg.value, {sg.average(), sg.count()}});
      }
    }
    auto parent_of = [&](ValueCode code) -> const Entry* {
      for (const auto& [value, entry] : parent_groups) {
        if (value == code) return &entry;
      }
      return nullptr;
    };

    const auto& child_groups = child_map.subgroups();
    for (size_t i = 0; i < child_groups.size(); ++i) {
      if (child_groups[i].count() < options.min_count) continue;
      const Entry* pa = parent_of(child_groups[i].value);
      if (pa == nullptr) continue;
      for (size_t j = i + 1; j < child_groups.size(); ++j) {
        if (child_groups[j].count() < options.min_count) continue;
        const Entry* pb = parent_of(child_groups[j].value);
        if (pb == nullptr) continue;
        double parent_gap = pa->avg - pb->avg;
        double child_gap =
            child_groups[i].average() - child_groups[j].average();
        if (std::fabs(parent_gap) >= options.min_gap &&
            std::fabs(child_gap) >= options.min_gap &&
            parent_gap * child_gap < 0.0) {
          FallacyWarning warning;
          warning.key = key;
          warning.subgroup_a = child_groups[i].value;
          warning.subgroup_b = child_groups[j].value;
          warning.parent_gap = parent_gap;
          warning.child_gap = child_gap;
          warnings.push_back(warning);
        }
      }
    }
  }
  return warnings;
}

}  // namespace subdex
