#include "engine/sde_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "engine/session_log.h"

namespace subdex {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

EngineConfig WithDatabaseSize(EngineConfig config,
                              const SubjectiveDatabase& db) {
  if (config.utility.database_size == 0) {
    config.utility.database_size = db.num_records();
  }
  return config;
}

}  // namespace

SdeEngine::SdeEngine(const SubjectiveDatabase* db, EngineConfig config)
    : db_(db),
      config_(WithDatabaseSize(config, *db)),
      pool_(config_.num_threads > 1
                ? std::make_unique<ThreadPool>(config_.num_threads)
                : nullptr),
      pipeline_(&config_, pool_.get()),
      cache_(std::make_unique<RatingGroupCache>(
          db, config_.group_cache_capacity)),
      builder_(db, &config_, &pipeline_, cache_.get(), pool_.get()),
      seen_(db->num_dimensions()) {}

StepResult SdeEngine::ExecuteStep(const GroupSelection& selection,
                                  bool with_recommendations) {
  StepOptions options;
  options.with_recommendations = with_recommendations;
  return ExecuteStep(selection, options);
}

StepResult SdeEngine::ExecuteStep(const GroupSelection& selection,
                                  const StepOptions& options) {
  Clock::time_point start = Clock::now();
  ThreadPool::Stats pool_before;
  if (pool_ != nullptr) pool_before = pool_->stats();

  const StopToken stop(options.deadline, options.token);

  StepResult result;
  result.selection = selection;

  // Records the earliest phase the budget interrupted; later cuts only
  // confirm the degradation, they don't move the marker back.
  auto cut = [&result](StepPhase phase) {
    result.degraded = true;
    if (result.cut_phase == StepPhase::kNone) result.cut_phase = phase;
  };

  // Logging never fails the step; lost entries are counted so callers can
  // tell a clean log from a lossy one. Cancelled steps are not part of the
  // session record — nothing was shown and nothing committed.
  auto log_step = [this, &result] {
    if (log_ != nullptr && !result.cancelled) {
      if (!log_->Append(result).ok()) {
        dropped_log_entries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  // Out of budget before any work: return an empty (but valid) result
  // without materializing the group or touching the history. This is the
  // <5 ms path for steps submitted with an already-expired deadline.
  if (stop.ShouldStop()) {
    cut(StepPhase::kMaterialize);
    result.cancelled = stop.cancelled();
    result.elapsed_ms = MsBetween(start, Clock::now());
    log_step();
    return result;
  }

  RatingGroup group = cache_->Get(selection);
  Clock::time_point materialized = Clock::now();
  result.timings.materialize_ms = MsBetween(start, materialized);

  result.group_size = group.size();
  {
    // History-dependent phases serialize on mu_: selection scoring reads
    // the seen-maps history, and the recommendation ranking must see the
    // history updated by this step's displayed maps. Parallelism inside
    // the step (phase scans, recommendation fan-out) is unaffected — pool
    // workers never touch mu_.
    //
    // Strong exception guarantee: everything below computes on copies
    // (`updated`, `result`) and commits to seen_/explored_ only in the
    // final else-branch. A throw from the pipeline, the builder, or an
    // injected fault unwinds past the commit and leaves the history
    // exactly as it was before the step.
    MutexLock lock(mu_);
    StepPhase display_cut = StepPhase::kNone;
    result.maps = pipeline_.SelectForDisplay(group, seen_, &result.stats,
                                             &result.timings, stop,
                                             &display_cut);
    if (display_cut != StepPhase::kNone) cut(display_cut);

    if (stop.cancelled()) {
      // Explicit cancellation abandons the step: nothing is displayed, so
      // nothing enters the history (unlike deadline expiry, where the
      // best-effort maps ARE shown to the user and must be remembered).
      result.maps.clear();
      result.cancelled = true;
      result.degraded = true;
    } else {
      // The user sees these maps now; recommendations are ranked against
      // the updated history, and later steps' global peculiarity refers to
      // them. `updated` is the tentative post-step history.
      SeenMapsTracker updated = seen_;
      for (const ScoredRatingMap& m : result.maps) updated.Record(m.map);
      // Revisits must not duplicate history entries: TopRecommendations
      // scans `explored_` per candidate, so duplicates degrade it to
      // O(|candidates| * |steps|) and skew nothing else.
      const bool record_selection =
          std::find(explored_.begin(), explored_.end(), selection) ==
          explored_.end();

      if (options.with_recommendations) {
        if (stop.ShouldStop()) {
          // First rung of the degradation ladder: the maps are worth
          // showing late, the recommendations are not.
          cut(StepPhase::kRecommendations);
        } else {
          Clock::time_point reco_start = Clock::now();
          bool reco_truncated = false;
          result.recommendations = builder_.TopRecommendations(
              selection, updated, explored_, &result.stats, stop,
              &reco_truncated);
          result.timings.recommendation_ms =
              MsBetween(reco_start, Clock::now());
          if (reco_truncated) cut(StepPhase::kRecommendations);
        }
      }

      if (stop.cancelled()) {
        // Cancellation landed during the recommendation fan-out: the step
        // is abandoned as a whole, commit nothing.
        result.maps.clear();
        result.recommendations.clear();
        result.cancelled = true;
        result.degraded = true;
      } else {
        // Commit point: the step succeeded (possibly degraded), so its
        // displayed maps become history.
        seen_ = std::move(updated);
        if (record_selection) explored_.push_back(selection);
      }
    }
  }

  if (pool_ != nullptr) {
    ThreadPool::Stats pool_after = pool_->stats();
    result.timings.pool_tasks =
        pool_after.tasks_submitted - pool_before.tasks_submitted;
    result.timings.pool_batches =
        pool_after.batches_run - pool_before.batches_run;
    result.timings.pool_max_queue_depth = pool_after.max_queue_depth;
  }

  result.elapsed_ms = MsBetween(start, Clock::now());
  log_step();
  return result;
}

SeenMapsTracker SdeEngine::seen() const {
  MutexLock lock(mu_);
  return seen_;
}

std::vector<GroupSelection> SdeEngine::explored_selections() const {
  MutexLock lock(mu_);
  return explored_;
}

void SdeEngine::ResetHistory() {
  MutexLock lock(mu_);
  seen_ = SeenMapsTracker(db_->num_dimensions());
  explored_.clear();
}

}  // namespace subdex
