#include "engine/sde_engine.h"

#include <chrono>

namespace subdex {

namespace {
EngineConfig WithDatabaseSize(EngineConfig config,
                              const SubjectiveDatabase& db) {
  if (config.utility.database_size == 0) {
    config.utility.database_size = db.num_records();
  }
  return config;
}
}  // namespace

SdeEngine::SdeEngine(const SubjectiveDatabase* db, EngineConfig config)
    : db_(db),
      config_(WithDatabaseSize(config, *db)),
      pipeline_(&config_),
      cache_(std::make_unique<RatingGroupCache>(
          db, config_.group_cache_capacity)),
      builder_(db, &config_, &pipeline_, cache_.get()),
      seen_(db->num_dimensions()) {}

StepResult SdeEngine::ExecuteStep(const GroupSelection& selection,
                                  bool with_recommendations) {
  auto start = std::chrono::steady_clock::now();
  StepResult result;
  result.selection = selection;

  RatingGroup group = cache_->Get(selection);
  result.group_size = group.size();
  result.maps = pipeline_.SelectForDisplay(group, seen_, &result.stats);
  // The user sees these maps now; recommendations are ranked against the
  // updated history, and later steps' global peculiarity refers to them.
  for (const ScoredRatingMap& m : result.maps) seen_.Record(m.map);
  explored_.push_back(selection);

  if (with_recommendations) {
    result.recommendations = builder_.TopRecommendations(
        selection, seen_, explored_, &result.stats);
  }

  auto end = std::chrono::steady_clock::now();
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

void SdeEngine::ResetHistory() {
  seen_ = SeenMapsTracker(db_->num_dimensions());
  explored_.clear();
}

}  // namespace subdex
