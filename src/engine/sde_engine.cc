#include "engine/sde_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "engine/session_log.h"
#include "engine/step_digest.h"

namespace subdex {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

EngineConfig WithDatabaseSize(EngineConfig config,
                              const SubjectiveDatabase& db) {
  if (config.utility.database_size == 0) {
    config.utility.database_size = db.num_records();
  }
  return config;
}

struct EngineMetrics {
  Counter& steps;
  Counter& degraded;
  Counter& cancelled;
  Counter& log_drops;
  Histogram& step_ms;
  Histogram& materialize_ms;
  Histogram& rm_generation_ms;
  Histogram& gmm_selection_ms;
  Histogram& recommendation_ms;

  static EngineMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static EngineMetrics m{
        reg.GetCounter("subdex_engine_steps_total",
                       "Exploration steps executed (including degraded and "
                       "cancelled ones)"),
        reg.GetCounter("subdex_engine_degraded_steps_total",
                       "Steps whose deadline or cancellation cut work short "
                       "(best-effort results)"),
        reg.GetCounter("subdex_engine_cancelled_steps_total",
                       "Steps abandoned by explicit cancellation (nothing "
                       "displayed, history untouched)"),
        reg.GetCounter("subdex_engine_log_drops_total",
                       "Step records the attached session log failed to "
                       "persist"),
        reg.GetHistogram("subdex_engine_step_ms",
                         MetricsRegistry::LatencyBucketsMs(),
                         "End-to-end per-step latency (the paper's per-step "
                         "running time measure)"),
        reg.GetHistogram("subdex_step_materialize_ms",
                         MetricsRegistry::LatencyBucketsMs(),
                         "Rating-group materialization phase duration"),
        reg.GetHistogram("subdex_step_rm_generation_ms",
                         MetricsRegistry::LatencyBucketsMs(),
                         "RM-Generator phase duration (display pipeline)"),
        reg.GetHistogram("subdex_step_gmm_selection_ms",
                         MetricsRegistry::LatencyBucketsMs(),
                         "GMM diversification phase duration (display "
                         "pipeline)"),
        reg.GetHistogram("subdex_step_recommendation_ms",
                         MetricsRegistry::LatencyBucketsMs(),
                         "Recommendation fan-out phase duration"),
    };
    return m;
  }
};

// The generator's "survivors": candidates that reached exact full-data
// scoring, i.e. were never killed by CI or MAB pruning.
size_t Survivors(const RmGeneratorStats& s) {
  size_t killed = s.pruned_ci + s.pruned_mab;
  return killed >= s.num_candidates ? 0 : s.num_candidates - killed;
}

StepTrace::PruningTrace PruningTraceFrom(const RmGeneratorStats& s) {
  StepTrace::PruningTrace t;
  t.candidates = s.num_candidates;
  t.pruned_ci = s.pruned_ci;
  t.pruned_mab = s.pruned_mab;
  t.mab_accepted = s.mab_accepted;
  t.survivors = Survivors(s);
  t.phases_run = s.phases_run;
  t.record_updates = s.record_updates;
  return t;
}

RmGeneratorStats StatsDelta(const RmGeneratorStats& total,
                            const RmGeneratorStats& part) {
  RmGeneratorStats d;
  d.num_candidates = total.num_candidates - part.num_candidates;
  d.pruned_ci = total.pruned_ci - part.pruned_ci;
  d.pruned_mab = total.pruned_mab - part.pruned_mab;
  d.mab_accepted = total.mab_accepted - part.mab_accepted;
  d.record_updates = total.record_updates - part.record_updates;
  d.phases_run = total.phases_run - part.phases_run;
  return d;
}

}  // namespace

SdeEngine::SdeEngine(const SubjectiveDatabase* db, EngineConfig config)
    : db_(db),
      config_(WithDatabaseSize(config, *db)),
      pool_(config_.num_threads > 1
                ? std::make_unique<ThreadPool>(config_.num_threads)
                : nullptr),
      pipeline_(&config_, pool_.get()),
      cache_(std::make_unique<RatingGroupCache>(
          db, config_.group_cache_capacity)),
      builder_(db, &config_, &pipeline_, cache_.get(), pool_.get()),
      seen_(db->num_dimensions()) {}

StepResult SdeEngine::ExecuteStep(const GroupSelection& selection,
                                  bool with_recommendations) {
  StepOptions options;
  options.with_recommendations = with_recommendations;
  return ExecuteStep(selection, options);
}

StepResult SdeEngine::ExecuteStep(const GroupSelection& selection,
                                  const StepOptions& options) {
  Clock::time_point start = Clock::now();
  ThreadPool::Stats pool_before;
  if (pool_ != nullptr) pool_before = pool_->stats();
  const RatingGroupCache::Stats cache_before = cache_->stats();

  const StopToken stop(options.deadline, options.token);

  StepResult result;
  result.selection = selection;

  // Records the earliest phase the budget interrupted; later cuts only
  // confirm the degradation, they don't move the marker back.
  auto cut = [&result](StepPhase phase) {
    result.degraded = true;
    if (result.cut_phase == StepPhase::kNone) result.cut_phase = phase;
  };

  // Logging never fails the step; lost entries are counted so callers can
  // tell a clean log from a lossy one. Cancelled steps are not part of the
  // session record — nothing was shown and nothing committed.
  auto log_step = [this, &result] {
    if (log_ != nullptr && !result.cancelled) {
      if (!log_->Append(result).ok()) {
        dropped_log_entries_.fetch_add(1, std::memory_order_relaxed);
        EngineMetrics::Get().log_drops.Increment();
      }
    }
  };

  // Mirrors the result's outcome fields into the trace and the global
  // registry. Every exit path (early-out, cancelled, committed) funnels
  // through here so the step counters never miss an outcome.
  auto finalize = [this, &result, &cache_before] {
    EngineMetrics& metrics = EngineMetrics::Get();
    metrics.steps.Increment();
    if (result.degraded) metrics.degraded.Increment();
    if (result.cancelled) metrics.cancelled.Increment();
    metrics.step_ms.Observe(result.elapsed_ms);
    const RatingGroupCache::Stats cache_after = cache_->stats();
    result.trace.cache.hits = cache_after.hits - cache_before.hits;
    result.trace.cache.misses = cache_after.misses - cache_before.misses;
    result.trace.cache.coalesced =
        cache_after.coalesced - cache_before.coalesced;
    result.trace.group_size = result.group_size;
    result.trace.maps_displayed = result.maps.size();
    result.trace.recommendations_returned = result.recommendations.size();
    result.trace.degraded = result.degraded;
    result.trace.cancelled = result.cancelled;
    result.trace.cut_phase = result.cut_phase;
  };

  // Out of budget before any work: return an empty (but valid) result
  // without materializing the group or touching the history. This is the
  // <5 ms path for steps submitted with an already-expired deadline.
  if (stop.ShouldStop()) {
    cut(StepPhase::kMaterialize);
    result.cancelled = stop.cancelled();
    result.trace.spans.push_back(
        {StepPhase::kMaterialize, 0.0, 0.0, /*completed=*/false});
    result.elapsed_ms = MsBetween(start, Clock::now());
    if (!result.cancelled) result.digest = ComputeStepDigest(*db_, result);
    finalize();
    log_step();
    return result;
  }

  RatingGroup group = cache_->Get(selection);
  Clock::time_point materialized = Clock::now();
  result.timings.materialize_ms = MsBetween(start, materialized);
  EngineMetrics::Get().materialize_ms.Observe(result.timings.materialize_ms);
  result.trace.spans.push_back({StepPhase::kMaterialize, 0.0,
                                result.timings.materialize_ms,
                                /*completed=*/true});

  result.group_size = group.size();
  {
    // History-dependent phases serialize on mu_: selection scoring reads
    // the seen-maps history, and the recommendation ranking must see the
    // history updated by this step's displayed maps. Parallelism inside
    // the step (phase scans, recommendation fan-out) is unaffected — pool
    // workers never touch mu_.
    //
    // Strong exception guarantee: everything below computes on copies
    // (`updated`, `result`) and commits to seen_/explored_ only in the
    // final else-branch. A throw from the pipeline, the builder, or an
    // injected fault unwinds past the commit and leaves the history
    // exactly as it was before the step.
    MutexLock lock(mu_);
    StepPhase display_cut = StepPhase::kNone;
    const double display_start_ms = MsBetween(start, Clock::now());
    result.maps = pipeline_.SelectForDisplay(group, seen_, &result.stats,
                                             &result.timings, stop,
                                             &display_cut);
    if (display_cut != StepPhase::kNone) cut(display_cut);

    // Trace the display pipeline: its pruning decisions (the per-candidate
    // recommendation runs are accounted separately below) and its phase
    // spans. A gmm-selection span exists only when the configured mode
    // diversifies at all.
    const RmGeneratorStats display_stats = result.stats;
    result.trace.display = PruningTraceFrom(display_stats);
    EngineMetrics& engine_metrics = EngineMetrics::Get();
    engine_metrics.rm_generation_ms.Observe(result.timings.rm_generation_ms);
    result.trace.spans.push_back(
        {StepPhase::kRmGeneration, display_start_ms,
         result.timings.rm_generation_ms,
         display_cut != StepPhase::kRmGeneration});
    if (config_.selection != SelectionMode::kUtilityOnly) {
      engine_metrics.gmm_selection_ms.Observe(
          result.timings.gmm_selection_ms);
      result.trace.spans.push_back(
          {StepPhase::kGmmSelection,
           display_start_ms + result.timings.rm_generation_ms,
           result.timings.gmm_selection_ms,
           display_cut != StepPhase::kGmmSelection});
    }

    if (stop.cancelled()) {
      // Explicit cancellation abandons the step: nothing is displayed, so
      // nothing enters the history (unlike deadline expiry, where the
      // best-effort maps ARE shown to the user and must be remembered).
      result.maps.clear();
      result.cancelled = true;
      result.degraded = true;
    } else {
      // The user sees these maps now; recommendations are ranked against
      // the updated history, and later steps' global peculiarity refers to
      // them. `updated` is the tentative post-step history.
      SeenMapsTracker updated = seen_;
      for (const ScoredRatingMap& m : result.maps) updated.Record(m.map);
      // Revisits must not duplicate history entries: TopRecommendations
      // scans `explored_` per candidate, so duplicates degrade it to
      // O(|candidates| * |steps|) and skew nothing else.
      const bool record_selection =
          std::find(explored_.begin(), explored_.end(), selection) ==
          explored_.end();

      if (options.with_recommendations) {
        if (stop.ShouldStop()) {
          // First rung of the degradation ladder: the maps are worth
          // showing late, the recommendations are not.
          cut(StepPhase::kRecommendations);
          result.trace.spans.push_back({StepPhase::kRecommendations,
                                        MsBetween(start, Clock::now()), 0.0,
                                        /*completed=*/false});
        } else {
          Clock::time_point reco_start = Clock::now();
          bool reco_truncated = false;
          result.recommendations = builder_.TopRecommendations(
              selection, updated, explored_, &result.stats, stop,
              &reco_truncated);
          result.timings.recommendation_ms =
              MsBetween(reco_start, Clock::now());
          if (reco_truncated) cut(StepPhase::kRecommendations);
          engine_metrics.recommendation_ms.Observe(
              result.timings.recommendation_ms);
          // The fan-out's pruning work is whatever the merged stats gained
          // over the display pass.
          result.trace.recommendations =
              PruningTraceFrom(StatsDelta(result.stats, display_stats));
          result.trace.spans.push_back({StepPhase::kRecommendations,
                                        MsBetween(start, reco_start),
                                        result.timings.recommendation_ms,
                                        !reco_truncated});
        }
      }

      if (stop.cancelled()) {
        // Cancellation landed during the recommendation fan-out: the step
        // is abandoned as a whole, commit nothing.
        result.maps.clear();
        result.recommendations.clear();
        result.cancelled = true;
        result.degraded = true;
      } else {
        // Commit point: the step succeeded (possibly degraded), so its
        // displayed maps become history.
        seen_ = std::move(updated);
        if (record_selection) explored_.push_back(selection);
      }
    }
  }

  if (pool_ != nullptr) {
    ThreadPool::Stats pool_after = pool_->stats();
    result.timings.pool_tasks =
        pool_after.tasks_submitted - pool_before.tasks_submitted;
    result.timings.pool_batches =
        pool_after.batches_run - pool_before.batches_run;
    result.timings.pool_max_queue_depth = pool_after.max_queue_depth;
  }

  result.elapsed_ms = MsBetween(start, Clock::now());
  if (!result.cancelled) result.digest = ComputeStepDigest(*db_, result);
  finalize();
  log_step();
  return result;
}

MetricsSnapshot SdeEngine::MetricsSnapshot() const {
  return MetricsRegistry::Global().Snapshot();
}

SeenMapsTracker SdeEngine::seen() const {
  MutexLock lock(mu_);
  return seen_;
}

std::vector<GroupSelection> SdeEngine::explored_selections() const {
  MutexLock lock(mu_);
  return explored_;
}

void SdeEngine::ResetHistory() {
  MutexLock lock(mu_);
  seen_ = SeenMapsTracker(db_->num_dimensions());
  explored_.clear();
}

}  // namespace subdex
