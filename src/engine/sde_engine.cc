#include "engine/sde_engine.h"

#include <algorithm>
#include <chrono>

namespace subdex {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

EngineConfig WithDatabaseSize(EngineConfig config,
                              const SubjectiveDatabase& db) {
  if (config.utility.database_size == 0) {
    config.utility.database_size = db.num_records();
  }
  return config;
}

}  // namespace

SdeEngine::SdeEngine(const SubjectiveDatabase* db, EngineConfig config)
    : db_(db),
      config_(WithDatabaseSize(config, *db)),
      pool_(config_.num_threads > 1
                ? std::make_unique<ThreadPool>(config_.num_threads)
                : nullptr),
      pipeline_(&config_, pool_.get()),
      cache_(std::make_unique<RatingGroupCache>(
          db, config_.group_cache_capacity)),
      builder_(db, &config_, &pipeline_, cache_.get(), pool_.get()),
      seen_(db->num_dimensions()) {}

StepResult SdeEngine::ExecuteStep(const GroupSelection& selection,
                                  bool with_recommendations) {
  Clock::time_point start = Clock::now();
  ThreadPool::Stats pool_before;
  if (pool_ != nullptr) pool_before = pool_->stats();

  StepResult result;
  result.selection = selection;

  RatingGroup group = cache_->Get(selection);
  Clock::time_point materialized = Clock::now();
  result.timings.materialize_ms = MsBetween(start, materialized);

  result.group_size = group.size();
  {
    // History-dependent phases serialize on mu_: selection scoring reads
    // the seen-maps history, and the recommendation ranking must see the
    // history updated by this step's displayed maps. Parallelism inside
    // the step (phase scans, recommendation fan-out) is unaffected — pool
    // workers never touch mu_.
    MutexLock lock(mu_);
    result.maps = pipeline_.SelectForDisplay(group, seen_, &result.stats,
                                             &result.timings);
    // The user sees these maps now; recommendations are ranked against the
    // updated history, and later steps' global peculiarity refers to them.
    for (const ScoredRatingMap& m : result.maps) seen_.Record(m.map);
    // Revisits must not duplicate history entries: TopRecommendations scans
    // `explored_` per candidate, so duplicates degrade it to
    // O(|candidates| * |steps|) and skew nothing else.
    if (std::find(explored_.begin(), explored_.end(), selection) ==
        explored_.end()) {
      explored_.push_back(selection);
    }

    if (with_recommendations) {
      Clock::time_point reco_start = Clock::now();
      result.recommendations = builder_.TopRecommendations(
          selection, seen_, explored_, &result.stats);
      result.timings.recommendation_ms = MsBetween(reco_start, Clock::now());
    }
  }

  if (pool_ != nullptr) {
    ThreadPool::Stats pool_after = pool_->stats();
    result.timings.pool_tasks =
        pool_after.tasks_submitted - pool_before.tasks_submitted;
    result.timings.pool_batches =
        pool_after.batches_run - pool_before.batches_run;
    result.timings.pool_max_queue_depth = pool_after.max_queue_depth;
  }

  result.elapsed_ms = MsBetween(start, Clock::now());
  return result;
}

SeenMapsTracker SdeEngine::seen() const {
  MutexLock lock(mu_);
  return seen_;
}

std::vector<GroupSelection> SdeEngine::explored_selections() const {
  MutexLock lock(mu_);
  return explored_;
}

void SdeEngine::ResetHistory() {
  MutexLock lock(mu_);
  seen_ = SeenMapsTracker(db_->num_dimensions());
  explored_.clear();
}

}  // namespace subdex
