#ifndef SUBDEX_ENGINE_SDE_ENGINE_H_
#define SUBDEX_ENGINE_SDE_ENGINE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "engine/group_cache.h"
#include "engine/recommendation_builder.h"
#include "engine/rm_pipeline.h"
#include "engine/step_timings.h"
#include "engine/step_trace.h"
#include "util/deadline.h"
#include "util/lock_rank.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/status.h"

namespace subdex {

class SessionLog;

/// Everything the engine produced for one exploration step.
struct StepResult {
  GroupSelection selection;
  size_t group_size = 0;
  /// The k displayed rating maps (Problem 1).
  std::vector<ScoredRatingMap> maps;
  /// The top-o next-step recommendations (Problem 2); empty when the step
  /// was executed without recommendations (User-Driven mode).
  std::vector<Recommendation> recommendations;
  /// Aggregated generator work counters (display + recommendations).
  RmGeneratorStats stats;
  /// Per-phase wall-clock breakdown and pool work counters.
  StepTimings timings;
  /// Structured event record of the step: phase spans, pruning decisions,
  /// cache outcomes. trace.ToJson(/*include_timings=*/false) is
  /// deterministic for a fixed seed and num_threads = 1.
  StepTrace trace;
  /// Wall-clock time between picking the operation and having maps +
  /// recommendations ready — the paper's per-step running time measure.
  double elapsed_ms = 0.0;
  /// True when the step's deadline (or a cancellation) cut work short and
  /// the result is best-effort rather than exact.
  bool degraded = false;
  /// True when the step was explicitly cancelled: maps/recommendations are
  /// empty and nothing was committed to the exploration history.
  bool cancelled = false;
  /// The earliest pipeline phase the budget interrupted (kNone when the
  /// step ran to completion). Later phases were skipped or approximated.
  StepPhase cut_phase = StepPhase::kNone;
  /// Order-sensitive hash of the user-visible result (selection, maps,
  /// recommendations; engine/step_digest.h defines the coverage). The
  /// session journal persists it so replay recovery can verify that
  /// re-executing the step reproduced what the user was shown. 0 for
  /// cancelled steps (nothing was shown or committed).
  uint64_t digest = 0;
};

/// Per-step execution controls. The default-constructed options reproduce
/// the classic ExecuteStep(selection, true): no deadline, no cancellation,
/// recommendations on.
struct StepOptions {
  bool with_recommendations = true;
  /// Soft wall-clock budget. The step degrades in a fixed order as the
  /// deadline approaches — recommendations are dropped first, then the
  /// diversified RM-set falls back to best-so-far top-k by interestingness
  /// — and always returns a valid StepResult (`degraded` set).
  Deadline deadline;
  /// Cooperative cancellation. Unlike an expired deadline, a cancelled
  /// step returns an empty result and leaves the history untouched.
  CancellationToken token;
};

/// The SDE Engine of Figure 4: orchestrates group materialization, the
/// RM-set pipeline and the recommendation builder, and maintains the
/// history of displayed maps (RM) across steps. The engine owns the one
/// long-lived thread pool of the process ("parallel query execution") and
/// threads it through every hot path — the recommendation fan-out and the
/// RM generator's phase loops — so no component ever spawns threads per
/// step.
///
/// Thread safety: the cross-step exploration history (seen maps and
/// explored selections) is guarded by `mu_`, so concurrent ExecuteStep
/// calls on one engine are safe — the history-dependent phases of a step
/// serialize on `mu_`, while the parallelism *within* a step (phase scans,
/// recommendation fan-out) still runs on the shared pool.
class SdeEngine {
 public:
  SdeEngine(const SubjectiveDatabase* db, EngineConfig config);

  SUBDEX_NODISCARD const SubjectiveDatabase& db() const { return *db_; }
  SUBDEX_NODISCARD const EngineConfig& config() const { return config_; }

  /// Snapshot of the displayed-maps history at the time of the call.
  SUBDEX_NODISCARD SeenMapsTracker seen() const SUBDEX_EXCLUDES(mu_);

  /// Executes one exploration step: materializes the selection's rating
  /// group, selects the k display maps, records them as seen, and — when
  /// `with_recommendations` — ranks next-step operations against the
  /// updated history.
  StepResult ExecuteStep(const GroupSelection& selection,
                         bool with_recommendations) SUBDEX_EXCLUDES(mu_);

  /// Deadline-aware, cancellable variant with anytime semantics. Budget is
  /// checked at phase boundaries and the step degrades in a fixed order
  /// (recommendations first, then GMM diversification, then scan depth)
  /// rather than failing; `result.degraded`/`result.cut_phase` report what
  /// was cut. A step whose deadline is already expired on entry returns an
  /// empty degraded result without materializing anything.
  ///
  /// History semantics: maps actually displayed by a (possibly degraded)
  /// step are committed to the seen/explored history; an explicitly
  /// cancelled step commits nothing. The strong exception guarantee holds
  /// throughout: a step that throws (I/O failure, injected fault) leaves
  /// the history exactly as it was.
  StepResult ExecuteStep(const GroupSelection& selection,
                         const StepOptions& options) SUBDEX_EXCLUDES(mu_);

  /// Forgets all displayed maps (fresh exploration).
  void ResetHistory() SUBDEX_EXCLUDES(mu_);

  /// Selections whose maps have been displayed this exploration, without
  /// duplicates (revisiting a selection does not grow the list); a
  /// snapshot, like seen().
  SUBDEX_NODISCARD std::vector<GroupSelection> explored_selections() const
      SUBDEX_EXCLUDES(mu_);

  /// The shared rating-group cache (hit statistics for benchmarks).
  SUBDEX_NODISCARD
  const RatingGroupCache& group_cache() const { return *cache_; }

  /// Snapshot of the process-wide metrics registry (all subsystems, not
  /// just this engine): counters, gauges, and histogram buckets at the
  /// time of the call. Export with ToPrometheusText() or ToJson().
  SUBDEX_NODISCARD subdex::MetricsSnapshot MetricsSnapshot() const;

  /// The engine-owned worker pool; null when `num_threads` <= 1. Created
  /// once per engine and reused across every step.
  SUBDEX_NODISCARD const ThreadPool* pool() const { return pool_.get(); }

  /// Attaches a session log: every non-cancelled step (including
  /// deadline-degraded ones — the user saw their best-effort result) is
  /// appended to it. Logging failures never fail the step — they are
  /// counted in dropped_log_entries() instead. Pass nullptr to detach.
  /// The log must outlive the engine (or the detach).
  void AttachSessionLog(SessionLog* log) { log_ = log; }

  /// Number of step records the attached session log failed to persist
  /// (Append returned non-OK). 0 when no log is attached or all writes
  /// succeeded.
  SUBDEX_NODISCARD size_t dropped_log_entries() const {
    return dropped_log_entries_.load(std::memory_order_relaxed);
  }

 private:
  const SubjectiveDatabase* db_;
  EngineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  RmPipeline pipeline_;
  std::unique_ptr<RatingGroupCache> cache_;
  RecommendationBuilder builder_;

  // Optional step log (not owned) and the count of entries it failed to
  // persist. Atomic: steps on different threads may drop concurrently.
  SessionLog* log_ = nullptr;
  std::atomic<size_t> dropped_log_entries_{0};

  // Cross-step exploration history. SeenMapsTracker itself is a plain
  // (externally synchronized) value type; here it is protected by mu_.
  mutable Mutex mu_{"engine.history", lock_rank::kEngineHistory};
  SeenMapsTracker seen_ SUBDEX_GUARDED_BY(mu_);
  std::vector<GroupSelection> explored_ SUBDEX_GUARDED_BY(mu_);
};

}  // namespace subdex

#endif  // SUBDEX_ENGINE_SDE_ENGINE_H_
