#ifndef SUBDEX_CORE_GMM_H_
#define SUBDEX_CORE_GMM_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace subdex {

/// Pairwise distance oracle over elements indexed 0..n-1. Must be symmetric
/// and non-negative.
using DistanceFn = std::function<double(size_t, size_t)>;

/// The GMM algorithm of Gonzalez (1985), as used by the RM-Selector
/// (Section 4.2.2): starts from `start` and greedily adds, k-1 times, the
/// element whose minimum distance to the chosen set is maximal. Returns the
/// chosen indices (all of them when k >= n). A 2-approximation for the
/// max-min diversity objective; O(k * n) distance evaluations.
std::vector<size_t> GmmSelect(size_t n, size_t k, const DistanceFn& dist,
                              size_t start = 0);

/// min over pairs of `indices` of dist — the objective GMM approximates.
/// Returns +infinity-like 1e300 for fewer than 2 indices so callers can
/// treat singletons as maximally diverse.
double MinPairwiseDistance(const std::vector<size_t>& indices,
                           const DistanceFn& dist);

/// Exact max-min diversity selection by exhaustive search; exponential,
/// intended for validating GMM's approximation factor on small inputs.
std::vector<size_t> BruteForceMaxMinSelect(size_t n, size_t k,
                                           const DistanceFn& dist);

}  // namespace subdex

#endif  // SUBDEX_CORE_GMM_H_
