#include "core/gmm.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace subdex {

std::vector<size_t> GmmSelect(size_t n, size_t k, const DistanceFn& dist,
                              size_t start) {
  if (n == 0 || k == 0) return {};
  SUBDEX_CHECK(start < n);
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::vector<size_t> chosen = {start};
  // min_dist[i]: distance from i to the closest chosen element.
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    if (i != start) min_dist[i] = dist(i, start);
  }
  min_dist[start] = -1.0;  // never re-chosen
  while (chosen.size() < k) {
    size_t best = 0;
    double best_dist = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (min_dist[i] > best_dist) {
        best_dist = min_dist[i];
        best = i;
      }
    }
    chosen.push_back(best);
    min_dist[best] = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (min_dist[i] >= 0.0) {
        min_dist[i] = std::min(min_dist[i], dist(i, best));
      }
    }
  }
  // GMM (greedy max-min) must fill all k display slots: with k < n there
  // is always an unchosen element, and sentinels keep chosen elements from
  // being picked twice.
  SUBDEX_DCHECK_EQ(chosen.size(), k);
  return chosen;
}

double MinPairwiseDistance(const std::vector<size_t>& indices,
                           const DistanceFn& dist) {
  if (indices.size() < 2) return 1e300;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = i + 1; j < indices.size(); ++j) {
      best = std::min(best, dist(indices[i], indices[j]));
    }
  }
  return best;
}

namespace {
void BruteForceRec(size_t n, size_t k, size_t next, const DistanceFn& dist,
                   std::vector<size_t>* current, std::vector<size_t>* best,
                   double* best_score) {
  if (current->size() == k) {
    double score = MinPairwiseDistance(*current, dist);
    if (score > *best_score) {
      *best_score = score;
      *best = *current;
    }
    return;
  }
  if (n - next < k - current->size()) return;
  for (size_t i = next; i < n; ++i) {
    current->push_back(i);
    BruteForceRec(n, k, i + 1, dist, current, best, best_score);
    current->pop_back();
  }
}
}  // namespace

std::vector<size_t> BruteForceMaxMinSelect(size_t n, size_t k,
                                           const DistanceFn& dist) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::vector<size_t> current;
  std::vector<size_t> best;
  double best_score = -1.0;
  BruteForceRec(n, k, 0, dist, &current, &best, &best_score);
  return best;
}

}  // namespace subdex
