#ifndef SUBDEX_CORE_RATING_MAP_H_
#define SUBDEX_CORE_RATING_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/rating_distribution.h"
#include "subjective/rating_group.h"
#include "util/status.h"

namespace subdex {

/// Identity of a candidate rating map for a given rating group: which
/// attribute partitions the group (GroupBy) and which rating dimension is
/// aggregated. W.l.o.g. (as in the paper) maps group by a single reviewer or
/// item attribute.
struct RatingMapKey {
  Side side = Side::kReviewer;
  size_t attribute = 0;
  size_t dimension = 0;

  friend bool operator==(const RatingMapKey&, const RatingMapKey&) = default;

  SUBDEX_NODISCARD std::string ToString(const SubjectiveDatabase& db) const;
};

struct RatingMapKeyHash {
  size_t operator()(const RatingMapKey& k) const {
    size_t h = k.side == Side::kReviewer ? 0x9e3779b9u : 0x85ebca6bu;
    h = h * 1315423911u + k.attribute;
    h = h * 1315423911u + k.dimension;
    return h;
  }
};

/// One (subgroup, rating distribution) pair of a rating map (Definition 2).
struct Subgroup {
  ValueCode value = kNullCode;  // kNullCode = records without a value
  RatingDistribution dist;

  SUBDEX_NODISCARD uint64_t count() const { return dist.total(); }
  SUBDEX_NODISCARD double average() const { return dist.Mean(); }
};

/// A rating map (Definition 2): the partition of a rating group by one
/// attribute, each part carrying its rating distribution for one dimension,
/// plus the group-level distribution. Subgroups are ordered by descending
/// average score, matching the paper's presentation (Figure 3).
///
/// For multi-valued grouping attributes (e.g. cuisine) a record contributes
/// to every subgroup it belongs to; the overall distribution still counts
/// each record once.
class RatingMap {
 public:
  RatingMap() = default;
  RatingMap(RatingMapKey key, std::vector<Subgroup> subgroups,
            RatingDistribution overall);

  /// Builds the complete rating map of `group` for `key`.
  static RatingMap Build(const RatingGroup& group, const RatingMapKey& key);

  SUBDEX_NODISCARD const RatingMapKey& key() const { return key_; }
  SUBDEX_NODISCARD
  const std::vector<Subgroup>& subgroups() const { return subgroups_; }
  SUBDEX_NODISCARD size_t num_subgroups() const { return subgroups_.size(); }
  SUBDEX_NODISCARD
  const RatingDistribution& overall() const { return overall_; }
  /// Number of records aggregated (|g_R| restricted to processed data).
  SUBDEX_NODISCARD uint64_t group_size() const { return overall_.total(); }

  /// Size of the full rating group this map summarizes. Equals
  /// group_size() for completely built maps; snapshots taken mid-way
  /// through phased execution carry the full size so size-dependent
  /// measures (conciseness) estimate the final value instead of the
  /// prefix's.
  SUBDEX_NODISCARD uint64_t full_group_size() const {
    return full_group_size_ > 0 ? full_group_size_ : overall_.total();
  }
  void set_full_group_size(uint64_t n) { full_group_size_ = n; }

  /// Multi-line display form mirroring Figure 3.
  SUBDEX_NODISCARD std::string ToString(const SubjectiveDatabase& db) const;

 private:
  RatingMapKey key_;
  std::vector<Subgroup> subgroups_;
  RatingDistribution overall_;
  uint64_t full_group_size_ = 0;
};

/// Incremental builder used by the phased execution framework: feed it
/// slices of a rating group's records across phases and snapshot/finalize a
/// RatingMap from whatever has been processed so far.
class RatingMapAccumulator {
 public:
  RatingMapAccumulator(const RatingGroup* group, RatingMapKey key);

  /// Processes records [begin, end) of the group's record list.
  void Update(size_t begin, size_t end);

  /// Number of group records processed so far.
  SUBDEX_NODISCARD size_t processed() const { return processed_; }

  SUBDEX_NODISCARD const RatingMapKey& key() const { return key_; }

  /// Rating map over the records processed so far.
  SUBDEX_NODISCARD RatingMap Snapshot() const;

 private:
  const RatingGroup* group_;
  RatingMapKey key_;
  std::unordered_map<ValueCode, RatingDistribution> partitions_;
  RatingDistribution overall_;
  size_t processed_ = 0;
};

/// Enumerates all candidate rating map keys for a group with selection
/// `selection`: every (multi-)categorical attribute of both tables crossed
/// with every rating dimension. Attributes pinned to a single value by the
/// selection are skipped — grouping by them yields one subgroup and carries
/// no information.
std::vector<RatingMapKey> AllRatingMapKeys(const SubjectiveDatabase& db,
                                           const GroupSelection& selection);

}  // namespace subdex

#endif  // SUBDEX_CORE_RATING_MAP_H_
