#include "core/rating_map.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace subdex {

std::string RatingMapKey::ToString(const SubjectiveDatabase& db) const {
  return "GroupBy " + std::string(SideName(side)) + "." +
         db.table(side).schema().attribute(attribute).name +
         ", aggregated by " + db.dimension_name(dimension);
}

RatingMap::RatingMap(RatingMapKey key, std::vector<Subgroup> subgroups,
                     RatingDistribution overall)
    : key_(key), subgroups_(std::move(subgroups)), overall_(std::move(overall)) {
  std::sort(subgroups_.begin(), subgroups_.end(),
            [](const Subgroup& a, const Subgroup& b) {
              if (a.average() != b.average()) return a.average() > b.average();
              return a.value < b.value;
            });
}

RatingMap RatingMap::Build(const RatingGroup& group, const RatingMapKey& key) {
  RatingMapAccumulator acc(&group, key);
  acc.Update(0, group.size());
  return acc.Snapshot();
}

std::string RatingMap::ToString(const SubjectiveDatabase& db) const {
  const Table& table = db.table(key_.side);
  std::string out = key_.ToString(db) + "\n";
  for (const Subgroup& sg : subgroups_) {
    std::string name = sg.value == kNullCode
                           ? "unspecified"
                           : table.dictionary(key_.attribute).ValueOf(sg.value);
    out += "  " + name + ": n=" + std::to_string(sg.count()) + " " +
           sg.dist.ToString() + " avg=" + FormatDouble(sg.average(), 2) + "\n";
  }
  return out;
}

RatingMapAccumulator::RatingMapAccumulator(const RatingGroup* group,
                                           RatingMapKey key)
    : group_(group),
      key_(key),
      overall_(group->db().scale()) {
  SUBDEX_CHECK(group_ != nullptr);
  SUBDEX_CHECK(key_.dimension < group_->db().num_dimensions());
  const Table& table = group_->db().table(key_.side);
  SUBDEX_CHECK(key_.attribute < table.num_attributes());
  SUBDEX_CHECK(table.schema().attribute(key_.attribute).type !=
               AttributeType::kNumeric);
}

void RatingMapAccumulator::Update(size_t begin, size_t end) {
  SUBDEX_CHECK(begin <= end && end <= group_->size());
  const SubjectiveDatabase& db = group_->db();
  const Table& table = db.table(key_.side);
  AttributeType type = table.schema().attribute(key_.attribute).type;
  int scale = db.scale();
  auto& parts = partitions_;
  auto bucket = [&](ValueCode code) -> RatingDistribution& {
    auto it = parts.find(code);
    if (it == parts.end()) {
      it = parts.emplace(code, RatingDistribution(scale)).first;
    }
    return it->second;
  };

  for (size_t i = begin; i < end; ++i) {
    RecordId rec = group_->records()[i];
    RowId row = key_.side == Side::kReviewer ? db.reviewer_of(rec)
                                             : db.item_of(rec);
    int score = db.score(key_.dimension, rec);
    overall_.Add(score);
    if (type == AttributeType::kCategorical) {
      bucket(table.CodeAt(key_.attribute, row)).Add(score);
    } else {
      const auto& codes = table.MultiCodesAt(key_.attribute, row);
      if (codes.empty()) {
        bucket(kNullCode).Add(score);
      } else {
        for (ValueCode c : codes) bucket(c).Add(score);
      }
    }
  }
  processed_ += end - begin;
}

RatingMap RatingMapAccumulator::Snapshot() const {
  std::vector<Subgroup> subgroups;
  subgroups.reserve(partitions_.size());
  for (const auto& [code, dist] : partitions_) {
    subgroups.push_back({code, dist});
  }
  RatingMap map(key_, std::move(subgroups), overall_);
  map.set_full_group_size(group_->size());
  return map;
}

std::vector<RatingMapKey> AllRatingMapKeys(const SubjectiveDatabase& db,
                                           const GroupSelection& selection) {
  std::vector<RatingMapKey> keys;
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& table = db.table(side);
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      if (table.schema().attribute(a).type == AttributeType::kNumeric) {
        continue;
      }
      if (selection.pred(side).ConstrainsAttribute(a)) continue;
      for (size_t d = 0; d < db.num_dimensions(); ++d) {
        keys.push_back({side, a, d});
      }
    }
  }
  return keys;
}

}  // namespace subdex
