#include "core/interestingness.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subdex {

double InterestingnessScores::Get(size_t criterion) const {
  switch (criterion) {
    case 0:
      return conciseness;
    case 1:
      return agreement;
    case 2:
      return self_peculiarity;
    case 3:
      return global_peculiarity;
  }
  SUBDEX_CHECK_MSG(false, "criterion index out of range");
  return 0.0;
}

const char* UtilityCriterionName(UtilityCriterion c) {
  switch (c) {
    case UtilityCriterion::kConciseness:
      return "conciseness";
    case UtilityCriterion::kAgreement:
      return "agreement";
    case UtilityCriterion::kSelfPeculiarity:
      return "self-peculiarity";
    case UtilityCriterion::kGlobalPeculiarity:
      return "global-peculiarity";
  }
  return "unknown";
}

double RawConciseness(const RatingMap& map) {
  if (map.num_subgroups() == 0) return 0.0;
  return static_cast<double>(map.group_size()) /
         static_cast<double>(map.num_subgroups());
}

double Conciseness(const RatingMap& map, const UtilityConfig& config) {
  SUBDEX_CHECK(config.conciseness_softener > 0.0);
  if (map.num_subgroups() == 0) return 0.0;
  // The compaction gain |g_R|/|rm| [15] splits into coverage * 1/|rm| when
  // normalized by the database size. We squash each factor separately:
  //   subgroup factor  C / (C + |rm|)       — few human-readable bars,
  //   coverage factor  (|g_R| / |DB|)^beta  — summarizes many records.
  // Normalizing the raw gain directly would saturate toward 1 on any large
  // group, letting conciseness mask every other criterion under the max
  // aggregation; this form tops out around 0.85 and decays smoothly for
  // small groups, so peculiar maps can win and trivial few-record groups
  // cannot.
  double c = config.conciseness_softener;
  double score = c / (c + static_cast<double>(map.num_subgroups()));
  if (config.database_size > 0) {
    double coverage = std::min(
        1.0, static_cast<double>(map.full_group_size()) /
                 static_cast<double>(config.database_size));
    score *= std::pow(coverage, config.conciseness_coverage_exponent);
  }
  return score;
}

double Agreement(const RatingMap& map, const UtilityConfig& config) {
  if (map.num_subgroups() == 0) return 0.0;
  // Count-weighted dispersion, regularized: the prior contributes
  // `agreement_prior_strength` pseudo-records at a typical dispersion of
  // 0.3 * (scale - 1) (1.2 on a 5-point scale), so a 2-record unanimous
  // subgroup is weak evidence of agreement while a 200-record one is
  // strong.
  double prior_sigma = 0.3 * static_cast<double>(map.overall().scale() - 1);
  double lambda = config.agreement_prior_strength;
  double weighted_var = lambda * prior_sigma * prior_sigma;
  double total = lambda;
  for (const Subgroup& sg : map.subgroups()) {
    double sd = sg.dist.StdDev();
    weighted_var += static_cast<double>(sg.count()) * sd * sd;
    total += static_cast<double>(sg.count());
  }
  double sigma_bar = std::sqrt(weighted_var / total);
  return 1.0 / (1.0 + sigma_bar);
}

double SmoothedTotalVariation(const RatingDistribution& a,
                              const RatingDistribution& b, double smoothing) {
  SUBDEX_CHECK(a.scale() == b.scale());
  int m = a.scale();
  double pseudo = smoothing / static_cast<double>(m);
  double a_total = static_cast<double>(a.total()) + smoothing;
  double b_total = static_cast<double>(b.total()) + smoothing;
  double sum = 0.0;
  for (int s = 1; s <= m; ++s) {
    double pa = (static_cast<double>(a.count(s)) + pseudo) / a_total;
    double pb = (static_cast<double>(b.count(s)) + pseudo) / b_total;
    sum += std::fabs(pa - pb);
  }
  return 0.5 * sum;
}

namespace {

// Distribution distance per the configured peculiarity measure, in [0, 1].
double PeculiarityDistance(const RatingDistribution& a,
                           const RatingDistribution& b, double smoothing,
                           const UtilityConfig& config) {
  switch (config.peculiarity_measure) {
    case PeculiarityMeasure::kTotalVariation:
      return SmoothedTotalVariation(a, b, smoothing);
    case PeculiarityMeasure::kKlDivergence: {
      // KlDivergence already applies add-one smoothing; squash the
      // unbounded divergence into [0, 1). Low-count histograms are damped
      // by mixing toward the reference proportionally to the smoothing
      // mass, mirroring SmoothedTotalVariation's reliability behavior.
      double kl = a.KlDivergence(b);
      double damp = static_cast<double>(a.total()) /
                    (static_cast<double>(a.total()) + smoothing);
      return (1.0 - std::exp(-kl)) * damp;
    }
  }
  return 0.0;
}

}  // namespace

double SelfPeculiarity(const RatingMap& map, const UtilityConfig& config) {
  double best = 0.0;
  for (const Subgroup& sg : map.subgroups()) {
    best = std::max(best,
                    PeculiarityDistance(sg.dist, map.overall(),
                                        config.peculiarity_smoothing, config));
  }
  return best;
}

double GlobalPeculiarity(const RatingMap& map,
                         const std::vector<RatingDistribution>& seen,
                         const UtilityConfig& config) {
  double smoothing = config.peculiarity_smoothing;
  if (config.database_size > 0) {
    smoothing = std::max(
        smoothing, config.global_peculiarity_smoothing_fraction *
                       static_cast<double>(config.database_size));
  }
  double best = 0.0;
  for (const RatingDistribution& ref : seen) {
    best = std::max(
        best, PeculiarityDistance(map.overall(), ref, smoothing, config));
  }
  return best;
}

InterestingnessScores ComputeScores(const RatingMap& map,
                                    const std::vector<RatingDistribution>& seen,
                                    const UtilityConfig& config) {
  InterestingnessScores s;
  s.conciseness = Conciseness(map, config);
  s.agreement = Agreement(map, config);
  s.self_peculiarity = SelfPeculiarity(map, config);
  s.global_peculiarity = GlobalPeculiarity(map, seen, config);
  return s;
}

double Utility(const InterestingnessScores& scores,
               const UtilityConfig& config) {
  switch (config.aggregation) {
    case UtilityAggregation::kMax:
      return std::max({scores.conciseness, scores.agreement,
                       scores.self_peculiarity, scores.global_peculiarity});
    case UtilityAggregation::kAverage:
      return (scores.conciseness + scores.agreement + scores.self_peculiarity +
              scores.global_peculiarity) /
             4.0;
    case UtilityAggregation::kSingleCriterion:
      return scores.Get(static_cast<size_t>(config.single));
  }
  return 0.0;
}

}  // namespace subdex
