#include "core/rating_distribution.h"

#include <cmath>

#include "util/check.h"

namespace subdex {

RatingDistribution::RatingDistribution(int scale) {
  SUBDEX_CHECK(scale >= 2);
  counts_.assign(static_cast<size_t>(scale), 0);
}

void RatingDistribution::Add(int score) { AddCount(score, 1); }

void RatingDistribution::AddCount(int score, uint64_t n) {
  SUBDEX_CHECK(score >= 1 && score <= scale());
  counts_[static_cast<size_t>(score - 1)] += n;
  total_ += n;
}

void RatingDistribution::Merge(const RatingDistribution& other) {
  SUBDEX_CHECK(scale() == other.scale());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

uint64_t RatingDistribution::count(int score) const {
  SUBDEX_CHECK(score >= 1 && score <= scale());
  return counts_[static_cast<size_t>(score - 1)];
}

double RatingDistribution::Probability(int score) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(score)) / static_cast<double>(total_);
}

std::vector<double> RatingDistribution::Probabilities() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  double mass = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    mass += p[i];
  }
  // total_ is maintained as the sum of the per-score counts, so the
  // probability vector carries unit mass; every distance measure below
  // (TVD, KL, EMD) silently assumes this.
  SUBDEX_DCHECK_LE(std::fabs(mass - 1.0), 1e-9);
  return p;
}

double RatingDistribution::Mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(counts_[i]) * static_cast<double>(i + 1);
  }
  return sum / static_cast<double>(total_);
}

int RatingDistribution::Mode() const {
  if (total_ == 0) return 0;
  size_t best = 0;
  for (size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) best = i;
  }
  return static_cast<int>(best + 1);
}

double RatingDistribution::StdDev() const {
  if (total_ == 0) return 0.0;
  double mean = Mean();
  double sq = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double v = static_cast<double>(i + 1) - mean;
    sq += static_cast<double>(counts_[i]) * v * v;
  }
  return std::sqrt(sq / static_cast<double>(total_));
}

namespace {
// Probability view that falls back to uniform for empty histograms, so the
// distance measures stay total functions.
std::vector<double> ProbsOrUniform(const RatingDistribution& d) {
  std::vector<double> p = d.Probabilities();
  if (d.total() == 0) {
    double u = 1.0 / static_cast<double>(p.size());
    for (double& x : p) x = u;
  }
  return p;
}
}  // namespace

double RatingDistribution::TotalVariationDistance(
    const RatingDistribution& other) const {
  SUBDEX_CHECK(scale() == other.scale());
  std::vector<double> p = ProbsOrUniform(*this);
  std::vector<double> q = ProbsOrUniform(other);
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) sum += std::fabs(p[i] - q[i]);
  double tvd = 0.5 * sum;
  // TVD of two unit-mass distributions is a similarity score in [0, 1];
  // interestingness criteria clip against exactly this range.
  SUBDEX_DCHECK_GE(tvd, 0.0);
  SUBDEX_DCHECK_LE(tvd, 1.0 + 1e-9);
  return tvd;
}

double RatingDistribution::KlDivergence(const RatingDistribution& other) const {
  SUBDEX_CHECK(scale() == other.scale());
  // Add-one (Laplace) smoothing on counts keeps the divergence finite.
  double p_total = static_cast<double>(total_ + counts_.size());
  double q_total = static_cast<double>(other.total_ + other.counts_.size());
  double kl = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double p = static_cast<double>(counts_[i] + 1) / p_total;
    double q = static_cast<double>(other.counts_[i] + 1) / q_total;
    kl += p * std::log(p / q);
  }
  return kl;
}

double RatingDistribution::Emd(const RatingDistribution& other) const {
  SUBDEX_CHECK(scale() == other.scale());
  SUBDEX_CHECK(scale() >= 2);
  std::vector<double> p = ProbsOrUniform(*this);
  std::vector<double> q = ProbsOrUniform(other);
  double cdf_diff = 0.0;
  double work = 0.0;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    cdf_diff += p[i] - q[i];
    work += std::fabs(cdf_diff);
  }
  double emd = work / static_cast<double>(scale() - 1);
  // Earth mover's distance on the normalized 1-D scale is in [0, 1]: the
  // maximum is all mass travelling the full scale width.
  SUBDEX_DCHECK_GE(emd, 0.0);
  SUBDEX_DCHECK_LE(emd, 1.0 + 1e-9);
  return emd;
}

std::string RatingDistribution::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(i + 1) + ":" + std::to_string(counts_[i]);
  }
  out += "}";
  return out;
}

}  // namespace subdex
