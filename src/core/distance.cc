#include "core/distance.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace subdex {

double Emd1D(const std::vector<double>& p, const std::vector<double>& q) {
  SUBDEX_CHECK(p.size() == q.size());
  SUBDEX_CHECK(p.size() >= 2);
  auto normalize = [](const std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) {
      SUBDEX_CHECK(x >= 0.0);
      total += x;
    }
    std::vector<double> out(v.size());
    if (total <= 0.0) {
      double u = 1.0 / static_cast<double>(v.size());
      for (double& x : out) x = u;
    } else {
      for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] / total;
    }
    return out;
  };
  std::vector<double> pn = normalize(p);
  std::vector<double> qn = normalize(q);
  double cdf_diff = 0.0;
  double work = 0.0;
  for (size_t i = 0; i + 1 < pn.size(); ++i) {
    cdf_diff += pn[i] - qn[i];
    work += std::fabs(cdf_diff);
  }
  return work / static_cast<double>(p.size() - 1);
}

namespace {

// Places each record of the map at its subgroup's average score on an axis
// of `kBinsPerPoint` bins per scale point. Multi-valued groupings may count
// a record once per subgroup; the histogram is normalized, so only the
// relative structure matters.
constexpr int kBinsPerPoint = 4;

std::vector<double> SubgroupSignature(const RatingMap& map, int scale) {
  size_t bins = static_cast<size_t>((scale - 1) * kBinsPerPoint + 1);
  std::vector<double> sig(bins, 0.0);
  for (const Subgroup& sg : map.subgroups()) {
    if (sg.count() == 0) continue;
    double avg = sg.average();  // in [1, scale]
    double pos = (avg - 1.0) * kBinsPerPoint;
    size_t bin = static_cast<size_t>(std::lround(pos));
    bin = std::min(bin, bins - 1);
    sig[bin] += static_cast<double>(sg.count());
  }
  return sig;
}

}  // namespace

double RatingMapDistance(const RatingMap& a, const RatingMap& b,
                         MapDistanceKind kind) {
  int scale = a.overall().scale();
  SUBDEX_CHECK(scale == b.overall().scale());
  switch (kind) {
    case MapDistanceKind::kOverallEmd:
      return a.overall().Emd(b.overall());
    case MapDistanceKind::kSignatureEmd:
      return Emd1D(SubgroupSignature(a, scale), SubgroupSignature(b, scale));
  }
  return 0.0;
}

double SetDiversity(const std::vector<RatingMap>& maps, MapDistanceKind kind) {
  if (maps.size() < 2) return 0.0;
  double best = 1.0;
  for (size_t i = 0; i < maps.size(); ++i) {
    for (size_t j = i + 1; j < maps.size(); ++j) {
      best = std::min(best, RatingMapDistance(maps[i], maps[j], kind));
    }
  }
  return best;
}

}  // namespace subdex
