#ifndef SUBDEX_CORE_RATING_DISTRIBUTION_H_
#define SUBDEX_CORE_RATING_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace subdex {

/// Histogram of integer rating scores on the scale {1, ..., m}
/// (Definition 1). Counts are exact; probability views normalize lazily.
class RatingDistribution {
 public:
  RatingDistribution() = default;
  explicit RatingDistribution(int scale);

  SUBDEX_NODISCARD
  int scale() const { return static_cast<int>(counts_.size()); }

  /// Adds one score in [1, scale].
  void Add(int score);
  /// Adds `n` occurrences of `score`.
  void AddCount(int score, uint64_t n);
  /// Merges another histogram of the same scale.
  void Merge(const RatingDistribution& other);

  SUBDEX_NODISCARD uint64_t total() const { return total_; }
  SUBDEX_NODISCARD uint64_t count(int score) const;

  /// Probability of `score`; 0 for an empty distribution.
  SUBDEX_NODISCARD double Probability(int score) const;

  /// Probability vector [P(1), ..., P(m)] (all zeros if empty).
  SUBDEX_NODISCARD std::vector<double> Probabilities() const;

  /// Mean score (0 if empty).
  SUBDEX_NODISCARD double Mean() const;

  /// Most frequent score — the paper's alternative subgroup aggregation
  /// ("the highest probability for the rating dimension"). Ties resolve to
  /// the smaller score; 0 if empty.
  SUBDEX_NODISCARD int Mode() const;

  /// Population standard deviation of scores (0 if empty).
  SUBDEX_NODISCARD double StdDev() const;

  /// Total variation distance to `other`: (1/2) * sum |p_i - q_i|, in
  /// [0, 1]. Empty distributions are treated as uniform so the measure is
  /// total. Scales must match.
  SUBDEX_NODISCARD
  double TotalVariationDistance(const RatingDistribution& other) const;

  /// Kullback-Leibler divergence KL(this || other) with add-one smoothing,
  /// provided as the paper's alternative peculiarity measure.
  SUBDEX_NODISCARD double KlDivergence(const RatingDistribution& other) const;

  /// 1-D earth mover's distance to `other` on normalized probabilities:
  /// sum of |CDF differences| divided by (m - 1), so the result is in
  /// [0, 1]. Scales must match.
  SUBDEX_NODISCARD double Emd(const RatingDistribution& other) const;

  /// Display form, e.g. "{1:3,2:1,3:2,4:1,5:5}".
  SUBDEX_NODISCARD std::string ToString() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace subdex

#endif  // SUBDEX_CORE_RATING_DISTRIBUTION_H_
