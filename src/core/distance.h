#ifndef SUBDEX_CORE_DISTANCE_H_
#define SUBDEX_CORE_DISTANCE_H_

#include <vector>

#include "core/rating_map.h"

namespace subdex {

/// How the EMD-based distance between two rating maps is computed
/// (Section 3.2.4). Both variants are normalized to [0, 1].
enum class MapDistanceKind {
  /// EMD between the two maps' overall rating distributions. Cheap, but
  /// blind to the grouping structure: two maps of the same group and
  /// dimension under different GroupBy attributes compare as identical.
  kOverallEmd,
  /// EMD between the maps' subgroup signatures: each record is placed at
  /// its subgroup's average score on a fine-grained axis, and the 1-D EMD
  /// of the resulting histograms is taken. Maps whose groupings split the
  /// ratings differently are far apart even when the underlying record set
  /// coincides, which is what lets GMM surface different aggregation
  /// attributes (the paper's observation that EMD-based diversity exposes
  /// different data facets). This is the default.
  kSignatureEmd,
};

/// 1-D earth mover's distance between two non-negative weight vectors over
/// the same equally spaced axis, normalized by total mass and axis span so
/// the result is in [0, 1]. Zero vectors are treated as uniform.
double Emd1D(const std::vector<double>& p, const std::vector<double>& q);

/// Distance between two rating maps; symmetric, in [0, 1].
double RatingMapDistance(const RatingMap& a, const RatingMap& b,
                         MapDistanceKind kind = MapDistanceKind::kSignatureEmd);

/// Minimum pairwise distance of a set of maps — the diversity div(RM) of
/// Section 3.2.4. Returns 0 for fewer than 2 maps.
double SetDiversity(const std::vector<RatingMap>& maps,
                    MapDistanceKind kind = MapDistanceKind::kSignatureEmd);

}  // namespace subdex

#endif  // SUBDEX_CORE_DISTANCE_H_
