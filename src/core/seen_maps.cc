#include "core/seen_maps.h"

#include <cmath>

#include "util/check.h"

namespace subdex {

void SeenMapsTracker::Record(const RatingMap& map) {
  SUBDEX_CHECK(map.key().dimension < dimension_counts_.size());
  ++dimension_counts_[map.key().dimension];
  ++total_;
  seen_distributions_.push_back(map.overall());
}

size_t SeenMapsTracker::dimension_count(size_t d) const {
  SUBDEX_CHECK(d < dimension_counts_.size());
  return dimension_counts_[d];
}

std::vector<double> SeenMapsTracker::GetWeights() const {
  std::vector<double> w(dimension_counts_.size(), 0.0);
  if (total_ == 0) return w;
  double sum = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<double>(dimension_counts_[i]) /
           static_cast<double>(total_);
    sum += w[i];
  }
  // Algorithm 2 (getWeights): every displayed map contributes to exactly
  // one dimension count, so w is a normalized distribution over dimensions.
  SUBDEX_DCHECK_LE(std::fabs(sum - 1.0), 1e-9);
  return w;
}

double SeenMapsTracker::DimensionWeight(size_t d) const {
  SUBDEX_CHECK(d < dimension_counts_.size());
  if (total_ == 0) return 1.0;
  // With a single rating dimension there is nothing to balance — Eq. 1
  // would zero every utility after the first step.
  if (dimension_counts_.size() == 1) return 1.0;
  // Per-dimension counts can only come from Record(), which also bumps
  // total_; the DW multiplier of Eq. 1 therefore lands in [0, 1].
  SUBDEX_DCHECK_LE(dimension_counts_[d], total_);
  return 1.0 - static_cast<double>(dimension_counts_[d]) /
                   static_cast<double>(total_);
}

}  // namespace subdex
