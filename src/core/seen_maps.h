#ifndef SUBDEX_CORE_SEEN_MAPS_H_
#define SUBDEX_CORE_SEEN_MAPS_H_

#include <vector>

#include "core/interestingness.h"
#include "core/rating_map.h"
#include "util/status.h"

namespace subdex {

/// Exploration history: the rating maps the user has seen so far (RM in the
/// paper). Drives the two multi-step aspects of diversity — global
/// peculiarity (distance to previously displayed distributions) and the
/// dimension-weighted utility of Eq. 1 (rarely shown rating dimensions are
/// promoted).
class SeenMapsTracker {
 public:
  explicit SeenMapsTracker(size_t num_dimensions)
      : dimension_counts_(num_dimensions, 0) {}

  /// Records a displayed map.
  void Record(const RatingMap& map);

  /// Total number of displayed maps (m in the paper).
  SUBDEX_NODISCARD size_t total() const { return total_; }

  /// Times dimension `d` was displayed (m_{r_d}).
  SUBDEX_NODISCARD size_t dimension_count(size_t d) const;

  /// Algorithm 2 (getWeights): w[j] = m_{r_j} / m; all zeros when no map
  /// has been displayed.
  SUBDEX_NODISCARD std::vector<double> GetWeights() const;

  /// The DW multiplier (1 - m_{r_d}/m) of Eq. 1; 1.0 before anything has
  /// been displayed.
  SUBDEX_NODISCARD double DimensionWeight(size_t d) const;

  /// Overall distributions of displayed maps — the references for global
  /// peculiarity.
  SUBDEX_NODISCARD
  const std::vector<RatingDistribution>& seen_distributions() const {
    return seen_distributions_;
  }

  /// DW utility (Eq. 1) of `map` given its plain utility.
  SUBDEX_NODISCARD
  double DimensionWeightedUtility(const RatingMapKey& key,
                                  double utility) const {
    return DimensionWeight(key.dimension) * utility;
  }

 private:
  std::vector<size_t> dimension_counts_;
  size_t total_ = 0;
  std::vector<RatingDistribution> seen_distributions_;
};

}  // namespace subdex

#endif  // SUBDEX_CORE_SEEN_MAPS_H_
