#ifndef SUBDEX_CORE_INTERESTINGNESS_H_
#define SUBDEX_CORE_INTERESTINGNESS_H_

#include <vector>

#include "core/rating_map.h"
#include "util/status.h"

namespace subdex {

/// The four normalized interestingness criteria of Section 3.2.3 / 4.1.
/// All values lie in [0, 1] with fixed squashing functions, so that partial
/// estimates computed during phased execution are directly comparable to
/// final values and confidence intervals remain valid.
struct InterestingnessScores {
  double conciseness = 0.0;
  double agreement = 0.0;
  double self_peculiarity = 0.0;
  double global_peculiarity = 0.0;

  SUBDEX_NODISCARD double Get(size_t criterion) const;
  static constexpr size_t kNumCriteria = 4;
};

/// How the per-criterion scores combine into a utility (Section 5.2.3
/// studies these variants; the paper's default is the maximum).
enum class UtilityAggregation {
  kMax,
  kAverage,
  kSingleCriterion,
};

enum class UtilityCriterion {
  kConciseness = 0,
  kAgreement = 1,
  kSelfPeculiarity = 2,
  kGlobalPeculiarity = 3,
};

const char* UtilityCriterionName(UtilityCriterion c);

/// Distance underlying the peculiarity scores. The paper's default is the
/// total variation distance; Kullback-Leibler divergence is listed as the
/// alternative (Section 4.1).
enum class PeculiarityMeasure {
  kTotalVariation,
  kKlDivergence,
};

struct UtilityConfig {
  UtilityAggregation aggregation = UtilityAggregation::kMax;
  /// Used only when aggregation == kSingleCriterion.
  UtilityCriterion single = UtilityCriterion::kConciseness;
  /// Softener C of the conciseness normalization C / (C + |rm|): the
  /// subgroup-count factor reaches 0.5 at C subgroups. The default caps
  /// conciseness at 0.75 (a 2-subgroup map), giving the criterion the same
  /// dynamic range as the peculiarity scores — under the max aggregation a
  /// criterion that always scored higher would mask the others. See
  /// Conciseness() for the full normalization.
  double conciseness_softener = 6.0;
  /// Total number of rating records in the database, used to express the
  /// compaction gain relative to the dataset ("summarizes a large number
  /// of records"). 0 disables the coverage factor (standalone scoring of a
  /// single map). The SDE engine fills this in automatically.
  uint64_t database_size = 0;
  /// Exponent of the coverage factor (|g_R| / database_size)^beta. Small
  /// values keep moderate groups competitive while still ranking
  /// few-record groups clearly below database-scale ones.
  double conciseness_coverage_exponent = 0.15;
  /// Strength (pseudo-count) of the dispersion prior regularizing the
  /// agreement score. Tiny subgroups are trivially unanimous; blending the
  /// observed dispersion with a typical-dispersion prior of this weight
  /// keeps agreement a statement about evidence, not sample size.
  double agreement_prior_strength = 5.0;
  /// Pseudo-count mass of the Laplace smoothing applied to distributions
  /// before the total-variation peculiarity comparisons; prevents
  /// few-record subgroups from looking maximally peculiar.
  double peculiarity_smoothing = 4.0;
  /// Distribution distance used by both peculiarity scores. KL divergence
  /// is squashed into [0, 1] as 1 - exp(-KL) so the utility stays
  /// normalized.
  PeculiarityMeasure peculiarity_measure = PeculiarityMeasure::kTotalVariation;
  /// Global peculiarity compares a whole group against previously seen
  /// ones, so its smoothing additionally scales with the database: a group
  /// covering a sliver of the data can deviate arbitrarily by chance and
  /// should not read as a new facet. Effective smoothing =
  /// max(peculiarity_smoothing, fraction * database_size).
  double global_peculiarity_smoothing_fraction = 0.005;
};

/// Raw compaction gain |g_R| / |rm| (Chandola & Kumar): average number of
/// records summarized per subgroup. 0 for an empty map.
double RawConciseness(const RatingMap& map);

/// Normalized conciseness C / (C + |rm|), in (0, 1).
double Conciseness(const RatingMap& map, const UtilityConfig& config);

/// Agreement 1/(1 + sigma_bar) where sigma_bar is the count-weighted
/// average subgroup dispersion, regularized toward a typical-dispersion
/// prior (see UtilityConfig::agreement_prior_strength), in (0, 1]. High
/// when many reviewers inside each subgroup agree.
double Agreement(const RatingMap& map, const UtilityConfig& config);

/// Self peculiarity: the maximum smoothed total-variation distance between
/// a subgroup's distribution and the whole group's distribution, in [0, 1]
/// (following [51], the map's score is the max over subgroups).
double SelfPeculiarity(const RatingMap& map, const UtilityConfig& config);

/// Global peculiarity: the maximum smoothed total-variation distance
/// between the map's overall distribution and the distribution of each
/// previously displayed map. Defined as 0 when nothing has been displayed
/// yet, so the first step is driven by the other criteria.
double GlobalPeculiarity(const RatingMap& map,
                         const std::vector<RatingDistribution>& seen,
                         const UtilityConfig& config);

/// Total-variation distance between Laplace-smoothed views of two
/// histograms: each distribution receives `smoothing` pseudo-counts spread
/// uniformly over the scale, so distances between low-count histograms are
/// damped toward 0 while large histograms are effectively unsmoothed.
double SmoothedTotalVariation(const RatingDistribution& a,
                              const RatingDistribution& b, double smoothing);

/// All four criteria at once.
InterestingnessScores ComputeScores(const RatingMap& map,
                                    const std::vector<RatingDistribution>& seen,
                                    const UtilityConfig& config);

/// Aggregates the criteria into the utility u(rm, RM). The paper's default
/// is the maximum of the four.
double Utility(const InterestingnessScores& scores,
               const UtilityConfig& config);

}  // namespace subdex

#endif  // SUBDEX_CORE_INTERESTINGNESS_H_
