#include "storage/dictionary.h"

#include "util/check.h"

namespace subdex {

ValueCode Dictionary::Intern(const std::string& value) {
  auto it = codes_.find(value);
  if (it != codes_.end()) return it->second;
  ValueCode code = static_cast<ValueCode>(values_.size());
  values_.push_back(value);
  codes_.emplace(value, code);
  return code;
}

ValueCode Dictionary::Lookup(const std::string& value) const {
  auto it = codes_.find(value);
  if (it == codes_.end()) return kNullCode;
  return it->second;
}

const std::string& Dictionary::ValueOf(ValueCode code) const {
  SUBDEX_CHECK(code >= 0 && static_cast<size_t>(code) < values_.size());
  return values_[static_cast<size_t>(code)];
}

}  // namespace subdex
