#ifndef SUBDEX_STORAGE_TABLE_H_
#define SUBDEX_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "storage/dictionary.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace subdex {

/// Row identifier within a table.
using RowId = uint32_t;

/// An in-memory, dictionary-encoded columnar table. Categorical columns
/// store dense codes; multi-categorical columns store small code vectors
/// (e.g. a restaurant's cuisines); numeric columns store doubles (NaN for
/// null). This is the storage substrate for the reviewer and item relations
/// of a subjective database.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  SUBDEX_NODISCARD const Schema& schema() const { return schema_; }
  SUBDEX_NODISCARD size_t num_rows() const { return num_rows_; }
  SUBDEX_NODISCARD
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends one row; `cells` must have one Value per schema attribute with
  /// a type matching the attribute (or null).
  SUBDEX_MUST_USE_RESULT Status AppendRow(const std::vector<Value>& cells);

  /// Dictionary code of a categorical cell (kNullCode if null).
  SUBDEX_NODISCARD ValueCode CodeAt(size_t attr, RowId row) const;

  /// Codes of a multi-categorical cell (empty if null).
  SUBDEX_NODISCARD
  const std::vector<ValueCode>& MultiCodesAt(size_t attr, RowId row) const;

  /// Numeric cell (NaN if null).
  SUBDEX_NODISCARD double NumericAt(size_t attr, RowId row) const;

  /// True iff the row's cell for `attr` has (categorical) or contains
  /// (multi-categorical) the given code.
  SUBDEX_NODISCARD bool HasValue(size_t attr, RowId row, ValueCode code) const;

  /// The value dictionary of a (multi-)categorical attribute.
  SUBDEX_NODISCARD const Dictionary& dictionary(size_t attr) const;

  /// Number of distinct values observed for a (multi-)categorical attribute.
  SUBDEX_NODISCARD size_t DistinctValueCount(size_t attr) const;

  /// Renders a cell as a display string ("" for null; "a|b" for multi).
  SUBDEX_NODISCARD std::string CellToString(size_t attr, RowId row) const;

  /// Interns `value` into attr's dictionary (for building predicates whose
  /// values may not yet appear in the data).
  ValueCode InternValue(size_t attr, const std::string& value);

  /// Looks up `value` in attr's dictionary without inserting.
  SUBDEX_NODISCARD
  ValueCode LookupValue(size_t attr, const std::string& value) const;

 private:
  struct Column {
    AttributeType type = AttributeType::kCategorical;
    Dictionary dict;                             // (multi-)categorical
    std::vector<ValueCode> codes;                // categorical
    std::vector<std::vector<ValueCode>> multi;   // multi-categorical
    std::vector<double> numerics;                // numeric
  };

  SUBDEX_NODISCARD const Column& column(size_t attr) const;

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace subdex

#endif  // SUBDEX_STORAGE_TABLE_H_
