#ifndef SUBDEX_STORAGE_FRAMED_LOG_H_
#define SUBDEX_STORAGE_FRAMED_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace subdex {

/// An append-only log of CRC32C-framed, length-prefixed records in one
/// file (a "segment"). This is the on-disk substrate of the session
/// journal (server/session_journal.h); the framing is generic so other
/// durable logs can reuse it.
///
/// Segment layout (all integers little-endian):
///
///   [8-byte magic "SBDXLOG1"]
///   repeated:  [u32 payload_len] [u32 crc32c(payload)] [payload bytes]
///
/// The reader is torn-tail tolerant (DESIGN.md §13): a crash mid-append
/// leaves a partial header, a short payload, or a checksum-mismatched
/// final record — all three are reported as a torn tail to truncate, not
/// as corruption. A bad record *followed by valid bytes* cannot be a torn
/// append and is reported as corruption instead.

/// Upper bound on one record's payload; a length prefix above it is
/// treated as corruption (a torn header can otherwise masquerade as a
/// multi-gigabyte record and stall recovery on a read that never ends).
inline constexpr uint32_t kFramedLogMaxRecordBytes = 64u << 20;

/// Size of the segment header (the magic); a fresh segment's size(). A
/// segment holds records iff its size exceeds this.
inline constexpr uint64_t kFramedLogHeaderBytes = 8;

/// Appends framed records to one segment file through a raw POSIX fd —
/// no stdio buffering, so Sync() (fdatasync) really bounds data loss.
/// Not internally synchronized; the owning journal serializes access.
class FramedLogWriter {
 public:
  FramedLogWriter() = default;
  ~FramedLogWriter();

  FramedLogWriter(FramedLogWriter&& other) noexcept;
  FramedLogWriter& operator=(FramedLogWriter&& other) noexcept;
  FramedLogWriter(const FramedLogWriter&) = delete;
  FramedLogWriter& operator=(const FramedLogWriter&) = delete;

  /// Creates a fresh segment (O_EXCL: a name collision is a bug, not a
  /// file to clobber) and writes the magic header.
  SUBDEX_MUST_USE_RESULT static Result<FramedLogWriter> Create(
      const std::string& path);

  /// Re-opens an existing segment for appending, first truncating it to
  /// `valid_bytes` — the good-prefix length ReadFramedLog reported — so a
  /// torn tail is physically dropped before new records land after it.
  SUBDEX_MUST_USE_RESULT static Result<FramedLogWriter> OpenForAppend(
      const std::string& path, uint64_t valid_bytes);

  /// Appends one framed record. On failure (ENOSPC, EIO, ...) the segment
  /// may hold a torn record; the caller decides whether to keep writing
  /// (the reader tolerates exactly one torn tail, so it must not).
  SUBDEX_MUST_USE_RESULT Status Append(std::string_view payload);

  /// fdatasync: makes every appended record crash-durable.
  SUBDEX_MUST_USE_RESULT Status Sync();

  /// Bytes written to this segment (header included).
  SUBDEX_NODISCARD uint64_t size() const { return size_; }
  SUBDEX_NODISCARD bool is_open() const { return fd_ >= 0; }
  SUBDEX_NODISCARD const std::string& path() const { return path_; }

  void Close();

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

/// Everything ReadFramedLog recovered from one segment.
struct FramedLogContents {
  std::vector<std::string> records;
  /// True when trailing bytes after the last whole record were dropped (a
  /// crash mid-append); `valid_bytes` is where the good prefix ends, and
  /// is what OpenForAppend must truncate to before resuming.
  bool torn_tail = false;
  uint64_t valid_bytes = 0;
  /// Non-OK on an unreadable file, bad magic, or mid-file corruption (a
  /// bad record with valid data after it). A torn tail is NOT an error;
  /// `records` holds the good prefix either way.
  Status status = Status::Ok();
};

/// Reads a whole segment, applying the torn-tail rules above.
SUBDEX_NODISCARD FramedLogContents ReadFramedLog(const std::string& path);

}  // namespace subdex

#endif  // SUBDEX_STORAGE_FRAMED_LOG_H_
