#ifndef SUBDEX_STORAGE_SCHEMA_H_
#define SUBDEX_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace subdex {

/// A named, typed attribute.
struct AttributeDef {
  std::string name;
  AttributeType type = AttributeType::kCategorical;
};

/// Ordered attribute list with name lookup. Schemas are immutable once a
/// table starts ingesting rows.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  SUBDEX_NODISCARD size_t num_attributes() const { return attributes_.size(); }
  SUBDEX_NODISCARD const AttributeDef& attribute(size_t i) const;

  /// Index of the attribute named `name`, or -1 if absent.
  SUBDEX_NODISCARD int IndexOf(const std::string& name) const;
  SUBDEX_NODISCARD
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  SUBDEX_NODISCARD
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

 private:
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace subdex

#endif  // SUBDEX_STORAGE_SCHEMA_H_
