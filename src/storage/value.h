#ifndef SUBDEX_STORAGE_VALUE_H_
#define SUBDEX_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace subdex {

/// Attribute (column) kinds in a subjective database. Objective attributes
/// of items and reviewers are categorical (possibly multi-valued, e.g. a
/// restaurant's cuisines); numeric columns hold auxiliary quantities.
enum class AttributeType {
  kCategorical,
  kMultiCategorical,
  kNumeric,
};

/// Dictionary code for a categorical value. kNullCode marks missing values.
using ValueCode = int32_t;
inline constexpr ValueCode kNullCode = -1;

/// An untyped cell used at the ingestion boundary (CSV import, manual row
/// construction). Inside tables everything is dictionary/numeric encoded.
using Value = std::variant<std::monostate,            // null
                           std::string,               // categorical
                           std::vector<std::string>,  // multi-categorical
                           double>;                   // numeric

inline bool IsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

const char* AttributeTypeName(AttributeType type);

}  // namespace subdex

#endif  // SUBDEX_STORAGE_VALUE_H_
