#include "storage/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace subdex {

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ReadCsv(in, schema, path);
}

Result<Table> ReadCsv(std::istream& in, const Schema& schema,
                      const std::string& source) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + source + "' is empty");
  }
  std::vector<std::string> header = Split(Trim(line), ',');
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "'" + source + "': header has " + std::to_string(header.size()) +
        " columns, schema expects " +
        std::to_string(schema.num_attributes()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (std::string(Trim(header[i])) != schema.attribute(i).name) {
      return Status::InvalidArgument("'" + source + "': column " +
                                     std::to_string(i) + " is '" + header[i] +
                                     "', expected '" +
                                     schema.attribute(i).name + "'");
    }
  }
  Table table(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "'" + source + "' line " + std::to_string(line_no) + ": got " +
          std::to_string(fields.size()) + " fields");
    }
    std::vector<Value> cells;
    cells.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      std::string field(Trim(fields[i]));
      if (field.empty()) {
        cells.emplace_back(std::monostate{});
        continue;
      }
      switch (schema.attribute(i).type) {
        case AttributeType::kCategorical:
          cells.emplace_back(std::move(field));
          break;
        case AttributeType::kMultiCategorical:
          cells.emplace_back(Split(field, '|'));
          break;
        case AttributeType::kNumeric: {
          double v = 0.0;
          if (!ParseDouble(field, &v)) {
            return Status::InvalidArgument(
                "'" + source + "' line " + std::to_string(line_no) +
                ": bad numeric '" + field + "'");
          }
          cells.emplace_back(v);
          break;
        }
      }
    }
    Status st = table.AppendRow(cells);
    if (!st.ok()) return st;
  }
  return table;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out << ',';
    out << schema.attribute(i).name;
  }
  out << '\n';
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      if (i > 0) out << ',';
      out << table.CellToString(i, r);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace subdex
