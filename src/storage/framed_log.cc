#include "storage/framed_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32c.h"

namespace subdex {

namespace {

constexpr char kMagic[8] = {'S', 'B', 'D', 'X', 'L', 'O', 'G', '1'};
constexpr size_t kMagicBytes = sizeof(kMagic);
static_assert(kMagicBytes == kFramedLogHeaderBytes,
              "header constant out of sync with the magic");
constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

FramedLogWriter::~FramedLogWriter() { Close(); }

FramedLogWriter::FramedLogWriter(FramedLogWriter&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

FramedLogWriter& FramedLogWriter::operator=(
    FramedLogWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

void FramedLogWriter::Close() {
  if (fd_ >= 0) {
    // Discard justified: Close is the non-reporting path (destructor,
    // move-assign); callers that need durability call Sync() first.
    (void)::close(fd_);
    fd_ = -1;
  }
}

Result<FramedLogWriter> FramedLogWriter::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("create", path);
  FramedLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  Status status =
      WriteAll(fd, std::string_view(kMagic, kMagicBytes), path);
  if (!status.ok()) {
    writer.Close();
    // A header-less file would read as corrupt, not empty; remove it so
    // the failed create leaves no trace.
    // Discard justified: best-effort cleanup after the reported failure.
    (void)::unlink(path.c_str());
    return status;
  }
  writer.size_ = kMagicBytes;
  return writer;
}

Result<FramedLogWriter> FramedLogWriter::OpenForAppend(
    const std::string& path, uint64_t valid_bytes) {
  if (valid_bytes < kMagicBytes) {
    return Status::InvalidArgument(
        "valid_bytes shorter than the segment header: '" + path + "'");
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  FramedLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  // Drop the torn tail (if any) before the first new append: the reader
  // tolerates one torn tail only at the very end of the newest segment.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    Status status = Errno("truncate", path);
    writer.Close();
    return status;
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    Status status = Errno("seek", path);
    writer.Close();
    return status;
  }
  writer.size_ = valid_bytes;
  return writer;
}

Status FramedLogWriter::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("framed log is closed");
  if (payload.size() > kFramedLogMaxRecordBytes) {
    return Status::InvalidArgument(
        "record of " + std::to_string(payload.size()) +
        " bytes exceeds the framed-log cap");
  }
  // One buffer, one write: the common case lands the whole frame in a
  // single syscall, so a crash tears at most the final record.
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.append(payload);
  Status status = WriteAll(fd_, frame, path_);
  if (!status.ok()) return status;
  size_ += frame.size();
  return Status::Ok();
}

Status FramedLogWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("framed log is closed");
  if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
  return Status::Ok();
}

FramedLogContents ReadFramedLog(const std::string& path) {
  FramedLogContents out;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    out.status = Errno("open", path);
    return out;
  }
  std::string data;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      out.status = Errno("read", path);
      // Discard justified: the read error is already being reported.
      (void)::close(fd);
      return out;
    }
    if (n == 0) break;
    data.append(chunk, static_cast<size_t>(n));
  }
  // Discard justified: read-only descriptor; close cannot lose data.
  (void)::close(fd);

  if (data.size() < kMagicBytes ||
      std::memcmp(data.data(), kMagic, kMagicBytes) != 0) {
    out.status =
        Status::IoError("bad framed-log magic (not a segment): '" + path +
                        "'");
    return out;
  }

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  size_t pos = kMagicBytes;
  out.valid_bytes = pos;
  while (pos < data.size()) {
    // Torn-tail rules: a partial header, a payload running past EOF, or a
    // checksum mismatch on the *last* record are the signatures of a
    // crash mid-append — drop them and report the good prefix. The same
    // defects mid-file (valid data after the bad record) cannot be a torn
    // append and mean real corruption.
    if (data.size() - pos < kFrameHeaderBytes) {
      out.torn_tail = true;
      return out;
    }
    uint32_t len = GetU32(bytes + pos);
    uint32_t crc = GetU32(bytes + pos + 4);
    if (len > kFramedLogMaxRecordBytes) {
      // An absurd length prefix is indistinguishable from garbage; treat
      // it as a torn tail only when nothing follows that could have been
      // meant as data (i.e. it *is* the tail).
      out.torn_tail = true;
      return out;
    }
    if (data.size() - pos - kFrameHeaderBytes < len) {
      out.torn_tail = true;
      return out;
    }
    std::string_view payload(data.data() + pos + kFrameHeaderBytes, len);
    if (Crc32c(payload) != crc) {
      if (pos + kFrameHeaderBytes + len == data.size()) {
        out.torn_tail = true;  // checksum-torn final record
        return out;
      }
      out.status = Status::IoError(
          "framed-log corruption at byte " + std::to_string(pos) +
          " of '" + path + "' (bad record followed by more data)");
      return out;
    }
    out.records.emplace_back(payload);
    pos += kFrameHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace subdex
