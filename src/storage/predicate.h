#ifndef SUBDEX_STORAGE_PREDICATE_H_
#define SUBDEX_STORAGE_PREDICATE_H_

#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace subdex {

/// One attribute-value conjunct, e.g. <city, NYC>.
struct AttributeValue {
  size_t attribute = 0;
  ValueCode code = kNullCode;

  friend bool operator==(const AttributeValue&,
                         const AttributeValue&) = default;
};

/// A conjunction of attribute-value pairs over a single table — the group
/// descriptions of the paper (Section 3.1): a reviewer/item group is the set
/// of rows sharing all listed values. An empty predicate matches every row.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<AttributeValue> conjuncts);

  /// Builds a predicate from (attribute name, value string) pairs, interning
  /// values as needed. Fails if an attribute is unknown or numeric.
  SUBDEX_MUST_USE_RESULT static Result<Predicate> FromPairs(
      Table* table,
      const std::vector<std::pair<std::string, std::string>>& pairs);

  SUBDEX_NODISCARD bool Matches(const Table& table, RowId row) const;

  /// Row ids of all matching rows.
  SUBDEX_NODISCARD std::vector<RowId> Select(const Table& table) const;

  /// Matching subset of `candidates`.
  SUBDEX_NODISCARD
  std::vector<RowId> SelectFrom(const Table& table,
                                const std::vector<RowId>& candidates) const;

  SUBDEX_NODISCARD
  const std::vector<AttributeValue>& conjuncts() const { return conjuncts_; }
  SUBDEX_NODISCARD size_t size() const { return conjuncts_.size(); }
  SUBDEX_NODISCARD bool empty() const { return conjuncts_.empty(); }

  /// True iff an (attribute, code) conjunct on `attribute` exists.
  SUBDEX_NODISCARD bool ConstrainsAttribute(size_t attribute) const;

  /// Returns a copy with `av` added (replacing any conjunct on the same
  /// attribute).
  SUBDEX_NODISCARD Predicate With(const AttributeValue& av) const;

  /// Returns a copy with the conjunct on `attribute` removed (no-op if not
  /// present).
  SUBDEX_NODISCARD Predicate Without(size_t attribute) const;

  /// True iff every conjunct of `other` appears in this predicate.
  SUBDEX_NODISCARD bool Contains(const Predicate& other) const;

  /// Display form, e.g. "<city=NYC>, <gender=F>".
  SUBDEX_NODISCARD std::string ToString(const Table& table) const;

  friend bool operator==(const Predicate&, const Predicate&) = default;

 private:
  // Kept sorted by attribute index; at most one conjunct per attribute.
  std::vector<AttributeValue> conjuncts_;
};

}  // namespace subdex

#endif  // SUBDEX_STORAGE_PREDICATE_H_
