#ifndef SUBDEX_STORAGE_QUERY_PARSER_H_
#define SUBDEX_STORAGE_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "storage/predicate.h"
#include "util/status.h"

namespace subdex {

/// Parser for the SQL-style selection predicates of the demo UI's advanced
/// screen (Section 4, "System UI"): a conjunction of equality conditions,
///
///   attribute = value [AND attribute = value ...]
///
/// Values may be bare words (letters, digits, '_', '-', '$', '.') or quoted
/// with single/double quotes; attribute names are schema attributes of
/// `table`. `AND` is case-insensitive; whitespace is free. The empty string
/// parses to the match-all predicate.
///
/// Errors (unknown attribute, numeric attribute, syntax) come back as
/// Status with a position-annotated message. Values not present in the
/// data are interned, producing a predicate that matches nothing — the
/// same behavior as typing a value that does not occur.
SUBDEX_MUST_USE_RESULT
Result<Predicate> ParsePredicate(Table* table, std::string_view query);

/// Read-only variant for concurrent serving: same grammar, but never
/// mutates `table`. Where ParsePredicate interns a value absent from the
/// data (producing a predicate that matches nothing), this returns
/// kNotFound naming the attribute and value — a Predicate cannot represent
/// a never-seen value without interning it, and interning is a write into
/// dictionaries that concurrent readers (subdexd sessions sharing one
/// dataset) may be scanning.
SUBDEX_MUST_USE_RESULT
Result<Predicate> ParsePredicateReadOnly(const Table& table,
                                         std::string_view query);

/// Renders a predicate back into parsable query text (inverse of
/// ParsePredicate up to whitespace and quoting). Values needing quotes are
/// wrapped in whichever quote character they do not contain; a value
/// containing both `'` and `"` has no representation in the grammar (the
/// parser can never produce one, but interned CSV data can), and the
/// rendered query for it will not re-parse to the same predicate.
std::string PredicateToQuery(const Table& table, const Predicate& predicate);

}  // namespace subdex

#endif  // SUBDEX_STORAGE_QUERY_PARSER_H_
