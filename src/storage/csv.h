#ifndef SUBDEX_STORAGE_CSV_H_
#define SUBDEX_STORAGE_CSV_H_

#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace subdex {

/// Loads a table from a CSV file whose header must match `schema`'s
/// attribute names (in order). Multi-categorical cells use '|' as the value
/// separator; empty cells are null. No quoting support — the synthetic
/// exporters never emit separators inside values.
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

/// Writes `table` as CSV (same conventions as ReadCsv).
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace subdex

#endif  // SUBDEX_STORAGE_CSV_H_
