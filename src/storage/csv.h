#ifndef SUBDEX_STORAGE_CSV_H_
#define SUBDEX_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace subdex {

/// Loads a table from a CSV file whose header must match `schema`'s
/// attribute names (in order). Multi-categorical cells use '|' as the value
/// separator; empty cells are null. No quoting support — the synthetic
/// exporters never emit separators inside values.
SUBDEX_MUST_USE_RESULT
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

/// Stream variant of ReadCsv: parses CSV from `in`; `source` labels error
/// messages. Never aborts on malformed input — every parse failure maps to
/// a Status, which makes this the fuzzing entry point.
SUBDEX_MUST_USE_RESULT
Result<Table> ReadCsv(std::istream& in, const Schema& schema,
                      const std::string& source);

/// Writes `table` as CSV (same conventions as ReadCsv).
SUBDEX_MUST_USE_RESULT
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace subdex

#endif  // SUBDEX_STORAGE_CSV_H_
