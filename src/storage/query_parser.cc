#include "storage/query_parser.h"

#include <cctype>

#include "util/string_util.h"

namespace subdex {

namespace {

// The bare-word alphabet: a value made of anything else must be quoted.
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '$' || c == '.' || c == '&' || c == '+';
}

// Minimal recursive-descent tokenizer state over the query string.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  size_t position() const { return pos_; }

  /// True iff the next token is the (case-insensitive) keyword; consumes it.
  bool ConsumeKeyword(std::string_view keyword) {
    SkipSpace();
    if (text_.size() - pos_ < keyword.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      char a = static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_ + i])));
      char b = static_cast<char>(
          std::tolower(static_cast<unsigned char>(keyword[i])));
      if (a != b) return false;
    }
    // Keyword must end at a word boundary.
    size_t end = pos_ + keyword.size();
    if (end < text_.size() && IsWordChar(text_[end])) return false;
    pos_ = end;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Bare word or quoted string; empty return means no token.
  Result<std::string> ReadValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(Expected("a value"));
    }
    char quote = text_[pos_];
    if (quote == '\'' || quote == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        out.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument(Expected("closing quote"));
      }
      ++pos_;  // closing quote
      return out;
    }
    std::string out;
    while (pos_ < text_.size() && IsWordChar(text_[pos_])) {
      out.push_back(text_[pos_++]);
    }
    if (out.empty()) {
      return Status::InvalidArgument(Expected("a value"));
    }
    return out;
  }

  Result<std::string> ReadIdentifier() {
    SkipSpace();
    std::string out;
    while (pos_ < text_.size() && IsWordChar(text_[pos_])) {
      out.push_back(text_[pos_++]);
    }
    if (out.empty()) {
      return Status::InvalidArgument(Expected("an attribute name"));
    }
    return out;
  }

  std::string Expected(std::string_view what) const {
    return "expected " + std::string(what) + " at position " +
           std::to_string(pos_) + " of query";
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    // Quote anything outside the bare-word alphabet, not just whitespace:
    // the round-trip fuzzer found values like "it)s" rendering unquoted and
    // then failing to re-parse at the ')'.
    if (!IsWordChar(c)) return true;
  }
  return false;
}

// Shared front half of both parse entry points: tokenize the query into
// (attribute, value) string pairs and report duplicate attributes.
Result<std::vector<std::pair<std::string, std::string>>> ParsePairs(
    std::string_view query) {
  Cursor cursor(query);
  std::vector<std::pair<std::string, std::string>> pairs;
  if (cursor.AtEnd()) return pairs;
  for (;;) {
    Result<std::string> attr = cursor.ReadIdentifier();
    if (!attr.ok()) return attr.status();
    if (!cursor.ConsumeChar('=')) {
      return Status::InvalidArgument(cursor.Expected("'='"));
    }
    Result<std::string> value = cursor.ReadValue();
    if (!value.ok()) return value.status();
    pairs.emplace_back(std::move(attr).value(), std::move(value).value());
    if (cursor.AtEnd()) break;
    if (!cursor.ConsumeKeyword("AND")) {
      return Status::InvalidArgument(cursor.Expected("'AND' or end of query"));
    }
    if (cursor.AtEnd()) {
      return Status::InvalidArgument(cursor.Expected("a condition after AND"));
    }
  }
  // Duplicate attributes are a user error worth reporting explicitly
  // (Predicate would abort on them).
  for (size_t i = 0; i < pairs.size(); ++i) {
    for (size_t j = i + 1; j < pairs.size(); ++j) {
      if (pairs[i].first == pairs[j].first) {
        return Status::InvalidArgument("attribute '" + pairs[i].first +
                                       "' appears twice in query");
      }
    }
  }
  return pairs;
}

}  // namespace

Result<Predicate> ParsePredicate(Table* table, std::string_view query) {
  auto pairs = ParsePairs(query);
  if (!pairs.ok()) return pairs.status();
  return Predicate::FromPairs(table, pairs.value());
}

Result<Predicate> ParsePredicateReadOnly(const Table& table,
                                         std::string_view query) {
  auto pairs = ParsePairs(query);
  if (!pairs.ok()) return pairs.status();
  std::vector<AttributeValue> conjuncts;
  for (const auto& [name, value] : pairs.value()) {
    int idx = table.schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("unknown attribute '" + name + "'");
    }
    size_t attribute = static_cast<size_t>(idx);
    if (table.schema().attribute(attribute).type == AttributeType::kNumeric) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' is numeric; predicates apply to "
                                     "categorical attributes");
    }
    ValueCode code = table.dictionary(attribute).Lookup(value);
    if (code == kNullCode) {
      return Status::NotFound("value '" + value +
                              "' does not occur for attribute '" + name +
                              "'");
    }
    conjuncts.push_back({attribute, code});
  }
  return Predicate(std::move(conjuncts));
}

std::string PredicateToQuery(const Table& table, const Predicate& predicate) {
  std::string out;
  for (size_t i = 0; i < predicate.conjuncts().size(); ++i) {
    const AttributeValue& av = predicate.conjuncts()[i];
    if (i > 0) out += " AND ";
    const std::string& value = table.dictionary(av.attribute).ValueOf(av.code);
    out += table.schema().attribute(av.attribute).name;
    out += " = ";
    if (NeedsQuoting(value)) {
      // Quote with whichever character the value does not contain: always
      // quoting with '\'' broke re-parsing of values like "it's" (found by
      // the round-trip fuzzer). A value holding both quote kinds is not
      // expressible in the grammar at all; see the header contract.
      char quote = value.find('\'') == std::string::npos ? '\'' : '"';
      out += quote;
      out += value;
      out += quote;
    } else {
      out += value;
    }
  }
  return out;
}

}  // namespace subdex
