#include "storage/predicate.h"

#include <algorithm>

#include "util/check.h"

namespace subdex {

namespace {
void SortByAttribute(std::vector<AttributeValue>* conjuncts) {
  std::sort(conjuncts->begin(), conjuncts->end(),
            [](const AttributeValue& a, const AttributeValue& b) {
              return a.attribute < b.attribute;
            });
}
}  // namespace

Predicate::Predicate(std::vector<AttributeValue> conjuncts)
    : conjuncts_(std::move(conjuncts)) {
  SortByAttribute(&conjuncts_);
  for (size_t i = 1; i < conjuncts_.size(); ++i) {
    SUBDEX_CHECK_MSG(conjuncts_[i - 1].attribute != conjuncts_[i].attribute,
                     "predicate has two conjuncts on the same attribute");
  }
}

Result<Predicate> Predicate::FromPairs(
    Table* table,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<AttributeValue> conjuncts;
  for (const auto& [name, value] : pairs) {
    int idx = table->schema().IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("unknown attribute '" + name + "'");
    }
    if (table->schema().attribute(static_cast<size_t>(idx)).type ==
        AttributeType::kNumeric) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' is numeric; predicates apply to "
                                     "categorical attributes");
    }
    ValueCode code = table->InternValue(static_cast<size_t>(idx), value);
    conjuncts.push_back({static_cast<size_t>(idx), code});
  }
  return Predicate(std::move(conjuncts));
}

bool Predicate::Matches(const Table& table, RowId row) const {
  for (const AttributeValue& av : conjuncts_) {
    if (!table.HasValue(av.attribute, row, av.code)) return false;
  }
  return true;
}

std::vector<RowId> Predicate::Select(const Table& table) const {
  std::vector<RowId> out;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (Matches(table, r)) out.push_back(r);
  }
  return out;
}

std::vector<RowId> Predicate::SelectFrom(
    const Table& table, const std::vector<RowId>& candidates) const {
  std::vector<RowId> out;
  for (RowId r : candidates) {
    if (Matches(table, r)) out.push_back(r);
  }
  return out;
}

bool Predicate::ConstrainsAttribute(size_t attribute) const {
  for (const AttributeValue& av : conjuncts_) {
    if (av.attribute == attribute) return true;
  }
  return false;
}

Predicate Predicate::With(const AttributeValue& av) const {
  std::vector<AttributeValue> conjuncts;
  for (const AttributeValue& c : conjuncts_) {
    if (c.attribute != av.attribute) conjuncts.push_back(c);
  }
  conjuncts.push_back(av);
  return Predicate(std::move(conjuncts));
}

Predicate Predicate::Without(size_t attribute) const {
  std::vector<AttributeValue> conjuncts;
  for (const AttributeValue& c : conjuncts_) {
    if (c.attribute != attribute) conjuncts.push_back(c);
  }
  return Predicate(std::move(conjuncts));
}

bool Predicate::Contains(const Predicate& other) const {
  for (const AttributeValue& av : other.conjuncts_) {
    if (std::find(conjuncts_.begin(), conjuncts_.end(), av) ==
        conjuncts_.end()) {
      return false;
    }
  }
  return true;
}

std::string Predicate::ToString(const Table& table) const {
  if (conjuncts_.empty()) return "<*>";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += ", ";
    const AttributeValue& av = conjuncts_[i];
    out += "<" + table.schema().attribute(av.attribute).name + "=" +
           table.dictionary(av.attribute).ValueOf(av.code) + ">";
  }
  return out;
}

}  // namespace subdex
