#include "storage/schema.h"

#include "util/check.h"

namespace subdex {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kMultiCategorical:
      return "multi-categorical";
    case AttributeType::kNumeric:
      return "numeric";
  }
  return "unknown";
}

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    SUBDEX_CHECK_MSG(!attributes_[i].name.empty(), "empty attribute name");
    bool inserted = index_.emplace(attributes_[i].name, i).second;
    SUBDEX_CHECK_MSG(inserted, "duplicate attribute name");
  }
}

const AttributeDef& Schema::attribute(size_t i) const {
  SUBDEX_CHECK(i < attributes_.size());
  return attributes_[i];
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return -1;
  return static_cast<int>(it->second);
}

}  // namespace subdex
