#include "storage/table.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/string_util.h"

namespace subdex {

namespace {
const std::vector<ValueCode> kEmptyCodes;
}  // namespace

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].type = schema_.attribute(i).type;
  }
}

Status Table::AppendRow(const std::vector<Value>& cells) {
  if (cells.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row has " + std::to_string(cells.size()) +
                                   " cells, schema has " +
                                   std::to_string(schema_.num_attributes()));
  }
  // Validate types before mutating any column so a failed append is atomic.
  for (size_t i = 0; i < cells.size(); ++i) {
    const Value& v = cells[i];
    if (IsNull(v)) continue;
    switch (columns_[i].type) {
      case AttributeType::kCategorical:
        if (!std::holds_alternative<std::string>(v)) {
          return Status::InvalidArgument("attribute '" +
                                         schema_.attribute(i).name +
                                         "' expects a categorical value");
        }
        break;
      case AttributeType::kMultiCategorical:
        if (!std::holds_alternative<std::vector<std::string>>(v)) {
          return Status::InvalidArgument(
              "attribute '" + schema_.attribute(i).name +
              "' expects a multi-categorical value");
        }
        break;
      case AttributeType::kNumeric:
        if (!std::holds_alternative<double>(v)) {
          return Status::InvalidArgument("attribute '" +
                                         schema_.attribute(i).name +
                                         "' expects a numeric value");
        }
        break;
    }
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    Column& col = columns_[i];
    const Value& v = cells[i];
    switch (col.type) {
      case AttributeType::kCategorical:
        col.codes.push_back(IsNull(v) ? kNullCode
                                      : col.dict.Intern(std::get<std::string>(v)));
        break;
      case AttributeType::kMultiCategorical: {
        std::vector<ValueCode> codes;
        if (!IsNull(v)) {
          for (const std::string& s : std::get<std::vector<std::string>>(v)) {
            codes.push_back(col.dict.Intern(s));
          }
          std::sort(codes.begin(), codes.end());
          codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
        }
        col.multi.push_back(std::move(codes));
        break;
      }
      case AttributeType::kNumeric:
        col.numerics.push_back(
            IsNull(v) ? std::numeric_limits<double>::quiet_NaN()
                      : std::get<double>(v));
        break;
    }
  }
  ++num_rows_;
  return Status::Ok();
}

const Table::Column& Table::column(size_t attr) const {
  SUBDEX_CHECK(attr < columns_.size());
  return columns_[attr];
}

ValueCode Table::CodeAt(size_t attr, RowId row) const {
  const Column& col = column(attr);
  SUBDEX_CHECK(col.type == AttributeType::kCategorical);
  SUBDEX_CHECK(row < col.codes.size());
  return col.codes[row];
}

const std::vector<ValueCode>& Table::MultiCodesAt(size_t attr,
                                                  RowId row) const {
  const Column& col = column(attr);
  SUBDEX_CHECK(col.type == AttributeType::kMultiCategorical);
  SUBDEX_CHECK(row < col.multi.size());
  return col.multi[row];
}

double Table::NumericAt(size_t attr, RowId row) const {
  const Column& col = column(attr);
  SUBDEX_CHECK(col.type == AttributeType::kNumeric);
  SUBDEX_CHECK(row < col.numerics.size());
  return col.numerics[row];
}

bool Table::HasValue(size_t attr, RowId row, ValueCode code) const {
  const Column& col = column(attr);
  switch (col.type) {
    case AttributeType::kCategorical:
      return col.codes[row] == code;
    case AttributeType::kMultiCategorical: {
      const auto& codes = col.multi[row];
      return std::binary_search(codes.begin(), codes.end(), code);
    }
    case AttributeType::kNumeric:
      return false;
  }
  return false;
}

const Dictionary& Table::dictionary(size_t attr) const {
  const Column& col = column(attr);
  SUBDEX_CHECK(col.type != AttributeType::kNumeric);
  return col.dict;
}

size_t Table::DistinctValueCount(size_t attr) const {
  return dictionary(attr).size();
}

std::string Table::CellToString(size_t attr, RowId row) const {
  const Column& col = column(attr);
  switch (col.type) {
    case AttributeType::kCategorical: {
      ValueCode c = col.codes[row];
      return c == kNullCode ? "" : col.dict.ValueOf(c);
    }
    case AttributeType::kMultiCategorical: {
      std::vector<std::string> parts;
      for (ValueCode c : col.multi[row]) parts.push_back(col.dict.ValueOf(c));
      return Join(parts, "|");
    }
    case AttributeType::kNumeric: {
      double v = col.numerics[row];
      if (std::isnan(v)) return "";
      return FormatDouble(v, 4);
    }
  }
  return "";
}

ValueCode Table::InternValue(size_t attr, const std::string& value) {
  SUBDEX_CHECK(attr < columns_.size());
  SUBDEX_CHECK(columns_[attr].type != AttributeType::kNumeric);
  return columns_[attr].dict.Intern(value);
}

ValueCode Table::LookupValue(size_t attr, const std::string& value) const {
  return dictionary(attr).Lookup(value);
}

}  // namespace subdex
