#ifndef SUBDEX_STORAGE_DICTIONARY_H_
#define SUBDEX_STORAGE_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace subdex {

/// Per-attribute value dictionary: bidirectional mapping between string
/// values and dense int32 codes. Codes are assigned in first-seen order, so
/// ingestion from the same source is deterministic.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `value`, inserting it if new.
  ValueCode Intern(const std::string& value);

  /// Returns the code for `value`, or kNullCode if absent.
  SUBDEX_NODISCARD ValueCode Lookup(const std::string& value) const;

  /// String for a valid code.
  SUBDEX_NODISCARD const std::string& ValueOf(ValueCode code) const;

  SUBDEX_NODISCARD size_t size() const { return values_.size(); }

  SUBDEX_NODISCARD
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueCode> codes_;
};

}  // namespace subdex

#endif  // SUBDEX_STORAGE_DICTIONARY_H_
