#ifndef SUBDEX_LOADGEN_LATENCY_RECORDER_H_
#define SUBDEX_LOADGEN_LATENCY_RECORDER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace subdex::loadgen {

/// HDR-style per-interaction latency recorder: a fixed geometric bucket
/// ladder (value resolution bounded by the bucket ratio, ~9% — the
/// precision class HdrHistogram targets) plus an exact maximum, since the
/// max is the one statistic interpolation cannot defend. Observe is
/// lock-free (relaxed bucket increments + a CAS max), so every driver
/// worker records into one shared recorder; quantiles come from the same
/// HistogramQuantile interpolation the /metrics consumers use.
///
/// Deliberately NOT a util/metrics.h Histogram: the measuring instrument
/// must keep recording in a -DSUBDEX_METRICS=OFF build, where the metrics
/// primitives compile to no-ops — a benchmark whose results silently
/// depend on an observability toggle would be a trap.
class LatencyRecorder {
 public:
  LatencyRecorder();
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  void Observe(double ms) noexcept;

  SUBDEX_NODISCARD uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  SUBDEX_NODISCARD double sum_ms() const {
    return sum_.load(std::memory_order_relaxed);
  }
  SUBDEX_NODISCARD double mean_ms() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum_ms() / static_cast<double>(n);
  }
  /// Exact largest observed value (0 when empty), not a bucket edge.
  SUBDEX_NODISCARD double max_ms() const;
  /// Interpolated quantile (HistogramQuantile semantics); NaN when empty.
  SUBDEX_NODISCARD double ValueAtQuantile(double q) const {
    return HistogramQuantile(Bounds(), BucketCounts(), q);
  }
  /// Non-cumulative per-bucket counts, Bounds().size() + 1 entries (the
  /// last one the +Inf overflow bucket) — the HistogramQuantile layout.
  SUBDEX_NODISCARD std::vector<uint64_t> BucketCounts() const;

  /// The shared bucket ladder: geometric from 50 µs to ~2 minutes at
  /// ratio 2^(1/8) (8 buckets per octave, ~170 buckets).
  static const std::vector<double>& Bounds();

 private:
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Bit pattern of the max (doubles >= 0 order like their bit patterns).
  std::atomic<uint64_t> max_bits_{0};
};

}  // namespace subdex::loadgen

#endif  // SUBDEX_LOADGEN_LATENCY_RECORDER_H_
