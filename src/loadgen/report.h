#ifndef SUBDEX_LOADGEN_REPORT_H_
#define SUBDEX_LOADGEN_REPORT_H_

#include <string>
#include <vector>

#include "loadgen/driver.h"
#include "util/status.h"

namespace subdex::loadgen {

/// The BENCH_load_trajectory.json wire format. Schema-versioned so CI and
/// downstream tooling can reject a report they do not understand instead
/// of misreading it; bump kReportSchemaVersion on any incompatible change.
inline constexpr char kReportSchema[] = "subdex-load-trajectory";
inline constexpr int kReportSchemaVersion = 1;
inline constexpr char kReportTool[] = "subdex-loadgen";

/// Latency distribution summary of one trajectory point, milliseconds.
/// Quantiles are HistogramQuantile interpolations over the recorder's
/// geometric buckets; `max` is the exact observed maximum. All zero when
/// the point accepted no steps.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// RatingGroupCache movement across one run (target-side counter deltas).
struct CacheSummary {
  uint64_t hits = 0;
  uint64_t misses = 0;

  SUBDEX_NODISCARD double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One cell of the sweep: a (target, dataset scale, loop mode, concurrency)
/// combination and everything measured there.
struct TrajectoryPoint {
  // Identity — what was driven.
  std::string target;   ///< "engine" | "server"
  std::string dataset;  ///< dataset name as registered / loaded
  uint64_t scale = 0;   ///< dataset size (ratings)
  std::string loop;     ///< "closed" | "open"
  uint64_t concurrency = 0;
  uint64_t steps_per_session = 0;
  double think_time_mean_ms = 0.0;
  double step_deadline_ms = 0.0;
  uint64_t repeats = 1;  ///< runs medianized into this point

  // Measurements (each scalar the median across `repeats` runs).
  double wall_s = 0.0;
  uint64_t sessions_started = 0;
  uint64_t sessions_completed = 0;
  uint64_t steps_attempted = 0;
  uint64_t steps_ok = 0;
  uint64_t steps_failed = 0;
  double degraded_fraction = 0.0;
  double cancelled_fraction = 0.0;
  LatencySummary latency_ms;
  double steps_per_s = 0.0;
  uint64_t shed_429 = 0;
  uint64_t shed_503 = 0;
  uint64_t transport_errors = 0;
  uint64_t arrivals_dropped = 0;
  CacheSummary cache;
};

/// A full sweep: the file BENCH_load_trajectory.json round-trips through
/// ReportToJson / ParseReport.
struct TrajectoryReport {
  uint64_t seed = 0;
  std::string notes;
  std::vector<TrajectoryPoint> points;
};

/// Copies a run's measurements into a point (identity fields untouched).
/// Empty-latency quantiles (NaN) land as 0 so the report stays valid JSON.
void SetMeasurements(TrajectoryPoint* point, const LoadRunResult& run);

/// Serializes with schema/schema_version/tool header. Deterministic key
/// order (golden-testable).
SUBDEX_NODISCARD std::string ReportToJson(const TrajectoryReport& report);

/// Strict parse: the schema header must match exactly and every point
/// must carry every required field with the right JSON kind. Unknown
/// extra keys are tolerated (forward compatibility).
SUBDEX_MUST_USE_RESULT Result<TrajectoryReport> ParseReport(
    std::string_view text);

/// Structural sanity: >= 1 point; per point, known target/loop values,
/// concurrency >= 1, counts consistent (steps_ok + steps_failed <=
/// attempted), fractions in [0, 1], finite non-negative latencies with
/// p50 <= p95 <= p99, and p99 > 0 whenever steps succeeded. With `smoke`,
/// additionally requires the invariants the CI smoke run pins: every
/// point accepted at least one step, and closed-loop concurrency-1 points
/// cancelled nothing.
SUBDEX_MUST_USE_RESULT Status ValidateReport(const TrajectoryReport& report,
                                             bool smoke = false);

SUBDEX_MUST_USE_RESULT Status WriteReportFile(const std::string& path,
                                              const TrajectoryReport& report);
SUBDEX_MUST_USE_RESULT Result<TrajectoryReport> ReadReportFile(
    const std::string& path);

}  // namespace subdex::loadgen

#endif  // SUBDEX_LOADGEN_REPORT_H_
