#include "loadgen/latency_recorder.h"

#include <cmath>
#include <cstring>

namespace subdex::loadgen {

namespace {

std::vector<double> MakeBounds() {
  std::vector<double> bounds;
  // 2^(1/8): eight buckets per octave. 0.05 ms .. ~2 min covers everything
  // from a cache-hit step to a pathologically stalled one; beyond the top
  // bound the +Inf bucket still counts the step (and max_ms stays exact).
  const double ratio = std::exp2(1.0 / 8.0);
  for (double b = 0.05; b < 130000.0; b *= ratio) bounds.push_back(b);
  return bounds;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

const std::vector<double>& LatencyRecorder::Bounds() {
  static const std::vector<double> kBounds = MakeBounds();
  return kBounds;
}

LatencyRecorder::LatencyRecorder() : buckets_(Bounds().size() + 1) {}

void LatencyRecorder::Observe(double ms) noexcept {
  if (!(ms >= 0.0)) ms = 0.0;  // NaN / negative clock skew: clamp
  const std::vector<double>& bounds = Bounds();
  // Geometric ladder => the bucket index is a logarithm; O(1) beats the
  // ~170-step linear scan a generic bound list would need.
  size_t index;
  if (ms <= bounds.front()) {
    index = 0;
  } else {
    index = static_cast<size_t>(
                std::ceil(std::log2(ms / bounds.front()) * 8.0 - 1e-9)) ;
    if (index >= bounds.size()) {
      index = bounds.size();  // +Inf overflow bucket
    } else if (ms > bounds[index]) {
      ++index;  // guard the log's rounding at exact bucket edges
    } else if (index > 0 && ms <= bounds[index - 1]) {
      --index;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ms, std::memory_order_relaxed);

  uint64_t bits = DoubleBits(ms);
  uint64_t seen = max_bits_.load(std::memory_order_relaxed);
  while (bits > seen && !max_bits_.compare_exchange_weak(
                            seen, bits, std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> LatencyRecorder::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyRecorder::max_ms() const {
  return BitsDouble(max_bits_.load(std::memory_order_relaxed));
}

}  // namespace subdex::loadgen
