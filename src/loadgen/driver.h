#ifndef SUBDEX_LOADGEN_DRIVER_H_
#define SUBDEX_LOADGEN_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/config.h"
#include "engine/sde_engine.h"
#include "loadgen/latency_recorder.h"
#include "loadgen/workload.h"
#include "server/http_client.h"
#include "subjective/subjective_db.h"
#include "util/status.h"

namespace subdex::loadgen {

/// What the simulated user asked the target to do for one step.
struct StepAction {
  /// Step at the whole database (the root selection) — the first step of
  /// every session, and the fallback when the subject leaves the ranked
  /// path or no recommendations were offered.
  bool restart = true;
  /// Recommendation index followed when !restart (an index into the
  /// previous step's recommendation list, like the wire protocol's
  /// {"recommendation": i}).
  size_t recommendation = 0;
};

/// One step as the client saw it. HTTP-level failures are data here, not
/// errors: a 429 under load is precisely what the driver measures.
struct StepOutcome {
  /// Transport failed (connect/send/recv) — no status code exists.
  bool transport_error = false;
  /// HTTP status; in-process targets report 200 for every executed step.
  int http_status = 0;
  bool degraded = false;
  bool cancelled = false;
  size_t num_recommendations = 0;
};

/// One exploration session against a target. Implementations are used by
/// exactly one worker thread at a time.
class SessionClient {
 public:
  virtual ~SessionClient() = default;
  /// Creates the session; status-coded like Step (429 = session cap).
  SUBDEX_NODISCARD virtual StepOutcome Create() = 0;
  SUBDEX_NODISCARD virtual StepOutcome Step(const StepAction& action) = 0;
  /// Best-effort teardown (DELETE /sessions/{id} on the wire).
  virtual void Close() = 0;
};

/// Target-side counters scraped around a run; the report carries deltas.
struct TargetCounters {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Connections shed by the acceptor before reaching a worker (the
  /// server-side view; client-visible 429s are counted separately).
  uint64_t server_shed_total = 0;
  uint64_t engine_steps_total = 0;
};

/// A system under test: hands out sessions and exposes its metrics.
class LoadTarget {
 public:
  virtual ~LoadTarget() = default;
  SUBDEX_NODISCARD virtual std::unique_ptr<SessionClient> NewSession() = 0;
  SUBDEX_NODISCARD virtual TargetCounters Scrape() = 0;
  SUBDEX_NODISCARD virtual const char* name() const = 0;
};

/// In-process target: one single-threaded SdeEngine per session over a
/// shared read-only database — the same session model subdexd runs, minus
/// the wire. The loadgen baseline for isolating HTTP/JSON overhead.
class EngineLoadTarget : public LoadTarget {
 public:
  EngineLoadTarget(const SubjectiveDatabase* db, EngineConfig config,
                   double step_deadline_ms, bool with_recommendations);

  SUBDEX_NODISCARD std::unique_ptr<SessionClient> NewSession() override;
  SUBDEX_NODISCARD TargetCounters Scrape() override;
  SUBDEX_NODISCARD const char* name() const override { return "engine"; }

 private:
  const SubjectiveDatabase* db_;
  EngineConfig config_;
  double step_deadline_ms_;
  bool with_recommendations_;
};

/// A live subdexd over HTTP/JSON (in-process SubdexServer or an external
/// daemon — the client cannot tell). Scrape parses GET /metrics.
class HttpLoadTarget : public LoadTarget {
 public:
  /// `dataset` selects the dataset at session creation ("" = the server's
  /// default); `session_ttl_ms` guards against leaking sessions when a
  /// worker dies mid-run.
  HttpLoadTarget(HttpClientOptions client, std::string dataset,
                 double step_deadline_ms, bool with_recommendations,
                 double session_ttl_ms = 600000.0);

  SUBDEX_NODISCARD std::unique_ptr<SessionClient> NewSession() override;
  SUBDEX_NODISCARD TargetCounters Scrape() override;
  SUBDEX_NODISCARD const char* name() const override { return "server"; }

 private:
  HttpClientOptions client_;
  std::string dataset_;
  double step_deadline_ms_;
  bool with_recommendations_;
  double session_ttl_ms_;
};

/// Everything one workload run produced. Latency is recorded only for
/// accepted (HTTP 200) steps; sheds and failures are counted instead —
/// mixing refusals into the latency distribution would make an
/// aggressively-shedding server look fast.
struct LoadRunResult {
  double wall_s = 0.0;
  uint64_t sessions_started = 0;
  uint64_t sessions_completed = 0;
  uint64_t steps_attempted = 0;
  uint64_t steps_ok = 0;
  uint64_t steps_degraded = 0;
  uint64_t steps_cancelled = 0;
  /// Steps given up after max_step_retries sheds or a non-200/shed answer.
  uint64_t steps_failed = 0;
  uint64_t shed_429 = 0;
  uint64_t shed_503 = 0;
  uint64_t transport_errors = 0;
  /// Open loop only: arrivals dropped because every worker slot was busy.
  uint64_t arrivals_dropped = 0;
  std::unique_ptr<LatencyRecorder> latency;
  /// Target counter movement across the run (after minus before).
  TargetCounters counters;
  /// Per-session "a5 t12.3|r0 t0.8|..." scripts when
  /// WorkloadSpec::record_actions (closed loop): action (r<idx> follow
  /// recommendation, a root restart) and drawn think time per step.
  std::vector<std::string> session_scripts;

  SUBDEX_NODISCARD double steps_per_s() const {
    return wall_s > 0 ? static_cast<double>(steps_ok) / wall_s : 0.0;
  }
};

/// Runs one workload cell against a target: spins the session workers
/// (closed) or the arrival process (open), joins them, and returns the
/// merged result with scraped counter deltas.
SUBDEX_NODISCARD LoadRunResult RunWorkload(LoadTarget& target,
                                           const WorkloadSpec& spec);

}  // namespace subdex::loadgen

#endif  // SUBDEX_LOADGEN_DRIVER_H_
