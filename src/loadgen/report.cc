#include "loadgen/report.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "server/json.h"
#include "server/json_wire.h"

namespace subdex::loadgen {

namespace {

double FiniteOrZero(double v) { return std::isfinite(v) ? v : 0.0; }

JsonValue Num(double v) { return JsonValue::Number(v); }
JsonValue Num(uint64_t v) {
  return JsonValue::Number(static_cast<double>(v));
}

JsonValue PointToJson(const TrajectoryPoint& p) {
  JsonValue out = JsonValue::Object();
  out.Set("target", JsonValue::Str(p.target));
  out.Set("dataset", JsonValue::Str(p.dataset));
  out.Set("scale", Num(p.scale));
  out.Set("loop", JsonValue::Str(p.loop));
  out.Set("concurrency", Num(p.concurrency));
  out.Set("steps_per_session", Num(p.steps_per_session));
  out.Set("think_time_mean_ms", Num(p.think_time_mean_ms));
  out.Set("step_deadline_ms", Num(p.step_deadline_ms));
  out.Set("repeats", Num(p.repeats));
  out.Set("wall_s", Num(p.wall_s));
  out.Set("sessions_started", Num(p.sessions_started));
  out.Set("sessions_completed", Num(p.sessions_completed));
  out.Set("steps_attempted", Num(p.steps_attempted));
  out.Set("steps_ok", Num(p.steps_ok));
  out.Set("steps_failed", Num(p.steps_failed));
  out.Set("degraded_fraction", Num(p.degraded_fraction));
  out.Set("cancelled_fraction", Num(p.cancelled_fraction));
  JsonValue latency = JsonValue::Object();
  latency.Set("p50", Num(p.latency_ms.p50));
  latency.Set("p95", Num(p.latency_ms.p95));
  latency.Set("p99", Num(p.latency_ms.p99));
  latency.Set("max", Num(p.latency_ms.max));
  latency.Set("mean", Num(p.latency_ms.mean));
  out.Set("latency_ms", std::move(latency));
  out.Set("steps_per_s", Num(p.steps_per_s));
  out.Set("shed_429", Num(p.shed_429));
  out.Set("shed_503", Num(p.shed_503));
  out.Set("transport_errors", Num(p.transport_errors));
  out.Set("arrivals_dropped", Num(p.arrivals_dropped));
  JsonValue cache = JsonValue::Object();
  cache.Set("hits", Num(p.cache.hits));
  cache.Set("misses", Num(p.cache.misses));
  cache.Set("hit_rate", Num(p.cache.hit_rate()));
  out.Set("cache", std::move(cache));
  return out;
}

/// Field extraction helpers: each returns false (into `ok`) when the key
/// is missing or the wrong kind, so ParsePoint can name the culprit.
const JsonValue* Require(const JsonValue& obj, std::string_view key,
                         JsonValue::Kind kind, std::string* missing) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind() != kind) {
    if (missing->empty()) *missing = std::string(key);
    return nullptr;
  }
  return v;
}

bool ReadString(const JsonValue& obj, std::string_view key, std::string* out,
                std::string* missing) {
  const JsonValue* v = Require(obj, key, JsonValue::Kind::kString, missing);
  if (v == nullptr) return false;
  *out = v->str();
  return true;
}

bool ReadDouble(const JsonValue& obj, std::string_view key, double* out,
                std::string* missing) {
  const JsonValue* v = Require(obj, key, JsonValue::Kind::kNumber, missing);
  if (v == nullptr) return false;
  Result<double> number = WireNumber(*v, key);
  if (!number.ok()) {
    if (missing->empty()) *missing = std::string(key);
    return false;
  }
  *out = number.value();
  return true;
}

bool ReadU64(const JsonValue& obj, std::string_view key, uint64_t* out,
             std::string* missing) {
  double d = 0.0;
  if (!ReadDouble(obj, key, &d, missing)) return false;
  if (!(d >= 0.0) || !std::isfinite(d)) {
    if (missing->empty()) *missing = std::string(key);
    return false;
  }
  *out = static_cast<uint64_t>(d);
  return true;
}

Result<TrajectoryPoint> ParsePoint(const JsonValue& obj) {
  TrajectoryPoint p;
  std::string missing;
  bool ok = ReadString(obj, "target", &p.target, &missing) &&
            ReadString(obj, "dataset", &p.dataset, &missing) &&
            ReadU64(obj, "scale", &p.scale, &missing) &&
            ReadString(obj, "loop", &p.loop, &missing) &&
            ReadU64(obj, "concurrency", &p.concurrency, &missing) &&
            ReadU64(obj, "steps_per_session", &p.steps_per_session,
                    &missing) &&
            ReadDouble(obj, "think_time_mean_ms", &p.think_time_mean_ms,
                       &missing) &&
            ReadDouble(obj, "step_deadline_ms", &p.step_deadline_ms,
                       &missing) &&
            ReadU64(obj, "repeats", &p.repeats, &missing) &&
            ReadDouble(obj, "wall_s", &p.wall_s, &missing) &&
            ReadU64(obj, "sessions_started", &p.sessions_started, &missing) &&
            ReadU64(obj, "sessions_completed", &p.sessions_completed,
                    &missing) &&
            ReadU64(obj, "steps_attempted", &p.steps_attempted, &missing) &&
            ReadU64(obj, "steps_ok", &p.steps_ok, &missing) &&
            ReadU64(obj, "steps_failed", &p.steps_failed, &missing) &&
            ReadDouble(obj, "degraded_fraction", &p.degraded_fraction,
                       &missing) &&
            ReadDouble(obj, "cancelled_fraction", &p.cancelled_fraction,
                       &missing) &&
            ReadDouble(obj, "steps_per_s", &p.steps_per_s, &missing) &&
            ReadU64(obj, "shed_429", &p.shed_429, &missing) &&
            ReadU64(obj, "shed_503", &p.shed_503, &missing) &&
            ReadU64(obj, "transport_errors", &p.transport_errors, &missing) &&
            ReadU64(obj, "arrivals_dropped", &p.arrivals_dropped, &missing);
  const JsonValue* latency =
      Require(obj, "latency_ms", JsonValue::Kind::kObject, &missing);
  if (ok && latency != nullptr) {
    ok = ReadDouble(*latency, "p50", &p.latency_ms.p50, &missing) &&
         ReadDouble(*latency, "p95", &p.latency_ms.p95, &missing) &&
         ReadDouble(*latency, "p99", &p.latency_ms.p99, &missing) &&
         ReadDouble(*latency, "max", &p.latency_ms.max, &missing) &&
         ReadDouble(*latency, "mean", &p.latency_ms.mean, &missing);
  }
  const JsonValue* cache =
      Require(obj, "cache", JsonValue::Kind::kObject, &missing);
  if (ok && cache != nullptr) {
    ok = ReadU64(*cache, "hits", &p.cache.hits, &missing) &&
         ReadU64(*cache, "misses", &p.cache.misses, &missing);
  }
  if (!ok || latency == nullptr || cache == nullptr) {
    return Status::InvalidArgument(
        "trajectory point: missing or mistyped field '" + missing + "'");
  }
  return p;
}

}  // namespace

void SetMeasurements(TrajectoryPoint* point, const LoadRunResult& run) {
  point->wall_s = run.wall_s;
  point->sessions_started = run.sessions_started;
  point->sessions_completed = run.sessions_completed;
  point->steps_attempted = run.steps_attempted;
  point->steps_ok = run.steps_ok;
  point->steps_failed = run.steps_failed;
  point->degraded_fraction =
      run.steps_ok == 0 ? 0.0
                        : static_cast<double>(run.steps_degraded) /
                              static_cast<double>(run.steps_ok);
  point->cancelled_fraction =
      run.steps_ok == 0 ? 0.0
                        : static_cast<double>(run.steps_cancelled) /
                              static_cast<double>(run.steps_ok);
  point->latency_ms.p50 = FiniteOrZero(run.latency->ValueAtQuantile(0.50));
  point->latency_ms.p95 = FiniteOrZero(run.latency->ValueAtQuantile(0.95));
  point->latency_ms.p99 = FiniteOrZero(run.latency->ValueAtQuantile(0.99));
  point->latency_ms.max = run.latency->max_ms();
  point->latency_ms.mean = run.latency->mean_ms();
  point->steps_per_s = run.steps_per_s();
  point->shed_429 = run.shed_429;
  point->shed_503 = run.shed_503;
  point->transport_errors = run.transport_errors;
  point->arrivals_dropped = run.arrivals_dropped;
  point->cache.hits = run.counters.cache_hits;
  point->cache.misses = run.counters.cache_misses;
}

std::string ReportToJson(const TrajectoryReport& report) {
  JsonValue out = JsonValue::Object();
  out.Set("schema", JsonValue::Str(kReportSchema));
  out.Set("schema_version", Num(static_cast<uint64_t>(kReportSchemaVersion)));
  out.Set("tool", JsonValue::Str(kReportTool));
  out.Set("seed", Num(report.seed));
  out.Set("notes", JsonValue::Str(report.notes));
  JsonValue points = JsonValue::Array();
  for (const TrajectoryPoint& p : report.points) {
    points.Append(PointToJson(p));
  }
  out.Set("points", std::move(points));
  return out.Dump();
}

Result<TrajectoryReport> ParseReport(std::string_view text) {
  Result<JsonValue> doc = JsonValue::Parse(text);
  if (!doc.ok()) return doc.status();
  const JsonValue& root = doc.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("trajectory report: not a JSON object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str() != kReportSchema) {
    return Status::InvalidArgument(
        "trajectory report: schema is not '" + std::string(kReportSchema) +
        "'");
  }
  const JsonValue* version = root.Find("schema_version");
  double version_number = -1;
  if (version != nullptr) {
    if (Result<double> number = WireNumber(*version, "schema_version");
        number.ok()) {
      version_number = number.value();
    }
  }
  if (version_number != kReportSchemaVersion) {
    return Status::InvalidArgument(
        "trajectory report: unsupported schema_version (want " +
        std::to_string(kReportSchemaVersion) + ")");
  }
  TrajectoryReport report;
  std::string missing;
  if (!ReadU64(root, "seed", &report.seed, &missing) ||
      !ReadString(root, "notes", &report.notes, &missing)) {
    return Status::InvalidArgument(
        "trajectory report: missing or mistyped field '" + missing + "'");
  }
  const JsonValue* points = root.Find("points");
  if (points == nullptr || !points->is_array()) {
    return Status::InvalidArgument(
        "trajectory report: missing 'points' array");
  }
  for (size_t i = 0; i < points->items().size(); ++i) {
    Result<TrajectoryPoint> point = ParsePoint(points->items()[i]);
    if (!point.ok()) {
      return Status::InvalidArgument("point " + std::to_string(i) + ": " +
                                     point.status().message());
    }
    report.points.push_back(std::move(point.value()));
  }
  return report;
}

Status ValidateReport(const TrajectoryReport& report, bool smoke) {
  if (report.points.empty()) {
    return Status::InvalidArgument("trajectory report: no points");
  }
  for (size_t i = 0; i < report.points.size(); ++i) {
    const TrajectoryPoint& p = report.points[i];
    const std::string where = "point " + std::to_string(i) + ": ";
    if (p.target != "engine" && p.target != "server") {
      return Status::InvalidArgument(where + "unknown target '" + p.target +
                                     "'");
    }
    if (p.loop != "closed" && p.loop != "open") {
      return Status::InvalidArgument(where + "unknown loop '" + p.loop + "'");
    }
    if (p.concurrency == 0) {
      return Status::InvalidArgument(where + "concurrency is 0");
    }
    if (p.repeats == 0) return Status::InvalidArgument(where + "repeats is 0");
    if (p.steps_ok + p.steps_failed > p.steps_attempted) {
      return Status::InvalidArgument(
          where + "steps_ok + steps_failed exceed steps_attempted");
    }
    if (!(p.degraded_fraction >= 0.0 && p.degraded_fraction <= 1.0) ||
        !(p.cancelled_fraction >= 0.0 && p.cancelled_fraction <= 1.0)) {
      return Status::InvalidArgument(where + "fraction outside [0, 1]");
    }
    const double latencies[] = {p.latency_ms.p50, p.latency_ms.p95,
                                p.latency_ms.p99, p.latency_ms.max,
                                p.latency_ms.mean};
    for (double v : latencies) {
      if (!std::isfinite(v) || v < 0.0) {
        return Status::InvalidArgument(where +
                                       "latency not finite non-negative");
      }
    }
    // Quantiles of one distribution are monotone in q. (max is exact, not
    // interpolated, so p99 <= max is NOT an invariant: interpolation may
    // land above the true maximum inside the final occupied bucket.)
    if (p.latency_ms.p50 > p.latency_ms.p95 ||
        p.latency_ms.p95 > p.latency_ms.p99) {
      return Status::InvalidArgument(where + "quantiles not monotone");
    }
    if (p.steps_ok > 0 && !(p.latency_ms.p99 > 0.0)) {
      return Status::InvalidArgument(where + "steps succeeded but p99 is 0");
    }
    if (smoke) {
      if (p.steps_ok == 0) {
        return Status::InvalidArgument(where + "smoke: no accepted steps");
      }
      if (p.loop == "closed" && p.concurrency == 1 &&
          p.cancelled_fraction != 0.0) {
        return Status::InvalidArgument(
            where + "smoke: cancellations at concurrency 1");
      }
    }
  }
  return Status::Ok();
}

Status WriteReportFile(const std::string& path,
                       const TrajectoryReport& report) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << ReportToJson(report) << "\n";
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<TrajectoryReport> ReadReportFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read from '" + path + "' failed");
  return ParseReport(buffer.str());
}

}  // namespace subdex::loadgen
