#include "loadgen/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>
#include <utility>

#include "server/json.h"
#include "study/simulated_user.h"
#include "util/string_util.h"

namespace subdex::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// In-process session: one single-threaded SdeEngine, like one subdexd
/// session. Keeps the previous step's recommendation targets so a
/// follow-by-index action resolves exactly as the wire protocol does.
class EngineSessionClient : public SessionClient {
 public:
  EngineSessionClient(const SubjectiveDatabase* db, EngineConfig config,
                      double step_deadline_ms, bool with_recommendations)
      : db_(db),
        config_(std::move(config)),
        step_deadline_ms_(step_deadline_ms),
        with_recommendations_(with_recommendations) {}

  StepOutcome Create() override {
    engine_ = std::make_unique<SdeEngine>(db_, config_);
    StepOutcome outcome;
    outcome.http_status = 200;
    return outcome;
  }

  StepOutcome Step(const StepAction& action) override {
    GroupSelection selection;  // root: whole database
    if (!action.restart && action.recommendation < targets_.size()) {
      selection = targets_[action.recommendation];
    }
    StepOptions options;
    options.with_recommendations = with_recommendations_;
    if (step_deadline_ms_ > 0.0) {
      options.deadline = Deadline::FromNowMs(step_deadline_ms_);
    }
    StepResult result = engine_->ExecuteStep(selection, options);
    targets_.clear();
    for (const Recommendation& reco : result.recommendations) {
      targets_.push_back(reco.operation.target);
    }
    StepOutcome outcome;
    outcome.http_status = 200;
    outcome.degraded = result.degraded;
    outcome.cancelled = result.cancelled;
    outcome.num_recommendations = result.recommendations.size();
    return outcome;
  }

  void Close() override { engine_.reset(); }

 private:
  const SubjectiveDatabase* db_;
  EngineConfig config_;
  double step_deadline_ms_;
  bool with_recommendations_;
  std::unique_ptr<SdeEngine> engine_;
  std::vector<GroupSelection> targets_;
};

/// Wire session against a live subdexd. The client never materializes
/// operation targets: it follows recommendations by index, exactly what
/// the protocol's {"recommendation": i} is for.
class HttpSessionClient : public SessionClient {
 public:
  HttpSessionClient(HttpClientOptions client, std::string dataset,
                    double step_deadline_ms, bool with_recommendations,
                    double session_ttl_ms)
      : client_(std::move(client)),
        dataset_(std::move(dataset)),
        step_deadline_ms_(step_deadline_ms),
        with_recommendations_(with_recommendations),
        session_ttl_ms_(session_ttl_ms) {}

  StepOutcome Create() override {
    JsonValue body = JsonValue::Object();
    if (!dataset_.empty()) body.Set("dataset", JsonValue::Str(dataset_));
    if (session_ttl_ms_ > 0.0) {
      body.Set("ttl_ms", JsonValue::Number(session_ttl_ms_));
    }
    Result<HttpClientResponse> response =
        HttpFetch(client_, "POST", "/sessions", body.Dump());
    StepOutcome outcome;
    if (!response.ok()) {
      outcome.transport_error = true;
      return outcome;
    }
    outcome.http_status = response.value().status;
    if (outcome.http_status / 100 == 2) {  // POST /sessions answers 201
      Result<JsonValue> doc = JsonValue::Parse(response.value().body);
      if (doc.ok()) {
        if (const JsonValue* id = doc.value().Find("session_id");
            id != nullptr && id->is_string()) {
          id_ = id->str();
        }
      }
      if (id_.empty()) {
        // A 200 without a session id is a broken server, not a shed.
        outcome.transport_error = true;
        outcome.http_status = 0;
      }
    }
    return outcome;
  }

  StepOutcome Step(const StepAction& action) override {
    JsonValue body = JsonValue::Object();
    if (!action.restart) {
      body.Set("recommendation",
               JsonValue::Number(static_cast<double>(action.recommendation)));
    }
    if (step_deadline_ms_ > 0.0) {
      body.Set("deadline_ms", JsonValue::Number(step_deadline_ms_));
    }
    if (!with_recommendations_) {
      body.Set("with_recommendations", JsonValue::Bool(false));
    }
    Result<HttpClientResponse> response =
        HttpFetch(client_, "POST", "/sessions/" + id_ + "/step", body.Dump());
    StepOutcome outcome;
    if (!response.ok()) {
      outcome.transport_error = true;
      return outcome;
    }
    outcome.http_status = response.value().status;
    if (outcome.http_status != 200) return outcome;
    Result<JsonValue> doc = JsonValue::Parse(response.value().body);
    if (!doc.ok()) {
      outcome.transport_error = true;
      outcome.http_status = 0;
      return outcome;
    }
    if (const JsonValue* v = doc.value().Find("degraded");
        v != nullptr && v->is_bool()) {
      outcome.degraded = v->bool_value();
    }
    if (const JsonValue* v = doc.value().Find("cancelled");
        v != nullptr && v->is_bool()) {
      outcome.cancelled = v->bool_value();
    }
    if (const JsonValue* v = doc.value().Find("recommendations");
        v != nullptr && v->is_array()) {
      outcome.num_recommendations = v->items().size();
    }
    return outcome;
  }

  void Close() override {
    if (id_.empty()) return;
    // Discard justified: teardown is best-effort — the server's TTL reaper
    // collects sessions a dying client leaves behind, and a run's numbers
    // are already recorded by the time Close runs.
    (void)HttpFetch(client_, "DELETE", "/sessions/" + id_);
  }

 private:
  HttpClientOptions client_;
  std::string dataset_;
  double step_deadline_ms_;
  bool with_recommendations_;
  double session_ttl_ms_;
  std::string id_;
};

/// Pulls one counter out of a Prometheus text exposition ("name value"
/// sample lines; subdexd's counters carry no labels). 0 when absent.
uint64_t ScrapePrometheusCounter(const std::string& text,
                                 const std::string& name) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    if (line.size() > name.size() + 1 && line.substr(0, name.size()) == name &&
        line[name.size()] == ' ') {
      double value = 0.0;
      if (ParseDouble(line.substr(name.size() + 1), &value) && value >= 0.0) {
        return static_cast<uint64_t>(value);
      }
    }
    pos = end + 1;
  }
  return 0;
}

uint64_t SnapshotCounter(const MetricsSnapshot& snapshot,
                         const std::string& name) {
  for (const MetricsSnapshot::CounterSample& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

/// Result fields every worker updates concurrently; folded into the
/// LoadRunResult once the workers have joined.
struct SharedTallies {
  std::atomic<uint64_t> sessions_started{0};
  std::atomic<uint64_t> sessions_completed{0};
  std::atomic<uint64_t> steps_attempted{0};
  std::atomic<uint64_t> steps_ok{0};
  std::atomic<uint64_t> steps_degraded{0};
  std::atomic<uint64_t> steps_cancelled{0};
  std::atomic<uint64_t> steps_failed{0};
  std::atomic<uint64_t> shed_429{0};
  std::atomic<uint64_t> shed_503{0};
  std::atomic<uint64_t> transport_errors{0};
  /// Heap-held so RunWorkload can hand the recorder to the result without
  /// copying it (the recorder is an immovable bundle of atomics).
  std::unique_ptr<LatencyRecorder> latency = std::make_unique<LatencyRecorder>();
};

/// One logical request with the spec's shed/transport retry budget.
/// Returns the final accepted (or given-up) outcome; `elapsed_ms` is the
/// wall time of the accepted attempt only — retries of a refused request
/// are new requests, not one long request.
StepOutcome AttemptWithRetries(const WorkloadSpec& spec, SharedTallies& tally,
                               const std::function<StepOutcome()>& attempt,
                               double* elapsed_ms) {
  StepOutcome outcome;
  for (size_t tries = 0;; ++tries) {
    const Clock::time_point start = Clock::now();
    outcome = attempt();
    *elapsed_ms = ElapsedMs(start);
    if (outcome.transport_error) {
      tally.transport_errors.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome.http_status == 429) {
      tally.shed_429.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome.http_status == 503) {
      tally.shed_503.fetch_add(1, std::memory_order_relaxed);
    } else {
      return outcome;  // accepted, or an error retrying cannot fix
    }
    if (tries >= spec.max_step_retries) return outcome;
    // Linear backoff, capped: enough to drain a momentary burst without
    // turning the retry loop into its own think time.
    SleepMs(std::min(2.0 * static_cast<double>(tries + 1), 20.0));
  }
}

/// Runs one complete simulated-user session against the target.
void RunSession(LoadTarget& target, const WorkloadSpec& spec,
                size_t session_index, SharedTallies& tally,
                std::string* script) {
  UserProfile profile;
  profile.high_cs_expertise = spec.high_cs_expertise;
  // Distinct, reproducible per-session stream; the odd multiplier keeps
  // neighboring sessions' seeds far apart in the PCG state space.
  profile.seed = spec.seed * 1000003 + session_index;
  SimulatedUser user(profile);

  std::unique_ptr<SessionClient> client = target.NewSession();
  double create_ms = 0.0;
  StepOutcome created = AttemptWithRetries(
      spec, tally, [&] { return client->Create(); }, &create_ms);
  if (created.transport_error || created.http_status / 100 != 2) return;
  tally.sessions_started.fetch_add(1, std::memory_order_relaxed);

  size_t num_recommendations = 0;
  bool aborted = false;
  for (size_t step = 0; step < spec.steps_per_session; ++step) {
    StepAction action;
    if (step > 0) {
      std::optional<size_t> follow =
          user.ChooseRecommendationIndex(num_recommendations);
      if (follow.has_value()) {
        action.restart = false;
        action.recommendation = *follow;
      }
    }
    const double think_ms = user.NextThinkTimeMs(spec.think_time_mean_ms);
    if (script != nullptr) {
      char entry[64];
      std::snprintf(entry, sizeof(entry), "%s%zu t%.3f|",
                    action.restart ? "a" : "r",
                    action.restart ? step : action.recommendation, think_ms);
      script->append(entry);
    }
    if (step > 0) SleepMs(think_ms);

    tally.steps_attempted.fetch_add(1, std::memory_order_relaxed);
    double elapsed = 0.0;
    StepOutcome outcome = AttemptWithRetries(
        spec, tally, [&] { return client->Step(action); }, &elapsed);
    if (outcome.transport_error || outcome.http_status != 200) {
      tally.steps_failed.fetch_add(1, std::memory_order_relaxed);
      aborted = true;
      break;  // the session's trajectory is broken; stop stepping it
    }
    tally.steps_ok.fetch_add(1, std::memory_order_relaxed);
    tally.latency->Observe(elapsed);
    if (outcome.degraded) {
      tally.steps_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.cancelled) {
      tally.steps_cancelled.fetch_add(1, std::memory_order_relaxed);
    }
    num_recommendations = outcome.num_recommendations;
  }
  if (!aborted) {
    tally.sessions_completed.fetch_add(1, std::memory_order_relaxed);
  }
  client->Close();
}

}  // namespace

EngineLoadTarget::EngineLoadTarget(const SubjectiveDatabase* db,
                                   EngineConfig config, double step_deadline_ms,
                                   bool with_recommendations)
    : db_(db),
      config_(std::move(config)),
      step_deadline_ms_(step_deadline_ms),
      with_recommendations_(with_recommendations) {}

std::unique_ptr<SessionClient> EngineLoadTarget::NewSession() {
  return std::make_unique<EngineSessionClient>(
      db_, config_, step_deadline_ms_, with_recommendations_);
}

TargetCounters EngineLoadTarget::Scrape() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  TargetCounters out;
  out.cache_hits = SnapshotCounter(snapshot, "subdex_group_cache_hits_total");
  out.cache_misses =
      SnapshotCounter(snapshot, "subdex_group_cache_misses_total");
  out.engine_steps_total =
      SnapshotCounter(snapshot, "subdex_engine_steps_total");
  return out;
}

HttpLoadTarget::HttpLoadTarget(HttpClientOptions client, std::string dataset,
                               double step_deadline_ms,
                               bool with_recommendations,
                               double session_ttl_ms)
    : client_(std::move(client)),
      dataset_(std::move(dataset)),
      step_deadline_ms_(step_deadline_ms),
      with_recommendations_(with_recommendations),
      session_ttl_ms_(session_ttl_ms) {}

std::unique_ptr<SessionClient> HttpLoadTarget::NewSession() {
  return std::make_unique<HttpSessionClient>(
      client_, dataset_, step_deadline_ms_, with_recommendations_,
      session_ttl_ms_);
}

TargetCounters HttpLoadTarget::Scrape() {
  TargetCounters out;
  Result<HttpClientResponse> response =
      HttpFetch(client_, "GET", "/metrics");
  if (!response.ok() || response.value().status != 200) return out;
  const std::string& text = response.value().body;
  out.cache_hits =
      ScrapePrometheusCounter(text, "subdex_group_cache_hits_total");
  out.cache_misses =
      ScrapePrometheusCounter(text, "subdex_group_cache_misses_total");
  out.server_shed_total =
      ScrapePrometheusCounter(text, "subdex_server_shed_total");
  out.engine_steps_total =
      ScrapePrometheusCounter(text, "subdex_engine_steps_total");
  return out;
}

LoadRunResult RunWorkload(LoadTarget& target, const WorkloadSpec& spec) {
  SharedTallies tally;
  LoadRunResult result;
  std::atomic<uint64_t> arrivals_dropped{0};
  const TargetCounters before = target.Scrape();
  const Clock::time_point start = Clock::now();

  if (spec.mode == LoopMode::kClosed) {
    const bool record = spec.record_actions;
    std::vector<std::string> scripts(record ? spec.sessions : 0);
    std::vector<std::thread> workers;
    workers.reserve(spec.sessions);
    for (size_t i = 0; i < spec.sessions; ++i) {
      std::string* script = record ? &scripts[i] : nullptr;
      workers.emplace_back([&target, &spec, &tally, i, script] {
        RunSession(target, spec, i, tally, script);
      });
    }
    for (std::thread& worker : workers) worker.join();
    result.session_scripts = std::move(scripts);
  } else {
    // Open loop: Poisson arrivals claim bounded worker slots; an arrival
    // finding none free is dropped and counted, never queued (queueing
    // client-side is exactly the coordinated omission this mode exists to
    // avoid).
    Rng arrivals(spec.seed ^ 0x9e3779b97f4a7c15ULL);
    std::atomic<size_t> active{0};
    std::vector<std::thread> workers;
    const double window_ms = spec.arrival_window_s * 1000.0;
    const double mean_gap_ms =
        spec.arrivals_per_s > 0.0 ? 1000.0 / spec.arrivals_per_s : window_ms;
    size_t session_index = 0;
    double at_ms = 0.0;
    for (;;) {
      at_ms += -mean_gap_ms * std::log1p(-arrivals.UniformDouble());
      if (at_ms > window_ms) break;
      SleepMs(at_ms - ElapsedMs(start));
      size_t occupancy = active.load(std::memory_order_relaxed);
      bool claimed = false;
      while (occupancy < spec.sessions) {
        if (active.compare_exchange_weak(occupancy, occupancy + 1,
                                         std::memory_order_relaxed)) {
          claimed = true;
          break;
        }
      }
      if (!claimed) {
        arrivals_dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const size_t index = session_index++;
      workers.emplace_back([&target, &spec, &tally, &active, index] {
        RunSession(target, spec, index, tally, nullptr);
        active.fetch_sub(1, std::memory_order_relaxed);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  result.wall_s = ElapsedMs(start) / 1000.0;
  const TargetCounters after = target.Scrape();
  result.counters.cache_hits = after.cache_hits - before.cache_hits;
  result.counters.cache_misses = after.cache_misses - before.cache_misses;
  result.counters.server_shed_total =
      after.server_shed_total - before.server_shed_total;
  result.counters.engine_steps_total =
      after.engine_steps_total - before.engine_steps_total;

  result.sessions_started = tally.sessions_started.load();
  result.sessions_completed = tally.sessions_completed.load();
  result.steps_attempted = tally.steps_attempted.load();
  result.steps_ok = tally.steps_ok.load();
  result.steps_degraded = tally.steps_degraded.load();
  result.steps_cancelled = tally.steps_cancelled.load();
  result.steps_failed = tally.steps_failed.load();
  result.shed_429 = tally.shed_429.load();
  result.shed_503 = tally.shed_503.load();
  result.transport_errors = tally.transport_errors.load();
  result.arrivals_dropped = arrivals_dropped.load();

  result.latency = std::move(tally.latency);
  return result;
}

}  // namespace subdex::loadgen
