#ifndef SUBDEX_LOADGEN_WORKLOAD_H_
#define SUBDEX_LOADGEN_WORKLOAD_H_

#include <cstddef>
#include <cstdint>

namespace subdex::loadgen {

/// How the driver paces sessions — the two standard modes of load
/// generation for interactive systems (IDEBench runs both).
enum class LoopMode {
  /// `sessions` concurrent workers, each running one full simulated-user
  /// session: step, think, step, ... Measures the system at a fixed
  /// multiprogramming level; throughput adapts to latency.
  kClosed,
  /// Sessions arrive by a Poisson process at `arrivals_per_s` for
  /// `arrival_window_s` seconds, each claiming one of `sessions` worker
  /// slots. An arrival that finds every slot busy is DROPPED and counted
  /// (`arrivals_dropped`) instead of queued — queueing client-side would
  /// hide server slowness inside coordinated omission; a dropped arrival
  /// is load the system demonstrably failed to absorb.
  kOpen,
};

/// One load-generation cell: everything that defines a trajectory point
/// except the target (engine vs. live subdexd) and the dataset.
struct WorkloadSpec {
  LoopMode mode = LoopMode::kClosed;
  /// Concurrent sessions (closed) / concurrent worker slots (open).
  size_t sessions = 8;
  size_t steps_per_session = 5;
  /// Mean of the exponential per-step think time
  /// (SimulatedUser::NextThinkTimeMs); 0 = saturation, no thinking.
  double think_time_mean_ms = 0.0;
  /// Open loop only: session arrival rate and arrival window.
  double arrivals_per_s = 4.0;
  double arrival_window_s = 5.0;
  /// Per-step deadline riding StepOptions / the wire `deadline_ms`;
  /// 0 = unbounded (steps degrade only under overload-independent causes).
  double step_deadline_ms = 0.0;
  bool with_recommendations = true;
  /// Simulated-subject trait (UserProfile::high_cs_expertise): experts
  /// follow the ranked path more often, which concentrates load on
  /// recommendation targets (cache-friendlier).
  bool high_cs_expertise = true;
  /// Root seed; session i derives its subject seed from (seed, i), so a
  /// run is reproducible step-for-step and think-for-think.
  uint64_t seed = 1;
  /// Bounded retries for one step answered 429/503 before the step counts
  /// as failed. Every shed is counted whether or not the retry lands.
  size_t max_step_retries = 8;
  /// Record each session's action/think-time script (determinism tests;
  /// closed loop only — open-loop arrival interleaving is timing-driven).
  bool record_actions = false;
};

}  // namespace subdex::loadgen

#endif  // SUBDEX_LOADGEN_WORKLOAD_H_
