// subdex-lint-ast — the clang libTooling engine of subdex-lint.
//
// Re-checks the subdex-lint rule catalog (tools/subdex-lint/diagnostics.h)
// on the full AST, which sees through macros, typedefs/aliases, and any
// reformatting the portable token engine could in principle be fooled by:
//
//   C1  raw std synchronization primitives / raw cv waits, matched by the
//       *canonical declaration* (an alias of std::mutex is still caught)
//   C2  subdex::Mutex members whose initializer does not start with a
//       string-literal name
//   C3  blocking syscalls lexically after a MutexLock declaration in an
//       enclosing scope, in src/server/
//   C4  WaitOnce/WaitOnceFor calls with no while/for/do ancestor
//   L2  blocking calls inside src/engine/ + src/server/ functions whose
//       parameters carry no Deadline/StopToken/CancellationToken/
//       StepOptions (the one-hop tier stays in the portable engine)
//   L3  JsonValue::number() outside the json_wire funnel files; flow into
//       resize/reserve/at/operator[] is reported even under an annotation
//   L4  (void)-discards without a justification comment, and non-literal
//       or ill-formed metric registration names
//   L1  the include graph against ci/layers.txt, recorded from the real
//       preprocessor callbacks
//
// Built only when the clang development libraries exist (see
// ast/CMakeLists.txt); ci/subdex_lint.sh SKIPs it loudly otherwise. Drive
// it with the main build's compile database:
//
//   subdex-lint-ast -p build/compile_commands.json \
//       --layers=ci/layers.txt --project-root=. src/**/*.cc

#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/raw_ostream.h"

#include "tools/subdex-lint/checks.h"
#include "tools/subdex-lint/diagnostics.h"
#include "tools/subdex-lint/layers.h"

namespace {

using namespace clang;             // NOLINT(build/namespaces)
using namespace clang::ast_matchers;  // NOLINT(build/namespaces)

llvm::cl::OptionCategory gCategory("subdex-lint-ast options");
llvm::cl::opt<std::string> gLayersFile(
    "layers", llvm::cl::desc("Path to ci/layers.txt"),
    llvm::cl::init("ci/layers.txt"), llvm::cl::cat(gCategory));
llvm::cl::opt<std::string> gProjectRoot(
    "project-root", llvm::cl::desc("Project root containing src/"),
    llvm::cl::init("."), llvm::cl::cat(gCategory));

// Deduplicated across TUs: headers are seen once per includer.
std::set<std::tuple<std::string, unsigned, std::string, std::string>>
    gFindings;
subdex_lint::LayerGraph gLayers;
bool gHaveLayers = false;

// Project-relative path of `path`, or empty when it is outside src/.
std::string ProjectRelative(StringRef path) {
  const size_t at = path.rfind("/src/");
  if (at == StringRef::npos) {
    return path.startswith("src/") ? path.str() : std::string();
  }
  return path.substr(at + 1).str();
}

std::string SubsystemOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  const size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return {};
  return rel.substr(4, slash - 4);
}

void Report(const SourceManager& sm, SourceLocation loc,
            const std::string& rule, const std::string& message) {
  const SourceLocation spelling = sm.getSpellingLoc(loc);
  const std::string rel =
      ProjectRelative(sm.getFilename(spelling));
  if (rel.empty()) return;  // outside the project tree (system headers)
  gFindings.insert(
      {rel, sm.getSpellingLineNumber(spelling), rule, message});
}

// The annotation escape hatches live in comments; scan the raw buffer
// lines [line - lines_above, line] for the tag with a non-empty reason.
bool HasAnnotationNear(const SourceManager& sm, SourceLocation loc,
                       unsigned lines_above, StringRef tag) {
  const SourceLocation spelling = sm.getSpellingLoc(loc);
  const FileID fid = sm.getFileID(spelling);
  bool invalid = false;
  const StringRef buffer = sm.getBufferData(fid, &invalid);
  if (invalid) return false;
  const unsigned line = sm.getSpellingLineNumber(spelling);
  const unsigned first = line > lines_above ? line - lines_above : 1;
  for (unsigned l = first; l <= line; ++l) {
    const unsigned offset = sm.getFileOffset(
        sm.translateLineCol(fid, l, 1));
    const size_t eol = buffer.find('\n', offset);
    const StringRef text = buffer.substr(
        offset, eol == StringRef::npos ? StringRef::npos : eol - offset);
    const size_t at = text.find(tag);
    if (at == StringRef::npos) continue;
    const size_t open = text.find('(', at + tag.size());
    if (open == StringRef::npos) continue;
    const size_t close = text.find(')', open);
    if (close == StringRef::npos) continue;
    if (text.substr(open + 1, close - open - 1).trim().empty()) continue;
    return true;
  }
  return false;
}

bool InDir(const std::string& rel, StringRef prefix) {
  return StringRef(rel).startswith(prefix);
}

// src/util/mutex.h is the one place allowed to touch raw primitives — it
// is the wrapper the rest of the tree is being steered toward.
bool InMutexHeader(const SourceManager& sm, SourceLocation loc) {
  return ProjectRelative(sm.getFilename(sm.getSpellingLoc(loc))) ==
         "src/util/mutex.h";
}

// --------------------------------------------------------------------------
// L1: include edges from the real preprocessor.

class IncludeRecorder : public PPCallbacks {
 public:
  explicit IncludeRecorder(SourceManager& sm) : sm_(sm) {}

  void InclusionDirective(SourceLocation hash_loc, const Token&,
                          StringRef file_name, bool is_angled,
                          CharSourceRange, OptionalFileEntryRef, StringRef,
                          StringRef, const Module*,
                          SrcMgr::CharacteristicKind) override {
    if (is_angled || !gHaveLayers) return;
    const std::string includer = ProjectRelative(
        sm_.getFilename(sm_.getSpellingLoc(hash_loc)));
    const std::string sub = SubsystemOf(includer);
    if (sub.empty()) return;
    const size_t slash = file_name.find('/');
    if (slash == StringRef::npos) return;
    const std::string dep = file_name.substr(0, slash).str();
    if (!gLayers.Declared(dep) || dep == sub) return;
    if (gLayers.EdgeAllowed(sub, dep)) return;
    Report(sm_, hash_loc, "L1",
           "include of \"" + file_name.str() + "\": subsystem '" + sub +
               "' may not depend on '" + dep +
               "' (edge not declared in ci/layers.txt)");
  }

 private:
  SourceManager& sm_;
};

// --------------------------------------------------------------------------
// AST matcher callbacks.

constexpr const char* kBlockingSyscalls[] = {
    "read",   "write",    "poll",    "ppoll",  "select",  "pselect",
    "accept", "accept4",  "connect", "recv",   "recvfrom", "recvmsg",
    "send",   "sendto",   "sendmsg", "fsync",  "fdatasync"};

bool ParamsCarryBudget(const FunctionDecl* fn) {
  for (const ParmVarDecl* param : fn->parameters()) {
    const std::string type = param->getType().getAsString();
    for (const char* budget :
         {"Deadline", "StopToken", "CancellationToken", "StepOptions"}) {
      if (type.find(budget) != std::string::npos) return true;
    }
  }
  return false;
}

class LintCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;

    if (const auto* var = result.Nodes.getNodeAs<VarDecl>("c1-var")) {
      if (!InMutexHeader(sm, var->getLocation())) {
        Report(sm, var->getLocation(), "C1",
               "raw " + var->getType().getCanonicalType().getAsString() +
                   " (use subdex::Mutex / MutexLock from util/mutex.h)");
      }
    }
    if (const auto* call =
            result.Nodes.getNodeAs<CXXMemberCallExpr>("c1-wait")) {
      if (!InMutexHeader(sm, call->getExprLoc())) {
        Report(sm, call->getExprLoc(), "C1",
               "raw condition-variable wait (use MutexLock::WaitOnce / "
               "WaitOnceFor)");
      }
    }

    if (const auto* field = result.Nodes.getNodeAs<FieldDecl>("c2-field")) {
      const Expr* init = field->getInClassInitializer();
      const auto* list = dyn_cast_or_null<InitListExpr>(init);
      const bool named =
          list != nullptr && list->getNumInits() > 0 &&
          isa<StringLiteral>(list->getInit(0)->IgnoreImplicit());
      if (!named) {
        Report(sm, field->getLocation(), "C2",
               "Mutex '" + field->getNameAsString() +
                   "' constructed without a literal name");
      }
    }

    if (const auto* call = result.Nodes.getNodeAs<CallExpr>("c3-call")) {
      HandleBlockedSyscallUnderLock(*result.Context, sm, call);
    }

    if (const auto* call =
            result.Nodes.getNodeAs<CXXMemberCallExpr>("c4-wait")) {
      if (!HasAnnotationNear(sm, call->getExprLoc(), 6,
                             "lock-lint: looped")) {
        Report(sm, call->getExprLoc(), "C4",
               "WaitOnce outside a predicate loop (spurious wakeups make "
               "an unlooped wait a race)");
      }
    }

    if (const auto* call = result.Nodes.getNodeAs<CallExpr>("l2-call")) {
      const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("l2-fn");
      const std::string rel = ProjectRelative(
          sm.getFilename(sm.getSpellingLoc(call->getExprLoc())));
      if ((InDir(rel, "src/engine/") || InDir(rel, "src/server/")) &&
          fn != nullptr && !ParamsCarryBudget(fn) &&
          !HasAnnotationNear(sm, call->getExprLoc(), 3, "lint: unbounded") &&
          !HasAnnotationNear(sm, fn->getBeginLoc(), 3, "lint: unbounded")) {
        Report(sm, call->getExprLoc(), "L2",
               "'" + fn->getNameAsString() +
                   "' blocks but accepts no Deadline/StopToken "
                   "(annotate 'lint: unbounded(<why>)' if by design)");
      }
    }

    if (const auto* call =
            result.Nodes.getNodeAs<CXXMemberCallExpr>("l3-number")) {
      const std::string rel = ProjectRelative(
          sm.getFilename(sm.getSpellingLoc(call->getExprLoc())));
      const bool funnel =
          rel == "src/server/json.h" || rel == "src/server/json.cc" ||
          rel == "src/server/json_wire.h" || rel == "src/server/json_wire.cc";
      if ((InDir(rel, "src/server/") || InDir(rel, "src/loadgen/")) &&
          !funnel &&
          !HasAnnotationNear(sm, call->getExprLoc(), 3,
                             "lint: wire-checked")) {
        Report(sm, call->getExprLoc(), "L3",
               "raw JsonValue::number() outside src/server/json_wire "
               "(use WireCount/WireIndex/WireMs/WireNumber)");
      }
    }
    if (const auto* call =
            result.Nodes.getNodeAs<CXXMemberCallExpr>("l3-flow")) {
      // Flow into a size/index consumer: flagged unconditionally — this
      // is the case an annotation must never silence.
      Report(sm, call->getExprLoc(), "L3",
             "JsonValue::number() flows directly into a size/index "
             "consumer; validate through json_wire first");
    }

    if (const auto* cast =
            result.Nodes.getNodeAs<CStyleCastExpr>("l4-discard")) {
      const SourceLocation loc = cast->getExprLoc();
      if (!HasCommentNear(sm, loc)) {
        Report(sm, loc, "L4",
               "unjustified (void) discard: add a comment saying why the "
               "value is safe to drop");
      }
    }
    if (const auto* call = result.Nodes.getNodeAs<CallExpr>("l4-metric")) {
      const std::string rel = ProjectRelative(
          sm.getFilename(sm.getSpellingLoc(call->getExprLoc())));
      if (rel.rfind("src/util/metrics.", 0) == 0) return;
      const Expr* arg0 =
          call->getNumArgs() > 0 ? call->getArg(0)->IgnoreImplicit()
                                 : nullptr;
      const auto* literal = dyn_cast_or_null<StringLiteral>(arg0);
      if (literal == nullptr) {
        Report(sm, call->getExprLoc(), "L4",
               "metric registered with a non-literal name");
      } else if (!subdex_lint::MetricNameOk(
                     "\"" + literal->getString().str() + "\"")) {
        Report(sm, call->getExprLoc(), "L4",
               "metric name \"" + literal->getString().str() +
                   "\" must match subdex_<subsystem>_<name>");
      }
    }
  }

 private:
  // Any comment text on the discard's line or the three lines above — the
  // same justification window as ci/lint.sh rule 4.
  static bool HasCommentNear(const SourceManager& sm, SourceLocation loc) {
    const SourceLocation spelling = sm.getSpellingLoc(loc);
    const FileID fid = sm.getFileID(spelling);
    bool invalid = false;
    const StringRef buffer = sm.getBufferData(fid, &invalid);
    if (invalid) return false;
    const unsigned line = sm.getSpellingLineNumber(spelling);
    const unsigned first = line > 3 ? line - 3 : 1;
    for (unsigned l = first; l <= line; ++l) {
      const unsigned offset =
          sm.getFileOffset(sm.translateLineCol(fid, l, 1));
      const size_t eol = buffer.find('\n', offset);
      const StringRef text = buffer.substr(
          offset, eol == StringRef::npos ? StringRef::npos : eol - offset);
      if (text.contains("//") || text.contains("/*")) return true;
    }
    return false;
  }

  // C3: is there a subdex::MutexLock declared before `call` in one of its
  // enclosing compound statements?
  void HandleBlockedSyscallUnderLock(ASTContext& ctx,
                                     const SourceManager& sm,
                                     const CallExpr* call) {
    const std::string rel = ProjectRelative(
        sm.getFilename(sm.getSpellingLoc(call->getExprLoc())));
    if (!InDir(rel, "src/server/")) return;
    if (HasAnnotationNear(sm, call->getExprLoc(), 3,
                          "lock-lint: nonblocking")) {
      return;
    }
    DynTypedNode node = DynTypedNode::create(*call);
    while (true) {
      const auto parents = ctx.getParents(node);
      if (parents.empty()) return;
      node = parents[0];
      const auto* compound = node.get<CompoundStmt>();
      if (compound == nullptr) {
        if (node.get<FunctionDecl>() != nullptr) return;  // left the body
        continue;
      }
      for (const Stmt* child : compound->body()) {
        const auto* decl_stmt = dyn_cast<DeclStmt>(child);
        if (decl_stmt == nullptr) continue;
        if (sm.isBeforeInTranslationUnit(call->getExprLoc(),
                                         decl_stmt->getBeginLoc())) {
          continue;  // declared after the call: not in scope yet
        }
        for (const Decl* d : decl_stmt->decls()) {
          const auto* var = dyn_cast<VarDecl>(d);
          if (var == nullptr) continue;
          const std::string type =
              var->getType().getCanonicalType().getAsString();
          if (type.find("MutexLock") != std::string::npos) {
            Report(sm, call->getExprLoc(), "C3",
                   "blocking syscall inside a MutexLock scope");
            return;
          }
        }
      }
    }
  }
};

class LintAction : public ASTFrontendAction {
 public:
  explicit LintAction(MatchFinder* finder) : finder_(finder) {}

  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance& ci,
                                                 StringRef) override {
    ci.getPreprocessor().addPPCallbacks(
        std::make_unique<IncludeRecorder>(ci.getSourceManager()));
    return finder_->newASTConsumer();
  }

 private:
  MatchFinder* finder_;
};

class LintActionFactory : public tooling::FrontendActionFactory {
 public:
  explicit LintActionFactory(MatchFinder* finder) : finder_(finder) {}
  std::unique_ptr<FrontendAction> create() override {
    return std::make_unique<LintAction>(finder_);
  }

 private:
  MatchFinder* finder_;
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser =
      tooling::CommonOptionsParser::create(argc, argv, gCategory);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError());
    return 2;
  }
  tooling::CommonOptionsParser& options = *expected_parser;

  if (auto buffer = llvm::MemoryBuffer::getFile(gLayersFile)) {
    std::string error;
    if (!subdex_lint::ParseLayersFile((*buffer)->getBuffer().str(), &gLayers,
                                      &error)) {
      llvm::errs() << "subdex-lint-ast: " << error << "\n";
      return 2;
    }
    gHaveLayers = true;
  } else {
    llvm::errs() << "subdex-lint-ast: warning: no layers file at "
                 << gLayersFile << "; L1 disabled\n";
  }

  MatchFinder finder;
  LintCallback callback;

  // Bare std::condition_variable is allowed as a member (MutexLock::WaitOnce
  // bridges to it) — only declaring the other primitives, and calling
  // .wait*() on any cv, is banned outside src/util/mutex.h.
  const auto std_sync = cxxRecordDecl(hasAnyName(
      "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
      "::std::shared_mutex", "::std::shared_timed_mutex",
      "::std::condition_variable_any"));
  const auto std_waitable = cxxRecordDecl(hasAnyName(
      "::std::condition_variable", "::std::condition_variable_any"));
  finder.addMatcher(
      varDecl(hasType(hasCanonicalType(hasDeclaration(std_sync))),
              unless(isExpansionInSystemHeader()))
          .bind("c1-var"),
      &callback);
  finder.addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("wait", "wait_for", "wait_until"),
                               ofClass(std_waitable))),
          unless(isExpansionInSystemHeader()))
          .bind("c1-wait"),
      &callback);

  finder.addMatcher(
      fieldDecl(hasType(cxxRecordDecl(hasName("::subdex::Mutex"))),
                unless(isExpansionInSystemHeader()))
          .bind("c2-field"),
      &callback);

  const auto blocking_syscall = callee(functionDecl(hasAnyName(
      "::read", "::write", "::poll", "::ppoll", "::select", "::pselect",
      "::accept", "::accept4", "::connect", "::recv", "::recvfrom",
      "::recvmsg", "::send", "::sendto", "::sendmsg", "::fsync",
      "::fdatasync")));
  (void)kBlockingSyscalls;  // documented list; matcher above is the source
  finder.addMatcher(
      callExpr(blocking_syscall, unless(isExpansionInSystemHeader()))
          .bind("c3-call"),
      &callback);

  finder.addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("WaitOnce", "WaitOnceFor"))),
          unless(anyOf(hasAncestor(whileStmt()), hasAncestor(forStmt()),
                       hasAncestor(doStmt()))),
          unless(isExpansionInSystemHeader()))
          .bind("c4-wait"),
      &callback);

  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "ParallelFor", "WaitOnce", "sleep_for", "sleep_until",
                   "::read", "::write", "::poll", "::ppoll", "::select",
                   "::accept", "::accept4", "::connect", "::recv",
                   "::recvfrom", "::recvmsg", "::send", "::sendto",
                   "::sendmsg", "::fsync", "::fdatasync"))),
               forFunction(functionDecl(isDefinition()).bind("l2-fn")),
               unless(isExpansionInSystemHeader()))
          .bind("l2-call"),
      &callback);

  const auto json_number = cxxMemberCallExpr(
      callee(cxxMethodDecl(hasName("number"),
                           ofClass(hasName("::subdex::JsonValue")))),
      unless(isExpansionInSystemHeader()));
  finder.addMatcher(json_number.bind("l3-number"), &callback);
  finder.addMatcher(
      cxxMemberCallExpr(
          json_number,
          anyOf(hasAncestor(cxxMemberCallExpr(callee(cxxMethodDecl(
                    hasAnyName("resize", "reserve", "at", "assign"))))),
                hasAncestor(arraySubscriptExpr())))
          .bind("l3-flow"),
      &callback);

  finder.addMatcher(
      cStyleCastExpr(hasDestinationType(voidType()),
                     hasParent(compoundStmt()),
                     unless(isExpansionInSystemHeader()))
          .bind("l4-discard"),
      &callback);
  finder.addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("GetCounter", "GetGauge", "GetHistogram"))),
               unless(isExpansionInSystemHeader()))
          .bind("l4-metric"),
      &callback);

  LintActionFactory factory(&finder);
  tooling::ClangTool tool(options.getCompilations(),
                          options.getSourcePathList());
  const int run_status = tool.run(&factory);
  if (run_status != 0) {
    llvm::errs() << "subdex-lint-ast: tool run failed\n";
    return 2;
  }

  for (const auto& [file, line, rule, message] : gFindings) {
    llvm::outs() << file << ":" << line << ": [" << rule << "] " << message
                 << "\n";
    if (const subdex_lint::RuleInfo* info = subdex_lint::FindRule(rule)) {
      llvm::outs() << "    rule " << info->id << ": " << info->rationale
                   << "\n";
    }
  }
  if (!gFindings.empty()) {
    llvm::outs() << "subdex-lint-ast: FAILED — " << gFindings.size()
                 << " finding(s)\n";
    return 1;
  }
  llvm::outs() << "subdex-lint-ast: OK\n";
  return 0;
}
