// subdex-lint — the project-specific static analyzer (DESIGN.md §15).
//
// Consolidates the C1–C4 concurrency-shape rules and adds the project
// checks the text rules cannot express: L1 subsystem layering over the
// real include graph against the DAG declared in ci/layers.txt, L2
// deadline/cancellation propagation in src/engine/ + src/server/, L3
// wire-input funneling through the bounds-checked json_wire accessors,
// and L4 token-accurate discard-justification and metric-name rules.
//
// This binary is the portable engine: a comment/string-aware token
// analysis with no dependency beyond the C++ standard library, so it runs
// on every supported image and is the engine ci/check.sh gates on. The
// clang libTooling engine under tools/subdex-lint/ast/ re-checks the same
// rules on the full AST when clang dev libraries are installed.
//
// Usage:
//   subdex-lint [--root DIR] [--layers FILE] [--compile-commands FILE]
//               [--rules R1,R2,...] [--list-rules] [--validate-layers FILE]
//
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/subdex-lint/checks.h"
#include "tools/subdex-lint/compile_db.h"
#include "tools/subdex-lint/diagnostics.h"
#include "tools/subdex-lint/layers.h"
#include "tools/subdex-lint/lexer.h"

namespace subdex_lint {
namespace {

namespace fs = std::filesystem;

std::optional<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

int ValidateLayersFile(const std::string& path) {
  const auto text = ReadFile(path);
  if (!text) {
    std::cerr << "subdex-lint: cannot read layers file: " << path << "\n";
    return 2;
  }
  LayerGraph graph;
  std::string error;
  if (!ParseLayersFile(*text, &graph, &error)) {
    std::cerr << "subdex-lint: " << error << "\n";
    return 1;
  }
  if (!ValidateDeclaredDeps(graph, &error)) {
    std::cerr << "subdex-lint: " << error << "\n";
    return 1;
  }
  const std::vector<std::string> cycle = FindCycle(graph);
  if (!cycle.empty()) {
    std::cerr << "subdex-lint: dependency cycle: ";
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) std::cerr << " -> ";
      std::cerr << cycle[i];
    }
    std::cerr << "\n";
    return 1;
  }
  std::cout << "subdex-lint: layers OK (" << graph.subsystems.size()
            << " subsystems, acyclic)\n";
  return 0;
}

void ListRules() {
  for (const RuleInfo& r : RuleCatalog()) {
    std::cout << r.id << "  " << r.summary << "\n      why: " << r.rationale
              << "\n";
  }
}

struct Options {
  std::string root = ".";
  std::string layers_path;  // default: <root>/ci/layers.txt
  std::string compile_db_path;
  std::set<std::string> rules;
};

int Run(const Options& opts) {
  const fs::path root(opts.root);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "subdex-lint: no src/ directory under root: " << opts.root
              << "\n";
    return 2;
  }

  // The compile database, when given, is the source of truth for which
  // .cc files the build compiles. Headers never appear in it and are
  // always discovered by walking src/.
  std::set<std::string> db_files;
  bool have_db = false;
  if (!opts.compile_db_path.empty()) {
    const auto text = ReadFile(opts.compile_db_path);
    if (!text) {
      std::cerr << "subdex-lint: cannot read compile database: "
                << opts.compile_db_path << "\n";
      return 2;
    }
    db_files = ReadCompileDbFiles(*text);
    have_db = true;
    if (db_files.empty()) {
      std::cerr << "subdex-lint: compile database has no file entries: "
                << opts.compile_db_path << "\n";
      return 2;
    }
  }

  ProjectContext ctx;
  for (const auto& entry : fs::directory_iterator(src)) {
    if (entry.is_directory()) {
      ctx.src_subsystems.insert(entry.path().filename().string());
    }
  }

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file() || !HasSourceExtension(entry.path())) {
      continue;
    }
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  const fs::path abs_root = fs::weakly_canonical(root);
  int skipped_by_db = 0;
  for (const fs::path& p : paths) {
    const std::string rel =
        fs::relative(p, root).generic_string();
    if (have_db && p.extension() == ".cc") {
      const std::string abs = fs::weakly_canonical(p).string();
      if (db_files.count(abs) == 0) {
        // Not part of the real build: analyze it anyway (it is in the
        // tree) but say so — a stale database hides nothing silently.
        ++skipped_by_db;
        std::cerr << "subdex-lint: note: " << rel
                  << " is not in the compile database (stale configure?); "
                     "analyzing it anyway\n";
      }
    }
    const auto text = ReadFile(p);
    if (!text) {
      std::cerr << "subdex-lint: cannot read " << rel << "\n";
      return 2;
    }
    ctx.files.push_back(LexFile(rel, *text));
  }
  (void)abs_root;  // canonicalization is only needed for db matching above

  std::string layers_path = opts.layers_path;
  if (layers_path.empty()) {
    layers_path = (root / "ci" / "layers.txt").string();
  }
  LayerGraph graph;
  bool have_layers = false;
  if (const auto text = ReadFile(layers_path)) {
    std::string error;
    if (!ParseLayersFile(*text, &graph, &error)) {
      std::cerr << "subdex-lint: " << error << "\n";
      return 2;
    }
    have_layers = true;
  }
  ctx.layers = have_layers ? &graph : nullptr;
  ctx.enabled_rules = opts.rules;

  const std::vector<Diagnostic> diags = RunChecks(ctx);
  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
    if (const RuleInfo* rule = FindRule(d.rule)) {
      std::cout << "    rule " << rule->id << ": " << rule->rationale << "\n";
    }
  }
  if (!diags.empty()) {
    std::cout << "subdex-lint: FAILED — " << diags.size() << " finding(s) in "
              << ctx.files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "subdex-lint: OK (" << ctx.files.size() << " files, "
            << (opts.rules.empty() ? std::string("all rules")
                                   : std::to_string(opts.rules.size()) +
                                         " rule(s)")
            << (have_db ? ", compile db" : "") << ")\n";
  return 0;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::optional<std::string> {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (arg == "--list-rules") {
      ListRules();
      return 0;
    }
    if (auto v = value("--validate-layers")) return ValidateLayersFile(*v);
    if (auto v = value("--root")) {
      opts.root = *v;
      continue;
    }
    if (auto v = value("--layers")) {
      opts.layers_path = *v;
      continue;
    }
    if (auto v = value("--compile-commands")) {
      opts.compile_db_path = *v;
      continue;
    }
    if (auto v = value("--rules")) {
      std::stringstream ss(*v);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (rule.empty()) continue;
        if (FindRule(rule) == nullptr) {
          std::cerr << "subdex-lint: unknown rule '" << rule
                    << "' (--list-rules shows the catalog)\n";
          return 2;
        }
        opts.rules.insert(rule);
      }
      continue;
    }
    std::cerr << "subdex-lint: unknown argument '" << arg << "'\n"
              << "usage: subdex-lint [--root DIR] [--layers FILE] "
                 "[--compile-commands FILE] [--rules R1,R2] [--list-rules] "
                 "[--validate-layers FILE]\n";
    return 2;
  }
  return Run(opts);
}

}  // namespace
}  // namespace subdex_lint

int main(int argc, char** argv) { return subdex_lint::Main(argc, argv); }
