#ifndef SUBDEX_TOOLS_SUBDEX_LINT_LAYERS_H_
#define SUBDEX_TOOLS_SUBDEX_LINT_LAYERS_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace subdex_lint {

// The declared subsystem DAG from ci/layers.txt (rule L1). Each line
//
//   <subsystem>: <dep> <dep> ...        # comment
//
// names one directory under src/ and the exact set of sibling subsystems
// its files may #include. The list is explicit, not transitive: `server`
// may include `util` only because its line says so, not because
// `engine` does. `#` starts a comment; blank lines are ignored.
struct LayerGraph {
  // Declaration order, preserved so diagnostics and dumps are stable.
  std::vector<std::string> subsystems;
  // subsystem -> allowed direct dependencies. Every declared subsystem
  // has an entry (possibly empty).
  std::map<std::string, std::set<std::string>> allowed;

  bool Declared(std::string_view name) const {
    return allowed.find(std::string(name)) != allowed.end();
  }
  bool EdgeAllowed(std::string_view from, std::string_view to) const {
    auto it = allowed.find(std::string(from));
    return it != allowed.end() &&
           it->second.find(std::string(to)) != it->second.end();
  }
};

// Parses the layers file. On failure returns false and sets *error to a
// message carrying the 1-based line number. Rejects: a line without ':',
// an empty subsystem name, a duplicate subsystem line, names with
// characters outside [a-z0-9_], and a subsystem listing itself as a dep.
bool ParseLayersFile(std::string_view text, LayerGraph* out,
                     std::string* error);

// Every listed dependency must itself be declared as a subsystem.
// Returns false and names the offender otherwise.
bool ValidateDeclaredDeps(const LayerGraph& graph, std::string* error);

// Cycle detection over the declared edges (iterative three-color DFS in
// declaration order, so the reported cycle is deterministic). Returns the
// cycle as [a, b, ..., a]; empty when the graph is acyclic.
std::vector<std::string> FindCycle(const LayerGraph& graph);

}  // namespace subdex_lint

#endif  // SUBDEX_TOOLS_SUBDEX_LINT_LAYERS_H_
