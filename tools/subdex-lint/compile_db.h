#ifndef SUBDEX_TOOLS_SUBDEX_LINT_COMPILE_DB_H_
#define SUBDEX_TOOLS_SUBDEX_LINT_COMPILE_DB_H_

#include <set>
#include <string>
#include <string_view>

namespace subdex_lint {

// Extracts the "file" entries from a CMake-emitted compile_commands.json.
// Deliberately not a general JSON parser: the database is machine-written
// with a fixed shape, and the only fact the lint needs is *which
// translation units the real build compiles* — that makes the exported
// database the single source of truth for the TU list (headers are
// discovered by directory walk; they never appear in the database).
// Returns absolute paths as written by CMake. On malformed input the
// result is simply the entries that could be read.
std::set<std::string> ReadCompileDbFiles(std::string_view json_text);

}  // namespace subdex_lint

#endif  // SUBDEX_TOOLS_SUBDEX_LINT_COMPILE_DB_H_
