#include "tools/subdex-lint/checks.h"

#include <algorithm>
#include <map>

namespace subdex_lint {

namespace {

using Tokens = std::vector<Token>;

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}
bool IsAnyIdent(const Token& t, const std::set<std::string>& names) {
  return t.kind == Token::Kind::kIdent && names.count(t.text) > 0;
}

// "src/<sub>/..." -> "<sub>"; empty when the path has another shape.
std::string Subsystem(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Finds the token index of the ')' / '}' matching the opener at `open`.
// Returns tokens.size() when unbalanced (the rest of the file is then
// treated as unmatched, which at worst suppresses a finding in a file
// that does not compile anyway).
size_t FindMatch(const Tokens& toks, size_t open) {
  const std::string& open_text = toks[open].text;
  const std::string close_text = open_text == "(" ? ")" : "}";
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open_text)) ++depth;
    if (IsPunct(toks[i], close_text) && --depth == 0) return i;
  }
  return toks.size();
}

// An annotation comment `<tag>(<reason>)` with a non-empty reason, on
// `line` or within `lines_above` lines above it. The required reason is
// the policy: a suppression must say *why*, the same contract as the
// analyzer suppression file.
bool HasJustifiedAnnotation(const LexedFile& file, int line, int lines_above,
                            std::string_view tag) {
  const int first = line > lines_above ? line - lines_above : 1;
  for (const Comment& c : file.comments) {
    if (c.end_line < first || c.line > line) continue;
    const size_t at = c.text.find(tag);
    if (at == std::string::npos) continue;
    const size_t open = c.text.find('(', at + tag.size());
    if (open == std::string::npos) continue;
    const size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    const std::string reason = c.text.substr(open + 1, close - open - 1);
    if (reason.find_first_not_of(" \t") != std::string::npos) return true;
  }
  return false;
}

void Add(std::vector<Diagnostic>* diags, const std::string& file, int line,
         const char* rule, std::string message) {
  diags->push_back({file, line, rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// L1: subsystem layering over the real include graph.

void CheckLayering(const ProjectContext& ctx, std::vector<Diagnostic>* diags) {
  if (ctx.layers == nullptr) {
    Add(diags, "ci/layers.txt", 1, "L1",
        "no layers file: the subsystem DAG must be declared");
    return;
  }
  const LayerGraph& graph = *ctx.layers;

  std::string error;
  if (!ValidateDeclaredDeps(graph, &error)) {
    Add(diags, "ci/layers.txt", 1, "L1", error);
  }
  const std::vector<std::string> cycle = FindCycle(graph);
  if (!cycle.empty()) {
    std::string msg = "dependency cycle in the declared DAG: ";
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) msg += " -> ";
      msg += cycle[i];
    }
    Add(diags, "ci/layers.txt", 1, "L1", msg);
  }
  // Coverage, both directions: every src/ directory is declared, and
  // every declared subsystem still exists on disk.
  for (const std::string& sub : ctx.src_subsystems) {
    if (!graph.Declared(sub)) {
      Add(diags, "ci/layers.txt", 1, "L1",
          "subsystem 'src/" + sub + "/' is not declared in ci/layers.txt");
    }
  }
  for (const std::string& sub : graph.subsystems) {
    if (ctx.src_subsystems.count(sub) == 0) {
      Add(diags, "ci/layers.txt", 1, "L1",
          "declared subsystem '" + sub + "' has no src/" + sub +
              "/ directory (stale entry)");
    }
  }

  for (const LexedFile& file : ctx.files) {
    const std::string sub = Subsystem(file.path);
    if (sub.empty()) continue;
    for (const IncludeDirective& inc : file.includes) {
      if (inc.angled) continue;
      const size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      const std::string dep = inc.path.substr(0, slash);
      // Only subsystem-shaped includes participate (a path whose first
      // component is a declared subsystem or an on-disk src/ directory).
      if (!graph.Declared(dep) && ctx.src_subsystems.count(dep) == 0) {
        continue;
      }
      if (dep == sub) continue;
      if (graph.EdgeAllowed(sub, dep)) continue;
      Add(diags, file.path, inc.line, "L1",
          "include of \"" + inc.path + "\": subsystem '" + sub +
              "' may not depend on '" + dep +
              "' (edge not declared in ci/layers.txt)");
    }
  }
}

// ---------------------------------------------------------------------------
// Function extraction (shared by L2).

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kWords = {
      "if",     "while",  "for",    "switch",   "catch",
      "return", "sizeof", "alignof", "decltype", "static_assert",
      "new",    "delete", "throw",  "else",     "do",
      "case",   "goto",   "co_return", "co_await", "co_yield"};
  return kWords;
}

std::vector<FunctionDef> ExtractFunctionsImpl(const Tokens& toks) {
  std::vector<FunctionDef> funcs;
  size_t i = 0;
  while (i < toks.size()) {
    if (!IsPunct(toks[i], "(") || i == 0 ||
        toks[i - 1].kind != Token::Kind::kIdent ||
        ControlKeywords().count(toks[i - 1].text) > 0) {
      ++i;
      continue;
    }
    const size_t params_begin = i;
    const size_t params_end = FindMatch(toks, params_begin);
    if (params_end >= toks.size()) {
      ++i;
      continue;
    }
    // Walk the post-parameter region: qualifiers, a trailing return type,
    // or a constructor initializer list, ending at the body '{'. Anything
    // else (';', ',', '=', ')', ...) means this was not a definition.
    size_t k = params_end + 1;
    bool is_def = false;
    while (k < toks.size()) {
      const Token& t = toks[k];
      if (IsPunct(t, "{")) {
        is_def = true;
        break;
      }
      if (IsIdent(t, "noexcept") && k + 1 < toks.size() &&
          IsPunct(toks[k + 1], "(")) {
        k = FindMatch(toks, k + 1) + 1;
        continue;
      }
      if (IsIdent(t, "const") || IsIdent(t, "noexcept") ||
          IsIdent(t, "override") || IsIdent(t, "final") ||
          IsIdent(t, "mutable") || IsIdent(t, "try") ||
          IsPunct(t, "&")) {
        ++k;
        continue;
      }
      if (IsPunct(t, "->")) {
        // Trailing return type: consume idents / '::' / template args /
        // '*' / '&' until the body brace or a disqualifier.
        ++k;
        int angle = 0;
        while (k < toks.size()) {
          const Token& r = toks[k];
          if (IsPunct(r, "<")) ++angle;
          if (IsPunct(r, ">")) --angle;
          if (angle == 0 && (IsPunct(r, "{") || IsPunct(r, ";"))) break;
          if (angle == 0 && (IsPunct(r, ",") || IsPunct(r, ")") ||
                             IsPunct(r, "="))) {
            break;
          }
          ++k;
        }
        continue;
      }
      if (IsPunct(t, ":")) {
        // Constructor initializer list: `ident (...)` or `ident {...}`
        // entries separated by commas, then the body brace.
        ++k;
        bool bad = false;
        while (k < toks.size() && !IsPunct(toks[k], "{")) {
          // Entry name (possibly qualified / templated).
          while (k < toks.size() &&
                 (toks[k].kind == Token::Kind::kIdent ||
                  IsPunct(toks[k], "::") || IsPunct(toks[k], "<") ||
                  IsPunct(toks[k], ">"))) {
            ++k;
          }
          if (k >= toks.size() ||
              !(IsPunct(toks[k], "(") || IsPunct(toks[k], "{"))) {
            bad = true;
            break;
          }
          k = FindMatch(toks, k) + 1;
          if (k < toks.size() && IsPunct(toks[k], ",")) ++k;
        }
        if (bad) break;
        continue;
      }
      break;  // disqualifier
    }
    if (!is_def || k >= toks.size()) {
      i = params_end + 1;
      continue;
    }
    const size_t body_begin = k;
    const size_t body_end = FindMatch(toks, body_begin);
    FunctionDef def;
    def.name = toks[params_begin - 1].text;
    def.header_line = toks[params_begin - 1].line;
    def.params_begin = params_begin;
    def.params_end = params_end;
    def.body_begin = body_begin;
    def.body_end = body_end;
    funcs.push_back(std::move(def));
    // Skip the body wholesale: nested lambdas and local types fold into
    // this definition.
    i = body_end + 1;
  }
  return funcs;
}

// ---------------------------------------------------------------------------
// L2: deadline/cancellation propagation in src/engine/ and src/server/.

const std::set<std::string>& BlockingSyscalls() {
  static const std::set<std::string> kCalls = {
      "read",  "write",   "poll",    "ppoll",   "select",  "pselect",
      "accept", "accept4", "connect", "recv",    "recvfrom", "recvmsg",
      "send",  "sendto",  "sendmsg", "fsync",   "fdatasync"};
  return kCalls;
}

const std::set<std::string>& BudgetTypes() {
  static const std::set<std::string> kTypes = {
      "Deadline", "StopToken", "CancellationToken", "StepOptions"};
  return kTypes;
}

// A `::name(` call with no identifier before the '::' — i.e. the global
// namespace, which is how this codebase spells raw syscalls.
bool IsGlobalSyscall(const Tokens& toks, size_t i) {
  if (toks[i].kind != Token::Kind::kIdent) return false;
  if (BlockingSyscalls().count(toks[i].text) == 0) return false;
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (i == 0 || !IsPunct(toks[i - 1], "::")) return false;
  if (i >= 2 && (toks[i - 2].kind == Token::Kind::kIdent ||
                 IsPunct(toks[i - 2], ">"))) {
    return false;  // qualified name, not the global namespace
  }
  return true;
}

// Does the token index `i` start a blocking-primitive call?
// ParallelFor / WaitOnce (the unbounded wait; WaitOnceFor carries its own
// timeout) / this_thread sleeps / global blocking syscalls.
bool IsBlockingPrimitive(const Tokens& toks, size_t i, std::string* what) {
  const Token& t = toks[i];
  if (t.kind != Token::Kind::kIdent) return false;
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (t.text == "ParallelFor" || t.text == "WaitOnce" ||
      t.text == "sleep_for" || t.text == "sleep_until") {
    *what = t.text;
    return true;
  }
  if (IsGlobalSyscall(toks, i)) {
    *what = "::" + t.text;
    return true;
  }
  return false;
}

bool RangeMentionsBudget(const Tokens& toks, size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (IsAnyIdent(toks[i], BudgetTypes())) return true;
    // Polling an existing budget (member or captured) is budget evidence
    // too: the function can observe expiry even if the type name never
    // appears in its body.
    if ((toks[i].text == "ShouldStop" || toks[i].text == "expired" ||
         toks[i].text == "remaining_ms") &&
        toks[i].kind == Token::Kind::kIdent && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      return true;
    }
  }
  return false;
}

void CheckDeadlinePropagation(const ProjectContext& ctx,
                              std::vector<Diagnostic>* diags) {
  struct FnInfo {
    const LexedFile* file;
    FunctionDef def;
    bool budget_params = false;
    bool budget_anywhere = false;
    bool directly_blocks = false;
  };
  std::vector<FnInfo> fns;
  std::map<std::string, int> name_count;

  for (const LexedFile& file : ctx.files) {
    if (!StartsWith(file.path, "src/engine/") &&
        !StartsWith(file.path, "src/server/")) {
      continue;
    }
    for (FunctionDef& def : ExtractFunctionsImpl(file.tokens)) {
      FnInfo info;
      info.file = &file;
      info.budget_params =
          RangeMentionsBudget(file.tokens, def.params_begin, def.params_end);
      info.budget_anywhere =
          info.budget_params ||
          RangeMentionsBudget(file.tokens, def.body_begin, def.body_end);
      std::string what;
      for (size_t i = def.body_begin; i < def.body_end; ++i) {
        if (IsBlockingPrimitive(file.tokens, i, &what)) {
          info.directly_blocks = true;
          break;
        }
      }
      info.def = std::move(def);
      name_count[info.def.name]++;
      fns.push_back(std::move(info));
    }
  }

  // Functions that block and demand a budget from their caller: the
  // one-hop "transitive" tier of the rule.
  std::map<std::string, const FnInfo*> budgeted_blockers;
  for (const FnInfo& fn : fns) {
    if (fn.budget_params && fn.directly_blocks &&
        name_count[fn.def.name] == 1) {
      budgeted_blockers[fn.def.name] = &fn;
    }
  }

  for (const FnInfo& fn : fns) {
    if (fn.budget_anywhere) continue;
    const LexedFile& file = *fn.file;
    const bool fn_annotated = HasJustifiedAnnotation(
        file, fn.def.header_line, 3, "lint: unbounded");
    if (fn_annotated) continue;
    const Tokens& toks = file.tokens;
    for (size_t i = fn.def.body_begin; i < fn.def.body_end; ++i) {
      std::string what;
      if (IsBlockingPrimitive(toks, i, &what)) {
        if (HasJustifiedAnnotation(file, toks[i].line, 3, "lint: unbounded")) {
          continue;
        }
        Add(diags, file.path, toks[i].line, "L2",
            "'" + fn.def.name + "' calls " + what +
                " but accepts no Deadline/StopToken and polls no budget "
                "(annotate 'lint: unbounded(<why>)' if this is by design)");
        continue;
      }
      // One hop: calling a function that blocks under a caller-supplied
      // budget, without having a budget to hand it.
      const Token& t = toks[i];
      if (t.kind == Token::Kind::kIdent && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(") && t.text != fn.def.name) {
        auto it = budgeted_blockers.find(t.text);
        if (it != budgeted_blockers.end()) {
          if (HasJustifiedAnnotation(file, t.line, 3, "lint: unbounded")) {
            continue;
          }
          Add(diags, file.path, t.line, "L2",
              "'" + fn.def.name + "' calls '" + t.text +
                  "' (which blocks under a caller-supplied budget) without "
                  "accepting or constructing a Deadline/StopToken to "
                  "forward");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L3: untrusted wire numbers flow through the json_wire funnel.

bool WireFunnelFile(const std::string& path) {
  return path == "src/server/json.h" || path == "src/server/json.cc" ||
         path == "src/server/json_wire.h" || path == "src/server/json_wire.cc";
}

void CheckWireInput(const ProjectContext& ctx,
                    std::vector<Diagnostic>* diags) {
  for (const LexedFile& file : ctx.files) {
    if (!StartsWith(file.path, "src/server/") &&
        !StartsWith(file.path, "src/loadgen/")) {
      continue;
    }
    if (WireFunnelFile(file.path)) continue;
    const Tokens& toks = file.tokens;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!(IsPunct(toks[i], ".") || IsPunct(toks[i], "->"))) continue;
      if (!IsIdent(toks[i + 1], "number")) continue;
      if (!IsPunct(toks[i + 2], "(") || !IsPunct(toks[i + 3], ")")) continue;
      if (HasJustifiedAnnotation(file, toks[i + 1].line, 3,
                                 "lint: wire-checked")) {
        continue;
      }
      Add(diags, file.path, toks[i + 1].line, "L3",
          "raw JsonValue::number() outside src/server/json_wire: use "
          "WireCount/WireIndex/WireMs/WireNumber, or justify a locally "
          "validated read with 'lint: wire-checked(<why>)'");
    }
  }
}

// ---------------------------------------------------------------------------
// L4: justified discards + literal, well-formed metric names.

}  // namespace

bool MetricNameOk(const std::string& literal) {
  // literal is the raw spelling, quotes included.
  if (literal.size() < 2 || literal.front() != '"' || literal.back() != '"') {
    return false;
  }
  const std::string name = literal.substr(1, literal.size() - 2);
  if (name.rfind("subdex_", 0) != 0) return false;
  size_t words = 0;
  size_t pos = 7;  // past "subdex_"
  while (pos <= name.size()) {
    const size_t next = name.find('_', pos);
    const std::string word =
        name.substr(pos, next == std::string::npos ? name.size() - pos
                                                   : next - pos);
    if (word.empty()) return false;
    for (char c : word) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))) return false;
    }
    ++words;
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return words >= 2;  // subsystem + at least one more word
}

namespace {

void CheckDiscardsAndMetrics(const ProjectContext& ctx,
                             std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kGetters = {"GetCounter", "GetGauge",
                                                 "GetHistogram"};
  for (const LexedFile& file : ctx.files) {
    const Tokens& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      // (void) discard in statement position.
      if (IsPunct(toks[i], "(") && i + 2 < toks.size() &&
          IsIdent(toks[i + 1], "void") && IsPunct(toks[i + 2], ")")) {
        const bool stmt_position =
            i == 0 || IsPunct(toks[i - 1], ";") || IsPunct(toks[i - 1], "{") ||
            IsPunct(toks[i - 1], "}");
        if (stmt_position &&
            !file.HasCommentInRange(toks[i].line - 3, toks[i].line)) {
          Add(diags, file.path, toks[i].line, "L4",
              "unjustified (void) discard: add a comment saying why the "
              "value is safe to drop");
        }
      }
      // Metric registration names.
      if (IsAnyIdent(toks[i], kGetters) && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")) {
        // The registry's own generic plumbing handles names as variables.
        if (StartsWith(file.path, "src/util/metrics.")) continue;
        if (i + 2 < toks.size() &&
            toks[i + 2].kind == Token::Kind::kString) {
          if (!MetricNameOk(toks[i + 2].text)) {
            Add(diags, file.path, toks[i + 2].line, "L4",
                "metric name " + toks[i + 2].text +
                    " must match subdex_<subsystem>_<name> "
                    "(lowercase words joined by '_')");
          }
        } else if (i > 0 &&
                   (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
          Add(diags, file.path, toks[i].line, "L4",
              "metric registered with a non-literal name: the name must be "
              "a string literal so its shape is checkable");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C1: raw std synchronization primitives / raw cv waits.

void CheckRawSync(const ProjectContext& ctx, std::vector<Diagnostic>* diags) {
  // Bare std::condition_variable is deliberately absent: MutexLock::WaitOnce
  // bridges to it, so cv members next to a subdex::Mutex are the sanctioned
  // pattern (util/mutex.h) — only raw .wait*() calls on one are banned.
  static const std::set<std::string> kPrimitives = {
      "mutex",        "timed_mutex",        "recursive_mutex",
      "shared_mutex", "shared_timed_mutex", "lock_guard",
      "unique_lock",  "scoped_lock",        "condition_variable_any"};
  static const std::set<std::string> kWaits = {"wait", "wait_for",
                                               "wait_until"};
  for (const LexedFile& file : ctx.files) {
    if (file.path == "src/util/mutex.h") continue;
    const Tokens& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (IsIdent(toks[i], "std") && i + 2 < toks.size() &&
          IsPunct(toks[i + 1], "::") && IsAnyIdent(toks[i + 2], kPrimitives)) {
        Add(diags, file.path, toks[i].line, "C1",
            "raw std::" + toks[i + 2].text +
                " (use subdex::Mutex / MutexLock from util/mutex.h)");
      }
      if ((IsPunct(toks[i], ".") || IsPunct(toks[i], "->")) &&
          i + 2 < toks.size() && IsAnyIdent(toks[i + 1], kWaits) &&
          IsPunct(toks[i + 2], "(")) {
        Add(diags, file.path, toks[i + 1].line, "C1",
            "raw ." + toks[i + 1].text +
                "() wait (use MutexLock::WaitOnce / WaitOnceFor)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C2: every Mutex member carries a literal name.

void CheckNamedMutexes(const ProjectContext& ctx,
                       std::vector<Diagnostic>* diags) {
  for (const LexedFile& file : ctx.files) {
    const Tokens& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "Mutex")) continue;
      if (i > 0 && IsPunct(toks[i - 1], "::")) continue;  // qualified type use
      if (toks[i + 1].kind != Token::Kind::kIdent) continue;
      if (i + 2 >= toks.size()) continue;
      const Token& after = toks[i + 2];
      bool bad = false;
      if (IsPunct(after, ";") || IsPunct(after, "=")) {
        bad = true;  // default-constructed or copy-initialized: unnamed
      } else if (IsPunct(after, "{") || IsPunct(after, "(")) {
        bad = !(i + 3 < toks.size() &&
                toks[i + 3].kind == Token::Kind::kString);
      } else {
        continue;  // reference/pointer/declaration shapes
      }
      if (bad) {
        Add(diags, file.path, toks[i].line, "C2",
            "Mutex '" + toks[i + 1].text +
                "' constructed without a literal name (declare as: Mutex "
                "mu_{\"subsystem.lock\", lock_rank::k...};)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C3: no blocking syscall inside a MutexLock scope in src/server/.

void CheckBlockingUnderLock(const ProjectContext& ctx,
                            std::vector<Diagnostic>* diags) {
  for (const LexedFile& file : ctx.files) {
    if (!StartsWith(file.path, "src/server/")) continue;
    if (file.path.size() < 3 ||
        file.path.compare(file.path.size() - 3, 3, ".cc") != 0) {
      continue;
    }
    const Tokens& toks = file.tokens;
    int depth = 0;
    std::vector<int> lock_depths;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (IsPunct(t, "{")) {
        ++depth;
        continue;
      }
      if (IsPunct(t, "}")) {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth) {
          lock_depths.pop_back();
        }
        continue;
      }
      if (IsIdent(t, "MutexLock") && i + 2 < toks.size() &&
          toks[i + 1].kind == Token::Kind::kIdent &&
          (IsPunct(toks[i + 2], "(") || IsPunct(toks[i + 2], "{"))) {
        lock_depths.push_back(depth);
        continue;
      }
      if (!lock_depths.empty() && IsGlobalSyscall(toks, i)) {
        if (!file.HasCommentInRange(t.line - 3, t.line,
                                    "lock-lint: nonblocking")) {
          Add(diags, file.path, t.line, "C3",
              "::" + t.text +
                  "() inside a MutexLock scope (a stalled peer would hold "
                  "the lock; mark a genuinely non-blocking use with "
                  "'lock-lint: nonblocking')");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C4: cv waits loop on their predicate.

void CheckLoopedWaits(const ProjectContext& ctx,
                      std::vector<Diagnostic>* diags) {
  for (const LexedFile& file : ctx.files) {
    if (file.path == "src/util/mutex.h") continue;
    const Tokens& toks = file.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(IsPunct(toks[i], ".") || IsPunct(toks[i], "->"))) continue;
      const Token& callee = toks[i + 1];
      if (!(IsIdent(callee, "WaitOnce") || IsIdent(callee, "WaitOnceFor"))) {
        continue;
      }
      if (!IsPunct(toks[i + 2], "(")) continue;
      const int line = callee.line;
      bool looped = false;
      for (size_t j = i; j-- > 0;) {
        if (toks[j].line < line - 6) break;
        if (IsIdent(toks[j], "while") || IsIdent(toks[j], "for")) {
          looped = true;
          break;
        }
      }
      if (!looped &&
          file.HasCommentInRange(line - 6, line, "lock-lint: looped")) {
        looped = true;
      }
      if (!looped) {
        Add(diags, file.path, line, "C4",
            "." + callee.text +
                "() outside a predicate loop (spurious wakeups make an "
                "unlooped wait a race; wrap in while (...)/for (;;), or "
                "mark a structured loop with 'lock-lint: looped')");
      }
    }
  }
}

}  // namespace

std::vector<FunctionDef> ExtractFunctions(const LexedFile& file) {
  return ExtractFunctionsImpl(file.tokens);
}

std::vector<Diagnostic> RunChecks(const ProjectContext& ctx) {
  auto enabled = [&ctx](const char* rule) {
    return ctx.enabled_rules.empty() || ctx.enabled_rules.count(rule) > 0;
  };
  std::vector<Diagnostic> diags;
  if (enabled("C1")) CheckRawSync(ctx, &diags);
  if (enabled("C2")) CheckNamedMutexes(ctx, &diags);
  if (enabled("C3")) CheckBlockingUnderLock(ctx, &diags);
  if (enabled("C4")) CheckLoopedWaits(ctx, &diags);
  if (enabled("L1")) CheckLayering(ctx, &diags);
  if (enabled("L2")) CheckDeadlinePropagation(ctx, &diags);
  if (enabled("L3")) CheckWireInput(ctx, &diags);
  if (enabled("L4")) CheckDiscardsAndMetrics(ctx, &diags);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diags;
}

}  // namespace subdex_lint
