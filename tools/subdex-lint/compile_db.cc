#include "tools/subdex-lint/compile_db.h"

namespace subdex_lint {

namespace {

// Reads the JSON string starting at the opening quote `pos`; handles the
// escapes CMake actually emits (\\ and \"). Returns the decoded value and
// advances *pos past the closing quote.
std::string ReadJsonString(std::string_view text, size_t* pos) {
  std::string out;
  size_t p = *pos + 1;  // past the opening quote
  while (p < text.size() && text[p] != '"') {
    if (text[p] == '\\' && p + 1 < text.size()) {
      out.push_back(text[p + 1]);
      p += 2;
      continue;
    }
    out.push_back(text[p]);
    ++p;
  }
  *pos = p < text.size() ? p + 1 : p;
  return out;
}

}  // namespace

std::set<std::string> ReadCompileDbFiles(std::string_view json_text) {
  std::set<std::string> files;
  const std::string_view key = "\"file\"";
  size_t pos = 0;
  while ((pos = json_text.find(key, pos)) != std::string_view::npos) {
    pos += key.size();
    while (pos < json_text.size() &&
           (json_text[pos] == ' ' || json_text[pos] == '\t' ||
            json_text[pos] == '\n' || json_text[pos] == ':')) {
      ++pos;
    }
    if (pos < json_text.size() && json_text[pos] == '"') {
      files.insert(ReadJsonString(json_text, &pos));
    }
  }
  return files;
}

}  // namespace subdex_lint
