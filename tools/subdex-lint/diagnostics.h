#ifndef SUBDEX_TOOLS_SUBDEX_LINT_DIAGNOSTICS_H_
#define SUBDEX_TOOLS_SUBDEX_LINT_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace subdex_lint {

struct Diagnostic {
  std::string file;  // project-relative path
  int line = 0;
  std::string rule;     // "C1".."C4", "L1".."L4"
  std::string message;  // what is wrong at this site
};

// One rule of the check catalog. `rationale` is the one-line "why this
// rule exists" printed with every diagnostic (DESIGN.md §15 holds the
// long form).
struct RuleInfo {
  const char* id;
  const char* summary;
  const char* rationale;
};

inline const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kRules = {
      {"C1", "no raw std synchronization primitives or raw cv waits",
       "subdex::Mutex/MutexLock carry the thread-safety annotations and "
       "deadlock-detector hooks; a raw std primitive bypasses both"},
      {"C2", "every subdex::Mutex is named at construction",
       "an unnamed Mutex is invisible in detector reports and unplaceable "
       "in the lock-rank hierarchy"},
      {"C3", "no blocking syscall inside a MutexLock scope in src/server/",
       "a peer that stalls the syscall would hold the lock for the whole "
       "stall, freezing every other session on that shard"},
      {"C4", "every cv wait loops on its predicate",
       "spurious wakeups make an unlooped WaitOnce a race; the wait must "
       "re-check its predicate in a loop"},
      {"L1", "subsystem includes follow the declared DAG in ci/layers.txt",
       "the persistent-index and streaming-ingestion work depends on "
       "engine/storage layering staying acyclic and explicit"},
      {"L2", "blocking engine/server code accepts a Deadline/StopToken",
       "a function that can block without a budget silently breaks the "
       "anytime contract every interactive step depends on"},
      {"L3", "wire numbers flow through the json_wire bounds-checked funnel",
       "an untrusted JSON number used directly as a size/index/count is a "
       "remote allocation or OOB primitive"},
      {"L4", "discards are justified; metric names are literal and "
       "subdex_<subsystem>_<name>",
       "a bare (void) discard swallows a [[nodiscard]] error, and a "
       "non-conforming metric name breaks dashboard grouping"},
  };
  return kRules;
}

inline const RuleInfo* FindRule(const std::string& id) {
  for (const RuleInfo& r : RuleCatalog()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

}  // namespace subdex_lint

#endif  // SUBDEX_TOOLS_SUBDEX_LINT_DIAGNOSTICS_H_
