#include "tools/subdex-lint/lexer.h"

#include <cctype>

namespace subdex_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  Lexer(std::string path, std::string_view text)
      : text_(text) {
    out_.path = std::move(path);
  }

  LexedFile Run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        LexPreprocessorLine();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      if (c == 'R' && Peek(1) == '"') {
        LexRawString();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void Emit(Token::Kind kind, size_t begin, size_t end, int line) {
    out_.tokens.push_back(
        {kind, std::string(text_.substr(begin, end - begin)), line});
  }

  void LexLineComment() {
    const size_t begin = pos_ + 2;
    const int line = line_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        {line, line, std::string(text_.substr(begin, pos_ - begin))});
  }

  void LexBlockComment() {
    const size_t begin = pos_ + 2;
    const int line = line_;
    pos_ += 2;
    while (pos_ < text_.size() &&
           !(text_[pos_] == '*' && Peek(1) == '/')) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    const size_t end = pos_;
    if (pos_ < text_.size()) pos_ += 2;  // consume */
    out_.comments.push_back(
        {line, line_, std::string(text_.substr(begin, end - begin))});
  }

  // Consumes a whole directive line including `\` continuations. The only
  // content extracted is an #include path; trailing `//` comments on the
  // directive line are still recorded (justification comments sit there).
  void LexPreprocessorLine() {
    const int line = line_;
    size_t p = pos_ + 1;
    while (p < text_.size() && (text_[p] == ' ' || text_[p] == '\t')) ++p;
    size_t kw_end = p;
    while (kw_end < text_.size() && IsIdentChar(text_[kw_end])) ++kw_end;
    const std::string_view keyword = text_.substr(p, kw_end - p);
    if (keyword == "include") {
      size_t q = kw_end;
      while (q < text_.size() && (text_[q] == ' ' || text_[q] == '\t')) ++q;
      if (q < text_.size() && (text_[q] == '"' || text_[q] == '<')) {
        const char close = text_[q] == '"' ? '"' : '>';
        const size_t path_begin = q + 1;
        size_t path_end = path_begin;
        while (path_end < text_.size() && text_[path_end] != close &&
               text_[path_end] != '\n') {
          ++path_end;
        }
        out_.includes.push_back(
            {line, std::string(text_.substr(path_begin, path_end - path_begin)),
             close == '>'});
      }
    }
    // Consume to end of line, honoring continuations and embedded comments.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;  // LexLineComment stops before the newline
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;  // main loop handles the newline
      ++pos_;
    }
    at_line_start_ = true;
  }

  void LexString() {
    const size_t begin = pos_;
    const int line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') {  // unterminated; stop at the line break
        break;
      }
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '"') ++pos_;
    Emit(Token::Kind::kString, begin, pos_, line);
  }

  void LexCharLiteral() {
    const size_t begin = pos_;
    const int line = line_;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') break;
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') ++pos_;
    Emit(Token::Kind::kChar, begin, pos_, line);
  }

  void LexRawString() {
    const size_t begin = pos_;
    const int line = line_;
    size_t p = pos_ + 2;  // past R"
    size_t delim_end = p;
    while (delim_end < text_.size() && text_[delim_end] != '(' &&
           delim_end - p < 16) {
      ++delim_end;
    }
    if (delim_end >= text_.size() || text_[delim_end] != '(') {
      // Not actually a raw string (e.g. `R"` at EOF); lex as ident + string.
      Emit(Token::Kind::kIdent, pos_, pos_ + 1, line);
      ++pos_;
      return;
    }
    const std::string closer =
        ")" + std::string(text_.substr(p, delim_end - p)) + "\"";
    size_t q = delim_end + 1;
    while (q < text_.size() && text_.substr(q, closer.size()) != closer) {
      if (text_[q] == '\n') ++line_;
      ++q;
    }
    if (q < text_.size()) q += closer.size();
    Emit(Token::Kind::kString, begin, q, line);
    pos_ = q;
  }

  void LexIdent() {
    const size_t begin = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    Emit(Token::Kind::kIdent, begin, pos_, line_);
  }

  // pp-number, loosely: digits plus idents/dots/quotes and sign chars
  // after e/E/p/P. Lint rules never read numeric values, so precision is
  // unnecessary — only the token boundary matters.
  void LexNumber() {
    const size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(Token::Kind::kNumber, begin, pos_, line_);
  }

  void LexPunct() {
    // "::" and "->" are the two multi-char tokens the checks navigate by.
    if (text_[pos_] == ':' && Peek(1) == ':') {
      Emit(Token::Kind::kPunct, pos_, pos_ + 2, line_);
      pos_ += 2;
      return;
    }
    if (text_[pos_] == '-' && Peek(1) == '>') {
      Emit(Token::Kind::kPunct, pos_, pos_ + 2, line_);
      pos_ += 2;
      return;
    }
    Emit(Token::Kind::kPunct, pos_, pos_ + 1, line_);
    ++pos_;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

bool LexedFile::HasCommentInRange(int first_line, int last_line,
                                  std::string_view needle) const {
  for (const Comment& c : comments) {
    if (c.end_line < first_line || c.line > last_line) continue;
    if (needle.empty() || c.text.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

LexedFile LexFile(std::string path, std::string_view text) {
  return Lexer(std::move(path), text).Run();
}

}  // namespace subdex_lint
