#include "tools/subdex-lint/layers.h"

#include <algorithm>
#include <sstream>

namespace subdex_lint {

namespace {

bool ValidName(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

std::vector<std::string> SplitWords(std::string_view text) {
  std::vector<std::string> words;
  std::istringstream in{std::string(text)};
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

}  // namespace

bool ParseLayersFile(std::string_view text, LayerGraph* out,
                     std::string* error) {
  LayerGraph graph;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;  // blank / comment-only
    line = line.substr(first);

    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      *error = "layers.txt:" + std::to_string(line_no) +
               ": expected '<subsystem>: <deps...>'";
      return false;
    }
    std::string name{line.substr(0, colon)};
    while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
      name.pop_back();
    }
    if (!ValidName(name)) {
      *error = "layers.txt:" + std::to_string(line_no) +
               ": invalid subsystem name '" + name + "'";
      return false;
    }
    if (graph.Declared(name)) {
      *error = "layers.txt:" + std::to_string(line_no) +
               ": duplicate subsystem '" + name + "'";
      return false;
    }
    std::set<std::string> deps;
    for (const std::string& dep : SplitWords(line.substr(colon + 1))) {
      if (!ValidName(dep)) {
        *error = "layers.txt:" + std::to_string(line_no) +
                 ": invalid dependency name '" + dep + "'";
        return false;
      }
      if (dep == name) {
        *error = "layers.txt:" + std::to_string(line_no) + ": '" + name +
                 "' lists itself as a dependency";
        return false;
      }
      deps.insert(dep);
    }
    graph.subsystems.push_back(name);
    graph.allowed.emplace(std::move(name), std::move(deps));
  }
  *out = std::move(graph);
  return true;
}

bool ValidateDeclaredDeps(const LayerGraph& graph, std::string* error) {
  for (const std::string& sub : graph.subsystems) {
    for (const std::string& dep : graph.allowed.at(sub)) {
      if (!graph.Declared(dep)) {
        *error = "layers.txt: subsystem '" + sub +
                 "' depends on undeclared subsystem '" + dep + "'";
        return false;
      }
    }
  }
  return true;
}

std::vector<std::string> FindCycle(const LayerGraph& graph) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const std::string& s : graph.subsystems) color[s] = Color::kWhite;

  // Iterative DFS keeping the gray path, so the cycle can be read off it.
  struct Frame {
    std::string node;
    std::vector<std::string> deps;  // sorted (std::set order): deterministic
    size_t next = 0;
  };
  for (const std::string& root : graph.subsystems) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack;
    auto push = [&](const std::string& node) {
      color[node] = Color::kGray;
      Frame f;
      f.node = node;
      const auto& deps = graph.allowed.at(node);
      f.deps.assign(deps.begin(), deps.end());
      stack.push_back(std::move(f));
    };
    push(root);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.deps.size()) {
        color[top.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string dep = top.deps[top.next++];
      auto it = color.find(dep);
      if (it == color.end()) continue;  // undeclared dep: reported elsewhere
      if (it->second == Color::kGray) {
        // Back edge: the cycle is the gray path from `dep` to here, closed.
        std::vector<std::string> cycle;
        size_t start = 0;
        while (start < stack.size() && stack[start].node != dep) ++start;
        for (size_t i = start; i < stack.size(); ++i) {
          cycle.push_back(stack[i].node);
        }
        cycle.push_back(dep);
        return cycle;
      }
      if (it->second == Color::kWhite) push(dep);
    }
  }
  return {};
}

}  // namespace subdex_lint
