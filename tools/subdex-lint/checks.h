#ifndef SUBDEX_TOOLS_SUBDEX_LINT_CHECKS_H_
#define SUBDEX_TOOLS_SUBDEX_LINT_CHECKS_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/subdex-lint/diagnostics.h"
#include "tools/subdex-lint/layers.h"
#include "tools/subdex-lint/lexer.h"

namespace subdex_lint {

// A function definition recovered from the token stream: name, header
// line, parameter token range, body token range. Nested definitions
// (lambdas, local structs) are folded into the outermost enclosing
// function — L2 reasons about what a *call into this function* can do.
struct FunctionDef {
  std::string name;  // last identifier before '(' (method name for A::B)
  int header_line = 0;
  size_t params_begin = 0;  // token index of '('
  size_t params_end = 0;    // token index of matching ')'
  size_t body_begin = 0;    // token index of '{'
  size_t body_end = 0;      // token index of matching '}'
};

// Extracts function definitions from a lexed file. Token-level, so it is
// a recovery heuristic, not a parser — but on this codebase's style
// (clang-format, one definition per brace pair) it recovers every
// function the checks care about; the fixture suite pins that.
std::vector<FunctionDef> ExtractFunctions(const LexedFile& file);

// Everything the checks need about the project.
struct ProjectContext {
  // Files to analyze; LexedFile::path is project-relative
  // ("src/util/mutex.h"). Sorted by path.
  std::vector<LexedFile> files;
  // Declared subsystem DAG; when absent L1 only reports that it is
  // missing. Owned by the caller.
  const LayerGraph* layers = nullptr;
  // Subsystem directories that exist under src/ on disk (DAG coverage is
  // checked against this set, so layers.txt cannot silently rot).
  std::set<std::string> src_subsystems;
  // Rule ids to run; empty means all.
  std::set<std::string> enabled_rules;
};

// Runs every enabled check; returns diagnostics sorted by (file, line).
std::vector<Diagnostic> RunChecks(const ProjectContext& ctx);

// The metric-name grammar of rule L4, shared with the AST engine:
// `literal_spelling` is the raw token spelling, quotes included, and must
// read subdex_<subsystem>_<name> (lowercase words joined by '_').
bool MetricNameOk(const std::string& literal_spelling);

}  // namespace subdex_lint

#endif  // SUBDEX_TOOLS_SUBDEX_LINT_CHECKS_H_
