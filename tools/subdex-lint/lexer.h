#ifndef SUBDEX_TOOLS_SUBDEX_LINT_LEXER_H_
#define SUBDEX_TOOLS_SUBDEX_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace subdex_lint {

// A minimal C++ token stream built for lint rules, not compilation: it
// separates code from comments, string/char literals (including raw
// strings), and preprocessor directives, and it records the 1-based line
// of every token. This is the accuracy layer the text rules in ci/lint.sh
// lack — a `std::mutex` inside a string or a block comment never reaches
// the token stream, and a declaration reformatted across lines still
// arrives as the same token sequence.
struct Token {
  enum class Kind {
    kIdent,    // identifiers and keywords
    kNumber,   // pp-number (loosely lexed; value is never needed)
    kString,   // "...", R"(...)" — text is the raw spelling
    kChar,     // '...'
    kPunct,    // punctuation; "::" and "->" are single tokens
  };
  Kind kind;
  std::string text;
  int line;
};

// A comment, with the lines it spans. `text` excludes the delimiters.
struct Comment {
  int line;      // first line
  int end_line;  // last line (== line for `//` comments)
  std::string text;
};

// A `#include` directive.
struct IncludeDirective {
  int line;
  std::string path;  // between the quotes / angle brackets
  bool angled;       // <...> vs "..."
};

struct LexedFile {
  std::string path;  // as handed to LexFile (project-relative by contract)
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;

  // True when any comment covering a line in [first_line, last_line]
  // contains `needle` (empty needle: any comment at all). Lint rules use
  // this for the "justification on the line or within N lines above"
  // convention shared with ci/lint.sh.
  bool HasCommentInRange(int first_line, int last_line,
                         std::string_view needle = {}) const;
};

// Lexes `text`. Never fails: unterminated constructs are consumed to EOF,
// matching what a lint pass wants (flag what is visible, crash on
// nothing). Preprocessor directive lines are consumed whole (with `\`
// continuations) and do not produce tokens; `#include` paths are captured
// into `includes`.
LexedFile LexFile(std::string path, std::string_view text);

}  // namespace subdex_lint

#endif  // SUBDEX_TOOLS_SUBDEX_LINT_LEXER_H_
