file(REMOVE_RECURSE
  "CMakeFiles/fallacy_test.dir/fallacy_test.cc.o"
  "CMakeFiles/fallacy_test.dir/fallacy_test.cc.o.d"
  "fallacy_test"
  "fallacy_test.pdb"
  "fallacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
