# Empty compiler generated dependencies file for fallacy_test.
# This may be replaced when dependencies are built.
