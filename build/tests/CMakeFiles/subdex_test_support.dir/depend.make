# Empty dependencies file for subdex_test_support.
# This may be replaced when dependencies are built.
