file(REMOVE_RECURSE
  "libsubdex_test_support.a"
)
