file(REMOVE_RECURSE
  "CMakeFiles/subdex_test_support.dir/test_support.cc.o"
  "CMakeFiles/subdex_test_support.dir/test_support.cc.o.d"
  "libsubdex_test_support.a"
  "libsubdex_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
