# Empty compiler generated dependencies file for subjective_test.
# This may be replaced when dependencies are built.
