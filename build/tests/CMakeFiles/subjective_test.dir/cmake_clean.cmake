file(REMOVE_RECURSE
  "CMakeFiles/subjective_test.dir/subjective_test.cc.o"
  "CMakeFiles/subjective_test.dir/subjective_test.cc.o.d"
  "subjective_test"
  "subjective_test.pdb"
  "subjective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subjective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
