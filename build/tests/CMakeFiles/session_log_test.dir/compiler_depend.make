# Empty compiler generated dependencies file for session_log_test.
# This may be replaced when dependencies are built.
