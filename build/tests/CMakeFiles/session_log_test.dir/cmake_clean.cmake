file(REMOVE_RECURSE
  "CMakeFiles/session_log_test.dir/session_log_test.cc.o"
  "CMakeFiles/session_log_test.dir/session_log_test.cc.o.d"
  "session_log_test"
  "session_log_test.pdb"
  "session_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
