file(REMOVE_RECURSE
  "CMakeFiles/group_cache_test.dir/group_cache_test.cc.o"
  "CMakeFiles/group_cache_test.dir/group_cache_test.cc.o.d"
  "group_cache_test"
  "group_cache_test.pdb"
  "group_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
