# Empty compiler generated dependencies file for group_cache_test.
# This may be replaced when dependencies are built.
