file(REMOVE_RECURSE
  "CMakeFiles/db_io_test.dir/db_io_test.cc.o"
  "CMakeFiles/db_io_test.dir/db_io_test.cc.o.d"
  "db_io_test"
  "db_io_test.pdb"
  "db_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
