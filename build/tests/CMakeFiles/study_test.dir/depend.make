# Empty dependencies file for study_test.
# This may be replaced when dependencies are built.
