file(REMOVE_RECURSE
  "CMakeFiles/query_parser_test.dir/query_parser_test.cc.o"
  "CMakeFiles/query_parser_test.dir/query_parser_test.cc.o.d"
  "query_parser_test"
  "query_parser_test.pdb"
  "query_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
