# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/subjective_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/query_parser_test[1]_include.cmake")
include("/root/repo/build/tests/db_io_test[1]_include.cmake")
include("/root/repo/build/tests/session_log_test[1]_include.cmake")
include("/root/repo/build/tests/group_cache_test[1]_include.cmake")
include("/root/repo/build/tests/fallacy_test[1]_include.cmake")
