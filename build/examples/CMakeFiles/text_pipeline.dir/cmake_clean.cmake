file(REMOVE_RECURSE
  "CMakeFiles/text_pipeline.dir/text_pipeline.cpp.o"
  "CMakeFiles/text_pipeline.dir/text_pipeline.cpp.o.d"
  "text_pipeline"
  "text_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
