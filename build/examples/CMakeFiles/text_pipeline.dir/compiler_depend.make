# Empty compiler generated dependencies file for text_pipeline.
# This may be replaced when dependencies are built.
