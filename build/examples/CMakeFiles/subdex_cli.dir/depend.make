# Empty dependencies file for subdex_cli.
# This may be replaced when dependencies are built.
