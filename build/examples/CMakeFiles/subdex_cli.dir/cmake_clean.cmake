file(REMOVE_RECURSE
  "CMakeFiles/subdex_cli.dir/subdex_cli.cpp.o"
  "CMakeFiles/subdex_cli.dir/subdex_cli.cpp.o.d"
  "subdex_cli"
  "subdex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
