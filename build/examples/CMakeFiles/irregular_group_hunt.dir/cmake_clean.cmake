file(REMOVE_RECURSE
  "CMakeFiles/irregular_group_hunt.dir/irregular_group_hunt.cpp.o"
  "CMakeFiles/irregular_group_hunt.dir/irregular_group_hunt.cpp.o.d"
  "irregular_group_hunt"
  "irregular_group_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_group_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
