# Empty dependencies file for irregular_group_hunt.
# This may be replaced when dependencies are built.
