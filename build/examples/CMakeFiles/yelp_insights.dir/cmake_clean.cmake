file(REMOVE_RECURSE
  "CMakeFiles/yelp_insights.dir/yelp_insights.cpp.o"
  "CMakeFiles/yelp_insights.dir/yelp_insights.cpp.o.d"
  "yelp_insights"
  "yelp_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yelp_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
