# Empty dependencies file for yelp_insights.
# This may be replaced when dependencies are built.
