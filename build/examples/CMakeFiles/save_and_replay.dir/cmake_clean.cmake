file(REMOVE_RECURSE
  "CMakeFiles/save_and_replay.dir/save_and_replay.cpp.o"
  "CMakeFiles/save_and_replay.dir/save_and_replay.cpp.o.d"
  "save_and_replay"
  "save_and_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_and_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
