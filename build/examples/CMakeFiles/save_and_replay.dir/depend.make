# Empty dependencies file for save_and_replay.
# This may be replaced when dependencies are built.
