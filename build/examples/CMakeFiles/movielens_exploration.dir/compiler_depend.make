# Empty compiler generated dependencies file for movielens_exploration.
# This may be replaced when dependencies are built.
