file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_guidance.dir/bench_fig7_guidance.cc.o"
  "CMakeFiles/bench_fig7_guidance.dir/bench_fig7_guidance.cc.o.d"
  "bench_fig7_guidance"
  "bench_fig7_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
