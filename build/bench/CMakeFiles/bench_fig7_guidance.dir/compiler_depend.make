# Empty compiler generated dependencies file for bench_fig7_guidance.
# This may be replaced when dependencies are built.
