# Empty compiler generated dependencies file for bench_table5_utility_diversity.
# This may be replaced when dependencies are built.
