# Empty dependencies file for bench_ablation_utility_criteria.
# This may be replaced when dependencies are built.
