file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_utility_criteria.dir/bench_ablation_utility_criteria.cc.o"
  "CMakeFiles/bench_ablation_utility_criteria.dir/bench_ablation_utility_criteria.cc.o.d"
  "bench_ablation_utility_criteria"
  "bench_ablation_utility_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_utility_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
