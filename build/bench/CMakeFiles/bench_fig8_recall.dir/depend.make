# Empty dependencies file for bench_fig8_recall.
# This may be replaced when dependencies are built.
