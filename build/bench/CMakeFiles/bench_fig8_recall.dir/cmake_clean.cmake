file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_recall.dir/bench_fig8_recall.cc.o"
  "CMakeFiles/bench_fig8_recall.dir/bench_fig8_recall.cc.o.d"
  "bench_fig8_recall"
  "bench_fig8_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
