# Empty dependencies file for subdex_bench_common.
# This may be replaced when dependencies are built.
