file(REMOVE_RECURSE
  "libsubdex_bench_common.a"
)
