file(REMOVE_RECURSE
  "CMakeFiles/subdex_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/subdex_bench_common.dir/bench_common.cc.o.d"
  "libsubdex_bench_common.a"
  "libsubdex_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
