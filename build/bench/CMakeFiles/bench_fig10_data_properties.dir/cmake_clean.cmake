file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_data_properties.dir/bench_fig10_data_properties.cc.o"
  "CMakeFiles/bench_fig10_data_properties.dir/bench_fig10_data_properties.cc.o.d"
  "bench_fig10_data_properties"
  "bench_fig10_data_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_data_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
