# Empty dependencies file for bench_fig10_data_properties.
# This may be replaced when dependencies are built.
