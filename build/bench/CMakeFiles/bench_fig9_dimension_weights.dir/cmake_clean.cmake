file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dimension_weights.dir/bench_fig9_dimension_weights.cc.o"
  "CMakeFiles/bench_fig9_dimension_weights.dir/bench_fig9_dimension_weights.cc.o.d"
  "bench_fig9_dimension_weights"
  "bench_fig9_dimension_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dimension_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
