# Empty compiler generated dependencies file for bench_fig9_dimension_weights.
# This may be replaced when dependencies are built.
