# Empty dependencies file for bench_table4_reco_quality.
# This may be replaced when dependencies are built.
