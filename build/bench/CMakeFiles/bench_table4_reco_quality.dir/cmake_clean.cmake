file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_reco_quality.dir/bench_table4_reco_quality.cc.o"
  "CMakeFiles/bench_table4_reco_quality.dir/bench_table4_reco_quality.cc.o.d"
  "bench_table4_reco_quality"
  "bench_table4_reco_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_reco_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
