file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_map_distance.dir/bench_ablation_map_distance.cc.o"
  "CMakeFiles/bench_ablation_map_distance.dir/bench_ablation_map_distance.cc.o.d"
  "bench_ablation_map_distance"
  "bench_ablation_map_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_map_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
