
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_sharing.cc" "bench/CMakeFiles/bench_ablation_sharing.dir/bench_ablation_sharing.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_sharing.dir/bench_ablation_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/subdex_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/subdex_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/pruning/CMakeFiles/subdex_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/subdex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/subdex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/subjective/CMakeFiles/subdex_subjective.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/subdex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/subdex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
