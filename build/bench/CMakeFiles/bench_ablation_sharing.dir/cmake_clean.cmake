file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sharing.dir/bench_ablation_sharing.cc.o"
  "CMakeFiles/bench_ablation_sharing.dir/bench_ablation_sharing.cc.o.d"
  "bench_ablation_sharing"
  "bench_ablation_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
