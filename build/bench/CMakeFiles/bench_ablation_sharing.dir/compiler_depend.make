# Empty compiler generated dependencies file for bench_ablation_sharing.
# This may be replaced when dependencies are built.
