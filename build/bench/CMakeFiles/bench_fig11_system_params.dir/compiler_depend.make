# Empty compiler generated dependencies file for bench_fig11_system_params.
# This may be replaced when dependencies are built.
