file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_system_params.dir/bench_fig11_system_params.cc.o"
  "CMakeFiles/bench_fig11_system_params.dir/bench_fig11_system_params.cc.o.d"
  "bench_fig11_system_params"
  "bench_fig11_system_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_system_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
