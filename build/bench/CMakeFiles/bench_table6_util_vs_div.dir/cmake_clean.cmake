file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_util_vs_div.dir/bench_table6_util_vs_div.cc.o"
  "CMakeFiles/bench_table6_util_vs_div.dir/bench_table6_util_vs_div.cc.o.d"
  "bench_table6_util_vs_div"
  "bench_table6_util_vs_div.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_util_vs_div.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
