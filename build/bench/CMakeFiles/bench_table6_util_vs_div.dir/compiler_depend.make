# Empty compiler generated dependencies file for bench_table6_util_vs_div.
# This may be replaced when dependencies are built.
