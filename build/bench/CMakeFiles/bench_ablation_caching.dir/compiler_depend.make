# Empty compiler generated dependencies file for bench_ablation_caching.
# This may be replaced when dependencies are built.
