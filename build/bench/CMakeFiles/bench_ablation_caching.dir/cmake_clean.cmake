file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_caching.dir/bench_ablation_caching.cc.o"
  "CMakeFiles/bench_ablation_caching.dir/bench_ablation_caching.cc.o.d"
  "bench_ablation_caching"
  "bench_ablation_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
