# Empty dependencies file for subdex_text.
# This may be replaced when dependencies are built.
