
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/review_extraction.cc" "src/text/CMakeFiles/subdex_text.dir/review_extraction.cc.o" "gcc" "src/text/CMakeFiles/subdex_text.dir/review_extraction.cc.o.d"
  "/root/repo/src/text/review_generator.cc" "src/text/CMakeFiles/subdex_text.dir/review_generator.cc.o" "gcc" "src/text/CMakeFiles/subdex_text.dir/review_generator.cc.o.d"
  "/root/repo/src/text/sentiment.cc" "src/text/CMakeFiles/subdex_text.dir/sentiment.cc.o" "gcc" "src/text/CMakeFiles/subdex_text.dir/sentiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
