file(REMOVE_RECURSE
  "libsubdex_text.a"
)
