file(REMOVE_RECURSE
  "CMakeFiles/subdex_text.dir/review_extraction.cc.o"
  "CMakeFiles/subdex_text.dir/review_extraction.cc.o.d"
  "CMakeFiles/subdex_text.dir/review_generator.cc.o"
  "CMakeFiles/subdex_text.dir/review_generator.cc.o.d"
  "CMakeFiles/subdex_text.dir/sentiment.cc.o"
  "CMakeFiles/subdex_text.dir/sentiment.cc.o.d"
  "libsubdex_text.a"
  "libsubdex_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
