# Empty compiler generated dependencies file for subdex_study.
# This may be replaced when dependencies are built.
