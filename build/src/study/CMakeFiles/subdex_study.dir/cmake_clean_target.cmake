file(REMOVE_RECURSE
  "libsubdex_study.a"
)
