file(REMOVE_RECURSE
  "CMakeFiles/subdex_study.dir/detection.cc.o"
  "CMakeFiles/subdex_study.dir/detection.cc.o.d"
  "CMakeFiles/subdex_study.dir/experiment.cc.o"
  "CMakeFiles/subdex_study.dir/experiment.cc.o.d"
  "CMakeFiles/subdex_study.dir/scenario_runner.cc.o"
  "CMakeFiles/subdex_study.dir/scenario_runner.cc.o.d"
  "CMakeFiles/subdex_study.dir/simulated_user.cc.o"
  "CMakeFiles/subdex_study.dir/simulated_user.cc.o.d"
  "libsubdex_study.a"
  "libsubdex_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
