file(REMOVE_RECURSE
  "libsubdex_util.a"
)
