# Empty compiler generated dependencies file for subdex_util.
# This may be replaced when dependencies are built.
