file(REMOVE_RECURSE
  "CMakeFiles/subdex_util.dir/bitmap.cc.o"
  "CMakeFiles/subdex_util.dir/bitmap.cc.o.d"
  "CMakeFiles/subdex_util.dir/random.cc.o"
  "CMakeFiles/subdex_util.dir/random.cc.o.d"
  "CMakeFiles/subdex_util.dir/stats.cc.o"
  "CMakeFiles/subdex_util.dir/stats.cc.o.d"
  "CMakeFiles/subdex_util.dir/string_util.cc.o"
  "CMakeFiles/subdex_util.dir/string_util.cc.o.d"
  "CMakeFiles/subdex_util.dir/thread_pool.cc.o"
  "CMakeFiles/subdex_util.dir/thread_pool.cc.o.d"
  "libsubdex_util.a"
  "libsubdex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
