
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/exploration_session.cc" "src/engine/CMakeFiles/subdex_engine.dir/exploration_session.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/exploration_session.cc.o.d"
  "/root/repo/src/engine/fallacy.cc" "src/engine/CMakeFiles/subdex_engine.dir/fallacy.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/fallacy.cc.o.d"
  "/root/repo/src/engine/group_cache.cc" "src/engine/CMakeFiles/subdex_engine.dir/group_cache.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/group_cache.cc.o.d"
  "/root/repo/src/engine/personalized.cc" "src/engine/CMakeFiles/subdex_engine.dir/personalized.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/personalized.cc.o.d"
  "/root/repo/src/engine/recommendation_builder.cc" "src/engine/CMakeFiles/subdex_engine.dir/recommendation_builder.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/recommendation_builder.cc.o.d"
  "/root/repo/src/engine/rm_generator.cc" "src/engine/CMakeFiles/subdex_engine.dir/rm_generator.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/rm_generator.cc.o.d"
  "/root/repo/src/engine/rm_pipeline.cc" "src/engine/CMakeFiles/subdex_engine.dir/rm_pipeline.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/rm_pipeline.cc.o.d"
  "/root/repo/src/engine/rm_selector.cc" "src/engine/CMakeFiles/subdex_engine.dir/rm_selector.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/rm_selector.cc.o.d"
  "/root/repo/src/engine/sde_engine.cc" "src/engine/CMakeFiles/subdex_engine.dir/sde_engine.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/sde_engine.cc.o.d"
  "/root/repo/src/engine/session_log.cc" "src/engine/CMakeFiles/subdex_engine.dir/session_log.cc.o" "gcc" "src/engine/CMakeFiles/subdex_engine.dir/session_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pruning/CMakeFiles/subdex_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/subdex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/subjective/CMakeFiles/subdex_subjective.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/subdex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
