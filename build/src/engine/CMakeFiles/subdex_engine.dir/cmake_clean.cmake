file(REMOVE_RECURSE
  "CMakeFiles/subdex_engine.dir/exploration_session.cc.o"
  "CMakeFiles/subdex_engine.dir/exploration_session.cc.o.d"
  "CMakeFiles/subdex_engine.dir/fallacy.cc.o"
  "CMakeFiles/subdex_engine.dir/fallacy.cc.o.d"
  "CMakeFiles/subdex_engine.dir/group_cache.cc.o"
  "CMakeFiles/subdex_engine.dir/group_cache.cc.o.d"
  "CMakeFiles/subdex_engine.dir/personalized.cc.o"
  "CMakeFiles/subdex_engine.dir/personalized.cc.o.d"
  "CMakeFiles/subdex_engine.dir/recommendation_builder.cc.o"
  "CMakeFiles/subdex_engine.dir/recommendation_builder.cc.o.d"
  "CMakeFiles/subdex_engine.dir/rm_generator.cc.o"
  "CMakeFiles/subdex_engine.dir/rm_generator.cc.o.d"
  "CMakeFiles/subdex_engine.dir/rm_pipeline.cc.o"
  "CMakeFiles/subdex_engine.dir/rm_pipeline.cc.o.d"
  "CMakeFiles/subdex_engine.dir/rm_selector.cc.o"
  "CMakeFiles/subdex_engine.dir/rm_selector.cc.o.d"
  "CMakeFiles/subdex_engine.dir/sde_engine.cc.o"
  "CMakeFiles/subdex_engine.dir/sde_engine.cc.o.d"
  "CMakeFiles/subdex_engine.dir/session_log.cc.o"
  "CMakeFiles/subdex_engine.dir/session_log.cc.o.d"
  "libsubdex_engine.a"
  "libsubdex_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
