file(REMOVE_RECURSE
  "libsubdex_engine.a"
)
