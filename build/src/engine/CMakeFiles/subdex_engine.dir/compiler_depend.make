# Empty compiler generated dependencies file for subdex_engine.
# This may be replaced when dependencies are built.
