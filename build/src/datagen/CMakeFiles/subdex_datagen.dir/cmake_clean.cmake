file(REMOVE_RECURSE
  "CMakeFiles/subdex_datagen.dir/insights.cc.o"
  "CMakeFiles/subdex_datagen.dir/insights.cc.o.d"
  "CMakeFiles/subdex_datagen.dir/irregular.cc.o"
  "CMakeFiles/subdex_datagen.dir/irregular.cc.o.d"
  "CMakeFiles/subdex_datagen.dir/specs.cc.o"
  "CMakeFiles/subdex_datagen.dir/specs.cc.o.d"
  "CMakeFiles/subdex_datagen.dir/synthetic.cc.o"
  "CMakeFiles/subdex_datagen.dir/synthetic.cc.o.d"
  "CMakeFiles/subdex_datagen.dir/transforms.cc.o"
  "CMakeFiles/subdex_datagen.dir/transforms.cc.o.d"
  "libsubdex_datagen.a"
  "libsubdex_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
