file(REMOVE_RECURSE
  "libsubdex_datagen.a"
)
