# Empty compiler generated dependencies file for subdex_datagen.
# This may be replaced when dependencies are built.
