# Empty compiler generated dependencies file for subdex_baselines.
# This may be replaced when dependencies are built.
