
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/pattern.cc" "src/baselines/CMakeFiles/subdex_baselines.dir/pattern.cc.o" "gcc" "src/baselines/CMakeFiles/subdex_baselines.dir/pattern.cc.o.d"
  "/root/repo/src/baselines/qagview.cc" "src/baselines/CMakeFiles/subdex_baselines.dir/qagview.cc.o" "gcc" "src/baselines/CMakeFiles/subdex_baselines.dir/qagview.cc.o.d"
  "/root/repo/src/baselines/smart_drilldown.cc" "src/baselines/CMakeFiles/subdex_baselines.dir/smart_drilldown.cc.o" "gcc" "src/baselines/CMakeFiles/subdex_baselines.dir/smart_drilldown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/subjective/CMakeFiles/subdex_subjective.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/subdex_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
