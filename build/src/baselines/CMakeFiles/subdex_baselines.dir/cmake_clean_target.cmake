file(REMOVE_RECURSE
  "libsubdex_baselines.a"
)
