file(REMOVE_RECURSE
  "CMakeFiles/subdex_baselines.dir/pattern.cc.o"
  "CMakeFiles/subdex_baselines.dir/pattern.cc.o.d"
  "CMakeFiles/subdex_baselines.dir/qagview.cc.o"
  "CMakeFiles/subdex_baselines.dir/qagview.cc.o.d"
  "CMakeFiles/subdex_baselines.dir/smart_drilldown.cc.o"
  "CMakeFiles/subdex_baselines.dir/smart_drilldown.cc.o.d"
  "libsubdex_baselines.a"
  "libsubdex_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
