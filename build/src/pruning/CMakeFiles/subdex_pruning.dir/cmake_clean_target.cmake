file(REMOVE_RECURSE
  "libsubdex_pruning.a"
)
