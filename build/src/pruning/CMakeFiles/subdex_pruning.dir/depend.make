# Empty dependencies file for subdex_pruning.
# This may be replaced when dependencies are built.
