
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pruning/ci_pruner.cc" "src/pruning/CMakeFiles/subdex_pruning.dir/ci_pruner.cc.o" "gcc" "src/pruning/CMakeFiles/subdex_pruning.dir/ci_pruner.cc.o.d"
  "/root/repo/src/pruning/mab_pruner.cc" "src/pruning/CMakeFiles/subdex_pruning.dir/mab_pruner.cc.o" "gcc" "src/pruning/CMakeFiles/subdex_pruning.dir/mab_pruner.cc.o.d"
  "/root/repo/src/pruning/multi_aggregate_scan.cc" "src/pruning/CMakeFiles/subdex_pruning.dir/multi_aggregate_scan.cc.o" "gcc" "src/pruning/CMakeFiles/subdex_pruning.dir/multi_aggregate_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/subdex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/subjective/CMakeFiles/subdex_subjective.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/subdex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
