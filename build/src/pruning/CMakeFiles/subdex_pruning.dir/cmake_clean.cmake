file(REMOVE_RECURSE
  "CMakeFiles/subdex_pruning.dir/ci_pruner.cc.o"
  "CMakeFiles/subdex_pruning.dir/ci_pruner.cc.o.d"
  "CMakeFiles/subdex_pruning.dir/mab_pruner.cc.o"
  "CMakeFiles/subdex_pruning.dir/mab_pruner.cc.o.d"
  "CMakeFiles/subdex_pruning.dir/multi_aggregate_scan.cc.o"
  "CMakeFiles/subdex_pruning.dir/multi_aggregate_scan.cc.o.d"
  "libsubdex_pruning.a"
  "libsubdex_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
