file(REMOVE_RECURSE
  "CMakeFiles/subdex_storage.dir/csv.cc.o"
  "CMakeFiles/subdex_storage.dir/csv.cc.o.d"
  "CMakeFiles/subdex_storage.dir/dictionary.cc.o"
  "CMakeFiles/subdex_storage.dir/dictionary.cc.o.d"
  "CMakeFiles/subdex_storage.dir/predicate.cc.o"
  "CMakeFiles/subdex_storage.dir/predicate.cc.o.d"
  "CMakeFiles/subdex_storage.dir/query_parser.cc.o"
  "CMakeFiles/subdex_storage.dir/query_parser.cc.o.d"
  "CMakeFiles/subdex_storage.dir/schema.cc.o"
  "CMakeFiles/subdex_storage.dir/schema.cc.o.d"
  "CMakeFiles/subdex_storage.dir/table.cc.o"
  "CMakeFiles/subdex_storage.dir/table.cc.o.d"
  "libsubdex_storage.a"
  "libsubdex_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
