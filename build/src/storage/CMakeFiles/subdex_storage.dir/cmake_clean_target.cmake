file(REMOVE_RECURSE
  "libsubdex_storage.a"
)
