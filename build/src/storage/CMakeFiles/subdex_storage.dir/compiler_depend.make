# Empty compiler generated dependencies file for subdex_storage.
# This may be replaced when dependencies are built.
