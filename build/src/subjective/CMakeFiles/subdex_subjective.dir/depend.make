# Empty dependencies file for subdex_subjective.
# This may be replaced when dependencies are built.
