file(REMOVE_RECURSE
  "libsubdex_subjective.a"
)
