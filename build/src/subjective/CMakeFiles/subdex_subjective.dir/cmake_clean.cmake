file(REMOVE_RECURSE
  "CMakeFiles/subdex_subjective.dir/db_io.cc.o"
  "CMakeFiles/subdex_subjective.dir/db_io.cc.o.d"
  "CMakeFiles/subdex_subjective.dir/operation.cc.o"
  "CMakeFiles/subdex_subjective.dir/operation.cc.o.d"
  "CMakeFiles/subdex_subjective.dir/rating_group.cc.o"
  "CMakeFiles/subdex_subjective.dir/rating_group.cc.o.d"
  "CMakeFiles/subdex_subjective.dir/subjective_db.cc.o"
  "CMakeFiles/subdex_subjective.dir/subjective_db.cc.o.d"
  "libsubdex_subjective.a"
  "libsubdex_subjective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_subjective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
