
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subjective/db_io.cc" "src/subjective/CMakeFiles/subdex_subjective.dir/db_io.cc.o" "gcc" "src/subjective/CMakeFiles/subdex_subjective.dir/db_io.cc.o.d"
  "/root/repo/src/subjective/operation.cc" "src/subjective/CMakeFiles/subdex_subjective.dir/operation.cc.o" "gcc" "src/subjective/CMakeFiles/subdex_subjective.dir/operation.cc.o.d"
  "/root/repo/src/subjective/rating_group.cc" "src/subjective/CMakeFiles/subdex_subjective.dir/rating_group.cc.o" "gcc" "src/subjective/CMakeFiles/subdex_subjective.dir/rating_group.cc.o.d"
  "/root/repo/src/subjective/subjective_db.cc" "src/subjective/CMakeFiles/subdex_subjective.dir/subjective_db.cc.o" "gcc" "src/subjective/CMakeFiles/subdex_subjective.dir/subjective_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/subdex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
