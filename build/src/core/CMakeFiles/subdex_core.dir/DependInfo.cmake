
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distance.cc" "src/core/CMakeFiles/subdex_core.dir/distance.cc.o" "gcc" "src/core/CMakeFiles/subdex_core.dir/distance.cc.o.d"
  "/root/repo/src/core/gmm.cc" "src/core/CMakeFiles/subdex_core.dir/gmm.cc.o" "gcc" "src/core/CMakeFiles/subdex_core.dir/gmm.cc.o.d"
  "/root/repo/src/core/interestingness.cc" "src/core/CMakeFiles/subdex_core.dir/interestingness.cc.o" "gcc" "src/core/CMakeFiles/subdex_core.dir/interestingness.cc.o.d"
  "/root/repo/src/core/rating_distribution.cc" "src/core/CMakeFiles/subdex_core.dir/rating_distribution.cc.o" "gcc" "src/core/CMakeFiles/subdex_core.dir/rating_distribution.cc.o.d"
  "/root/repo/src/core/rating_map.cc" "src/core/CMakeFiles/subdex_core.dir/rating_map.cc.o" "gcc" "src/core/CMakeFiles/subdex_core.dir/rating_map.cc.o.d"
  "/root/repo/src/core/seen_maps.cc" "src/core/CMakeFiles/subdex_core.dir/seen_maps.cc.o" "gcc" "src/core/CMakeFiles/subdex_core.dir/seen_maps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/subjective/CMakeFiles/subdex_subjective.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/subdex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subdex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
