# Empty dependencies file for subdex_core.
# This may be replaced when dependencies are built.
