file(REMOVE_RECURSE
  "CMakeFiles/subdex_core.dir/distance.cc.o"
  "CMakeFiles/subdex_core.dir/distance.cc.o.d"
  "CMakeFiles/subdex_core.dir/gmm.cc.o"
  "CMakeFiles/subdex_core.dir/gmm.cc.o.d"
  "CMakeFiles/subdex_core.dir/interestingness.cc.o"
  "CMakeFiles/subdex_core.dir/interestingness.cc.o.d"
  "CMakeFiles/subdex_core.dir/rating_distribution.cc.o"
  "CMakeFiles/subdex_core.dir/rating_distribution.cc.o.d"
  "CMakeFiles/subdex_core.dir/rating_map.cc.o"
  "CMakeFiles/subdex_core.dir/rating_map.cc.o.d"
  "CMakeFiles/subdex_core.dir/seen_maps.cc.o"
  "CMakeFiles/subdex_core.dir/seen_maps.cc.o.d"
  "libsubdex_core.a"
  "libsubdex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
