file(REMOVE_RECURSE
  "libsubdex_core.a"
)
