// Fuzz harness for the subjective-database loaders (subjective/db_io.h).
//
// The first input byte selects the target; the rest is the payload:
//   even byte — ParseManifest over the payload. On success the manifest is
//               additionally used to construct a SubjectiveDatabase, which
//               proves the documented contract that a parsed manifest can
//               never trip the constructor's CHECKs (scale range, empty
//               dimension list, duplicate/empty attribute names).
//   odd byte  — LoadRatingsCsv over the payload into a small two-reviewer,
//               two-item database built fresh per input.
// Any abort is a finding; all malformed input must come back as a Status.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "subjective/db_io.h"
#include "subjective/subjective_db.h"

namespace {

std::unique_ptr<subdex::SubjectiveDatabase> MakeSmallDb() {
  subdex::Schema reviewer_schema(
      {{"level", subdex::AttributeType::kCategorical}});
  subdex::Schema item_schema({{"kind", subdex::AttributeType::kCategorical}});
  auto db = std::make_unique<subdex::SubjectiveDatabase>(
      reviewer_schema, item_schema,
      std::vector<std::string>{"food", "service"}, 5);
  if (!db->reviewers().AppendRow({std::string("gold")}).ok()) std::abort();
  if (!db->reviewers().AppendRow({std::string("new")}).ok()) std::abort();
  if (!db->items().AppendRow({std::string("cafe")}).ok()) std::abort();
  if (!db->items().AppendRow({std::string("bar")}).ok()) std::abort();
  return db;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data + 1), size - 1));
  if (data[0] % 2 == 0) {
    subdex::Result<subdex::DbManifest> manifest = subdex::ParseManifest(in);
    if (manifest.ok()) {
      const subdex::DbManifest& m = manifest.value();
      subdex::SubjectiveDatabase db(subdex::Schema(m.reviewer_attrs),
                                    subdex::Schema(m.item_attrs),
                                    m.dimensions, m.scale);
      volatile size_t dims = db.num_dimensions();
      (void)dims;
    }
  } else {
    std::unique_ptr<subdex::SubjectiveDatabase> db = MakeSmallDb();
    subdex::Status st = subdex::LoadRatingsCsv(in, db.get());
    if (st.ok()) db->FinalizeIndexes();
  }
  return 0;
}
