// Minimal driver that gives the libFuzzer-style harnesses a main() when the
// toolchain has no -fsanitize=fuzzer (the GCC-only CI image). Two modes:
//
//   driver [--runs=N] [--seed=S] [--max-len=L] PATH...
//
// Every PATH (file, or directory walked non-recursively) is replayed through
// LLVMFuzzerTestOneInput — this is the regression mode ci/check.sh and
// ci/sanitize.sh use on the committed corpora. With --runs=N the driver then
// feeds N additional inputs produced by a deterministic xorshift mutator
// over the corpus, so a bounded smoke of the parser still happens without
// libFuzzer. No coverage feedback; real fuzzing needs a clang build with
// SUBDEX_FUZZ=ON.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t g_state = 0x9e3779b97f4a7c15ull;

uint64_t NextRand() {
  // xorshift64: deterministic across platforms, no <random> seeding
  // variance, good enough to perturb corpus bytes.
  g_state ^= g_state << 13;
  g_state ^= g_state >> 7;
  g_state ^= g_state << 17;
  return g_state;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>* data, size_t max_len) {
  size_t ops = 1 + NextRand() % 4;
  for (size_t i = 0; i < ops; ++i) {
    switch (NextRand() % 4) {
      case 0:  // flip a byte
        if (!data->empty()) {
          (*data)[NextRand() % data->size()] =
              static_cast<uint8_t>(NextRand());
        }
        break;
      case 1:  // insert a byte
        if (data->size() < max_len) {
          data->insert(data->begin() + NextRand() % (data->size() + 1),
                       static_cast<uint8_t>(NextRand()));
        }
        break;
      case 2:  // erase a byte
        if (!data->empty()) {
          data->erase(data->begin() + NextRand() % data->size());
        }
        break;
      case 3:  // truncate
        if (!data->empty()) {
          data->resize(NextRand() % data->size());
        }
        break;
    }
  }
  if (data->size() > max_len) data->resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  size_t runs = 0;
  size_t max_len = 4096;
  std::vector<std::vector<uint8_t>> corpus;
  size_t replayed = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--runs=", 7) == 0) {
      runs = std::strtoull(arg + 7, nullptr, 10);
      continue;
    }
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      g_state = std::strtoull(arg + 7, nullptr, 10) | 1ull;
      continue;
    }
    if (std::strncmp(arg, "--max-len=", 10) == 0) {
      max_len = std::strtoull(arg + 10, nullptr, 10);
      continue;
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (!entry.is_regular_file()) continue;
        corpus.push_back(ReadFile(entry.path().string()));
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      corpus.push_back(ReadFile(arg));
    } else {
      std::fprintf(stderr, "standalone_driver: no such input: %s\n", arg);
      return 2;
    }
  }

  for (const std::vector<uint8_t>& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++replayed;
  }

  for (size_t i = 0; i < runs; ++i) {
    std::vector<uint8_t> input;
    if (!corpus.empty()) input = corpus[NextRand() % corpus.size()];
    Mutate(&input, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  std::printf("standalone_driver: replayed %zu corpus input(s), "
              "%zu mutated run(s)\n",
              replayed, runs);
  return 0;
}
