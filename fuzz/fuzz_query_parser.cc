// Fuzz harness for the query-predicate parser (storage/query_parser.h).
//
// Feeds arbitrary bytes through ParsePredicate against a small fixed-schema
// table. Accepted queries are additionally round-tripped: rendering the
// parsed predicate with PredicateToQuery and re-parsing it must reproduce
// the identical conjunct list. Any abort, sanitizer report, or round-trip
// mismatch is a finding.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "storage/query_parser.h"
#include "storage/table.h"

namespace {

subdex::Table MakeTable() {
  subdex::Schema schema({{"city", subdex::AttributeType::kCategorical},
                         {"cuisine", subdex::AttributeType::kMultiCategorical},
                         {"tag", subdex::AttributeType::kCategorical},
                         {"stars", subdex::AttributeType::kNumeric}});
  subdex::Table table(schema);
  subdex::Status st = table.AppendRow(
      {std::string("paris"),
       std::vector<std::string>{"french", "bistro"}, std::string("cozy"),
       4.5});
  if (!st.ok()) std::abort();
  st = table.AppendRow({std::string("tokyo"),
                        std::vector<std::string>{"sushi"},
                        std::string("it's-great"), 4.8});
  if (!st.ok()) std::abort();
  return table;
}

bool Representable(const std::string& value) {
  return value.find('\'') == std::string::npos ||
         value.find('"') == std::string::npos;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Fresh table per input: ParsePredicate interns unseen values into the
  // table dictionaries, so reusing one table would leak memory across runs
  // and make crashes input-order dependent.
  subdex::Table table = MakeTable();
  std::string_view query(reinterpret_cast<const char*>(data), size);
  subdex::Result<subdex::Predicate> parsed =
      subdex::ParsePredicate(&table, query);
  if (!parsed.ok()) return 0;

  const subdex::Predicate& predicate = parsed.value();
  for (const subdex::AttributeValue& av : predicate.conjuncts()) {
    if (!Representable(table.dictionary(av.attribute).ValueOf(av.code))) {
      return 0;  // documented grammar hole; not round-trippable
    }
  }
  std::string rendered = subdex::PredicateToQuery(table, predicate);
  subdex::Result<subdex::Predicate> reparsed =
      subdex::ParsePredicate(&table, rendered);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "round-trip parse failed: %s\nrendered: %s\n",
                 reparsed.status().ToString().c_str(), rendered.c_str());
    std::abort();
  }
  const auto& a = predicate.conjuncts();
  const auto& b = reparsed.value().conjuncts();
  if (a.size() != b.size()) std::abort();
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].attribute != b[i].attribute || a[i].code != b[i].code) {
      std::fprintf(stderr, "round-trip mismatch at conjunct %zu\nrendered: %s\n",
                   i, rendered.c_str());
      std::abort();
    }
  }
  return 0;
}
