// Fuzz harness for the CSV table loader (storage/csv.h).
//
// The first input byte selects the mode; the rest is the CSV payload:
//   even byte — payload parsed as-is (header included in the fuzz bytes)
//   odd byte  — a valid header for the fixed schema is prepended, so the
//               row/cell parsing paths stay reachable even when the fuzzer
//               mangles what would have been the header line
// ReadCsv must map every malformed input to a Status; on success the table
// row count is consulted so the result is actually materialized.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "storage/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const subdex::Schema schema(
      {{"name", subdex::AttributeType::kCategorical},
       {"tags", subdex::AttributeType::kMultiCategorical},
       {"score", subdex::AttributeType::kNumeric}});
  if (size == 0) return 0;
  std::string payload(reinterpret_cast<const char*>(data + 1), size - 1);
  if (data[0] % 2 == 1) payload = "name,tags,score\n" + payload;
  std::istringstream in(payload);
  subdex::Result<subdex::Table> table = subdex::ReadCsv(in, schema, "<fuzz>");
  if (table.ok()) {
    volatile size_t rows = table.value().num_rows();
    (void)rows;
  }
  return 0;
}
