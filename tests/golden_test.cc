// End-to-end determinism golden test (label: `golden`).
//
// Runs a fixed-seed 5-step exploration session on a small MovieLens-shaped
// dataset (Table 2 spec, scaled down) with a single-threaded engine,
// serializes every step's StepTrace (timings excluded — wall clock is the
// one run-dependent part) plus the counters of the metrics registry, and
// compares the result byte-for-byte against tests/golden/
// movielens_session.txt. The session is executed twice in-process and must
// serialize identically both times before the file comparison happens.
//
// Regenerating the golden file after an intentional behaviour change:
//
//   SUBDEX_REGEN_GOLDEN=1 ./build/tests/golden_test
//
// which rewrites tests/golden/movielens_session.txt in the source tree;
// review the diff like any other code change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "engine/sde_engine.h"
#include "util/metrics.h"

namespace subdex {
namespace {

constexpr uint64_t kDatasetSeed = 7;

std::string GoldenPath() {
  return std::string(SUBDEX_GOLDEN_DIR) + "/movielens_session.txt";
}

EngineConfig GoldenConfig() {
  EngineConfig config;
  config.num_threads = 1;  // fully serial: byte-identical runs
  config.operations.max_candidates = 40;
  config.max_operation_evaluations = 10;
  config.min_group_size = 2;
  return config;
}

// One 5-step session: start from the whole database, then follow the top
// recommendation (falling back to the root when a step returns none).
std::string RunSession(const SubjectiveDatabase& db) {
  MetricsRegistry::Global().ResetForTest();
  SdeEngine engine(&db, GoldenConfig());
  std::ostringstream out;
  GroupSelection selection;
  for (int step = 1; step <= 5; ++step) {
    StepResult result = engine.ExecuteStep(selection, true);
    out << "step " << step << ' '
        << result.trace.ToJson(/*include_timings=*/false) << '\n';
    selection = result.recommendations.empty()
                    ? GroupSelection{}
                    : result.recommendations.front().operation.target;
  }
#if SUBDEX_METRICS_ENABLED
  out << "counters\n";
  MetricsSnapshot snap = engine.MetricsSnapshot();
  for (const MetricsSnapshot::CounterSample& c : snap.counters) {
    out << c.name << ' ' << c.value << '\n';
  }
#endif
  return out.str();
}

TEST(GoldenSessionTest, FixedSeedSessionMatchesCommittedGolden) {
  auto db = GenerateDataset(MovielensSpec().Scaled(0.02), kDatasetSeed);

  std::string first = RunSession(*db);
  std::string second = RunSession(*db);
  // Determinism gate: two consecutive runs must serialize identically
  // before any comparison with the committed file makes sense.
  ASSERT_EQ(first, second);

  if (std::getenv("SUBDEX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << GoldenPath();
    out << first;
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in) << "missing golden file " << GoldenPath()
                  << " — regenerate with SUBDEX_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  std::string expected = golden.str();
#if !SUBDEX_METRICS_ENABLED
  // A SUBDEX_METRICS=OFF build reports no counters; compare the (still
  // fully deterministic) trace section only.
  size_t counters_at = expected.find("counters\n");
  if (counters_at != std::string::npos) expected.resize(counters_at);
#endif
  EXPECT_EQ(first, expected)
      << "golden mismatch; if the change is intentional, regenerate with "
         "SUBDEX_REGEN_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace subdex
