#!/usr/bin/env bash
# Fixture suite for subdex-lint (DESIGN.md §15): every rule ships a
# seeded-violation tree and a clean twin. A bad tree must FAIL with
# exactly the diagnostics its `expect` file names (rule id + count) and a
# clean tree must PASS — the same negative-probe policy as ci/lint.sh and
# ci/concurrency_lint.sh self-tests: a checker whose failure mode is
# never exercised can rot into a silent yes without anyone noticing.
#
# Usage: run_fixtures.sh <subdex-lint binary> [fixtures dir]
set -u

bin=${1:?usage: run_fixtures.sh <subdex-lint binary> [fixtures dir]}
fixtures=${2:-"$(cd "$(dirname "$0")" && pwd)/fixtures"}

fail=0

note() { printf '%s\n' "$*"; }

for dir in "$fixtures"/*/; do
  rule=$(basename "$dir")
  [ "$rule" = layers ] && continue
  RULE=$(printf '%s' "$rule" | tr '[:lower:]' '[:upper:]')

  # Bad tree: must exit 1 with exactly the expected per-rule counts.
  out=$("$bin" --root "$dir/bad" \
        $( [ -f "$dir/bad/layers.txt" ] && printf -- '--layers %s' "$dir/bad/layers.txt" ) \
        --rules "$RULE" 2>&1)
  status=$?
  if [ "$status" -ne 1 ]; then
    note "FAIL [$RULE] bad fixture: exit $status (want 1)"
    note "$out"
    fail=1
  else
    while read -r want_rule want_count; do
      got=$(printf '%s\n' "$out" | grep -c "\[$want_rule\]")
      if [ "$got" -ne "$want_count" ]; then
        note "FAIL [$RULE] bad fixture: $got [$want_rule] diagnostic(s), want $want_count"
        note "$out"
        fail=1
      fi
    done < "$dir/bad/expect"
    # Exactness both ways: no finding outside the expected rule id.
    stray=$(printf '%s\n' "$out" | grep -E '^\S+:[0-9]+: \[' | grep -vc "\[$RULE\]")
    if [ "$stray" -ne 0 ]; then
      note "FAIL [$RULE] bad fixture: $stray diagnostic(s) under other rule ids"
      note "$out"
      fail=1
    fi
  fi

  # Clean twin: must exit 0 under the same rule.
  out=$("$bin" --root "$dir/clean" \
        $( [ -f "$dir/clean/layers.txt" ] && printf -- '--layers %s' "$dir/clean/layers.txt" ) \
        --rules "$RULE" 2>&1)
  status=$?
  if [ "$status" -ne 0 ]; then
    note "FAIL [$RULE] clean fixture: exit $status (want 0)"
    note "$out"
    fail=1
  fi
done

# Layers-file probes: the cycle detector must reject a cyclic graph and
# accept an acyclic one.
if "$bin" --validate-layers "$fixtures/layers/cyclic.txt" >/dev/null 2>&1; then
  note "FAIL [layers] cyclic.txt validated (cycle detector is blind)"
  fail=1
fi
if ! out=$("$bin" --validate-layers "$fixtures/layers/acyclic.txt" 2>&1); then
  note "FAIL [layers] acyclic.txt rejected:"
  note "$out"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  note "lint fixtures: FAILED"
  exit 1
fi
note "lint fixtures: OK"
