#include "util/metrics.h"

namespace subdex {

int Compute();

void Track() {
  // Discard justified: warming the cache; the value is recomputed below.
  (void)Compute();
  auto& c = MetricsRegistry::Global().GetCounter("subdex_core_requests_total");
  c.Increment();
}

}  // namespace subdex
