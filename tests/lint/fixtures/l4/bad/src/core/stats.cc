#include "util/metrics.h"

namespace subdex {

int Compute();

void Track() {
  (void)Compute();
  auto& c = MetricsRegistry::Global().GetCounter("requests");
  c.Increment();
}

}  // namespace subdex
