#include "util/mutex.h"

namespace subdex {

void Await(Mutex& mu, std::condition_variable& cv) {
  MutexLock lock(mu);
  lock.WaitOnce(cv);
}

}  // namespace subdex
