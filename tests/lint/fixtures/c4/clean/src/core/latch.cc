#include "util/mutex.h"

namespace subdex {

void Await(Mutex& mu, std::condition_variable& cv, bool& done) {
  MutexLock lock(mu);
  while (!done) lock.WaitOnce(cv);
}

}  // namespace subdex
