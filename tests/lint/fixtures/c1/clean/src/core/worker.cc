#include "util/mutex.h"

namespace subdex {

struct Worker {
  Mutex mu_{"worker.state", lock_rank::kWorker};
  bool done_ = false;
};

void WaitForDone(Worker& w, std::condition_variable& cv) {
  MutexLock lock(w.mu_);
  while (!w.done_) lock.WaitOnce(cv);
}

}  // namespace subdex
