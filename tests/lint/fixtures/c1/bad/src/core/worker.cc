// Seeded violation: a raw std::mutex and a raw cv wait.
#include <mutex>

namespace subdex {

struct Worker {
  std::mutex mu_;
};

void Park(Worker& w) {
  (void)w;  // placeholder body; the declarations above are the violation
}

void WaitForDone(Worker& w) {
  w.cv_.wait(w.lk_);
}

}  // namespace subdex
