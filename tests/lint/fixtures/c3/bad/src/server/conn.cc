#include "util/mutex.h"

namespace subdex {

void Answer(Mutex& mu, int fd) {
  MutexLock lock(mu);
  ::send(fd, "ok", 2, 0);
}

}  // namespace subdex
