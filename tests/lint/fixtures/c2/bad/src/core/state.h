#ifndef FIXTURE_STATE_H_
#define FIXTURE_STATE_H_

#include "util/mutex.h"

namespace subdex {

struct State {
  Mutex mu_;
  Mutex other_{lock_rank::kState};
};

}  // namespace subdex

#endif
