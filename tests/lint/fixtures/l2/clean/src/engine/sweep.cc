#include "util/thread_pool.h"

namespace subdex {

void SweepSome(ThreadPool& pool, size_t n, StopToken stop) {
  if (stop.ShouldStop()) return;
  pool.ParallelFor(0, n, [](size_t) {});
}

void SweepAgain(ThreadPool& pool, StopToken stop) {
  SweepSome(pool, 8, stop);
}

}  // namespace subdex
