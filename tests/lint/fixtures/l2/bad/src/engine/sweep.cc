#include "util/thread_pool.h"

namespace subdex {

// Seeded violation: blocks in ParallelFor with no budget in sight.
void SweepAll(ThreadPool& pool, size_t n) {
  pool.ParallelFor(0, n, [](size_t) {});
}

// Budgeted blocker: fine itself, and callers must stay budgeted too.
void SweepSome(ThreadPool& pool, size_t n, StopToken stop) {
  if (stop.ShouldStop()) return;
  pool.ParallelFor(0, n, [](size_t) {});
}

// Seeded violation: one hop from a budgeted blocker, budget dropped.
void SweepAgain(ThreadPool& pool) {
  SweepSome(pool, 8, {});
}

}  // namespace subdex
