#ifndef FIXTURE_API_H_
#define FIXTURE_API_H_
namespace subdex {
void Api();
}  // namespace subdex
#endif
