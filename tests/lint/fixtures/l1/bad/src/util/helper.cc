// Seeded violation: util is the leaf layer; including server/ inverts
// the declared DAG.
#include "server/api.h"

namespace subdex {
void Helper() {}
}  // namespace subdex
