#include "util/helper.h"

namespace subdex {
void Api() { Helper(); }
}  // namespace subdex
