#ifndef FIXTURE_HELPER_H_
#define FIXTURE_HELPER_H_
namespace subdex {
void Helper();
}  // namespace subdex
#endif
