#include "server/json_wire.h"

namespace subdex {

// The funnel itself may touch the raw accessor.
double Raw(const JsonValue& v) { return v.number(); }

}  // namespace subdex
