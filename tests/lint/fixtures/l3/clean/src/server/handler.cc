#include "server/json_wire.h"

namespace subdex {

void Apply(const JsonValue& body, std::vector<int>* out, size_t cap) {
  // lint: wire-checked(clamped to cap right here, not used raw)
  const double n = body.number();
  if (n >= 0 && n <= static_cast<double>(cap)) {
    out->resize(static_cast<size_t>(n));
  }
}

}  // namespace subdex
