#include "server/json.h"

namespace subdex {

// Seeded violation: attacker-controlled count straight into resize().
void Apply(const JsonValue& body, std::vector<int>* out) {
  out->resize(body.number());
}

}  // namespace subdex
