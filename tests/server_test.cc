// subdexd end-to-end tests: the JSON wire format, the routing core
// (in-process, no sockets), and the HTTP front end over real connections —
// admission control, disconnect propagation, TTL expiry, and the
// 64-session concurrent storm that ci/sanitize.sh runs under TSan.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/http.h"
#include "server/http_client.h"
#include "server/json.h"
#include "server/server.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace subdex {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// JSON wire format

TEST(JsonTest, ParseDumpRoundTrip) {
  const char* docs[] = {
      "null",
      "true",
      "false",
      "0",
      "-1.5",
      "1e300",
      "\"\"",
      "\"a\\nb\\\"c\\\\d\"",
      "[]",
      "[1,[2,[3]],null]",
      "{}",
      "{\"a\":1,\"b\":[true,\"x\"],\"c\":{\"d\":null}}",
  };
  for (const char* doc : docs) {
    auto parsed = JsonValue::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc << ": " << parsed.status().message();
    std::string dumped = parsed.value().Dump();
    auto again = JsonValue::Parse(dumped);
    ASSERT_TRUE(again.ok()) << dumped;
    EXPECT_EQ(again.value().Dump(), dumped) << doc;
  }
}

TEST(JsonTest, NumbersSurviveExactly) {
  auto parsed = JsonValue::Parse("[0.1,1e-7,123456789012345,2.5]");
  ASSERT_TRUE(parsed.ok());
  const auto& items = parsed.value().items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].number(), 0.1);
  EXPECT_EQ(items[1].number(), 1e-7);
  EXPECT_EQ(items[2].number(), 123456789012345.0);
  auto back = JsonValue::Parse(parsed.value().Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().items()[1].number(), 1e-7);
}

TEST(JsonTest, StrictParserRejectsMalformedDocuments) {
  const char* bad[] = {
      "",      "{",           "[1,]",       "{\"a\":1,\"a\":2}",
      "01",    "1 trailing",  "\"\\q\"",    "\"unterminated",
      "nul",   "{\"a\" 1}",   "[1 2]",      "\"\x01\"",
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(JsonValue::Parse(doc).ok()) << doc;
  }
}

TEST(JsonTest, DepthCapStopsAdversarialNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  auto parsed = JsonValue::Parse("\"\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().str(), "\xc3\xa9\xf0\x9f\x98\x80");
  // A lone surrogate half is not a code point.
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"").ok());
}

TEST(JsonTest, ObjectAccessors) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Number(1));
  obj.Set("b", JsonValue::Str("x"));
  obj.Set("a", JsonValue::Number(2));  // replace, not duplicate
  ASSERT_EQ(obj.members().size(), 2u);
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->number(), 2.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Routing core (in-process: SubdexServer::Handle, no sockets)

HttpRequest MakeRequest(const std::string& method, const std::string& target,
                        const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

/// Scrapes `name value` from Prometheus exposition text; -1 when absent.
double ScrapeCounter(const std::string& text, const std::string& name) {
  size_t pos = text.find("\n" + name + " ");
  if (pos == std::string::npos) return -1;
  return std::stod(text.substr(pos + name.size() + 2));
}

class ServerApiTest : public ::testing::Test {
 protected:
  ServerApiTest() : server_(MakeOptions()) {
    Status status = server_.RegisterDataset(
        "tiny", testing_support::MakeTinyRestaurantDb());
    SUBDEX_CHECK_OK(status);
  }

  static SubdexServer::Options MakeOptions() {
    SubdexServer::Options options;
    options.sessions.max_sessions = 4;
    // The tiny db has 12 ratings; without this no candidate operation
    // survives the default min_group_size and recommendations are empty.
    options.engine.min_group_size = 1;
    return options;
  }

  HttpResponse Call(const std::string& method, const std::string& target,
                    const std::string& body = "") {
    return server_.Handle(MakeRequest(method, target, body), token_);
  }

  /// Parses a response body that must be a JSON object.
  JsonValue Body(const HttpResponse& response) {
    auto parsed = JsonValue::Parse(response.body);
    SUBDEX_CHECK_OK(parsed.status());
    return parsed.value();
  }

  std::string CreateSession(const std::string& body = "{}") {
    HttpResponse response = Call("POST", "/sessions", body);
    SUBDEX_CHECK_MSG(response.status == 201, "create failed");
    return Body(response).Find("session_id")->str();
  }

  SubdexServer server_;
  CancellationToken token_;
};

TEST_F(ServerApiTest, LifecycleCreateStepResetDelete) {
  HttpResponse created = Call("POST", "/sessions", "{\"ttl_ms\":60000}");
  ASSERT_EQ(created.status, 201) << created.body;
  JsonValue meta = Body(created);
  ASSERT_NE(meta.Find("session_id"), nullptr);
  const std::string id = meta.Find("session_id")->str();
  EXPECT_EQ(meta.Find("dataset")->str(), "tiny");
  EXPECT_EQ(meta.Find("ttl_ms")->number(), 60000.0);
  EXPECT_EQ(meta.Find("num_records")->number(), 12.0);

  // Step with an explicit reviewer query.
  HttpResponse step = Call("POST", "/sessions/" + id + "/step",
                           "{\"reviewers\":\"gender = F\"}");
  ASSERT_EQ(step.status, 200) << step.body;
  JsonValue result = Body(step);
  EXPECT_EQ(result.Find("selection")->Find("reviewers")->str(),
            "gender = F");
  EXPECT_GT(result.Find("group_size")->number(), 0.0);
  EXPECT_FALSE(result.Find("degraded")->bool_value());
  EXPECT_EQ(result.Find("cut_phase")->str(), "none");
  ASSERT_FALSE(result.Find("maps")->items().empty());
  const JsonValue& map = result.Find("maps")->items()[0];
  EXPECT_FALSE(map.Find("subgroups")->items().empty());
  ASSERT_FALSE(result.Find("recommendations")->items().empty());

  // Follow recommendation 0: the target selection comes from the engine.
  HttpResponse followed = Call("POST", "/sessions/" + id + "/step",
                               "{\"recommendation\":0}");
  ASSERT_EQ(followed.status, 200) << followed.body;

  // Reset wipes the history, so a recommendation index has no referent.
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/reset").status, 200);
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step",
                 "{\"recommendation\":0}")
                .status,
            400);

  EXPECT_EQ(Call("DELETE", "/sessions/" + id).status, 200);
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 404);
  EXPECT_EQ(server_.sessions().ActiveCount(), 0u);
}

TEST_F(ServerApiTest, BadRequestsAreRejectedWithUsefulErrors) {
  const std::string id = CreateSession();
  struct Case {
    const char* name;
    HttpResponse response;
    int expected_status;
  };
  const Case cases[] = {
      {"invalid JSON body", Call("POST", "/sessions", "{nope"), 400},
      {"non-object body", Call("POST", "/sessions", "[1]"), 400},
      {"unknown route", Call("GET", "/nope"), 404},
      {"wrong method on /sessions", Call("GET", "/sessions"), 405},
      {"wrong method on /metrics", Call("POST", "/metrics"), 405},
      {"unknown session", Call("POST", "/sessions/s0-nope/step"), 404},
      {"unknown session action", Call("POST", "/sessions/" + id + "/warp"),
       404},
      {"unknown dataset", Call("POST", "/sessions", "{\"dataset\":\"x\"}"),
       404},
      {"bad query grammar",
       Call("POST", "/sessions/" + id + "/step",
            "{\"reviewers\":\"gender ==\"}"),
       400},
      {"unknown predicate value",
       Call("POST", "/sessions/" + id + "/step",
            "{\"reviewers\":\"gender = X\"}"),
       400},
      {"recommendation plus query",
       Call("POST", "/sessions/" + id + "/step",
            "{\"recommendation\":0,\"items\":\"\"}"),
       400},
      {"recommendation out of range",
       Call("POST", "/sessions/" + id + "/step", "{\"recommendation\":99}"),
       400},
      {"negative deadline",
       Call("POST", "/sessions/" + id + "/step", "{\"deadline_ms\":-5}"),
       400},
      {"unknown config knob",
       Call("POST", "/sessions", "{\"config\":{\"warp\":9}}"), 400},
      {"num_threads over cap",
       Call("POST", "/sessions", "{\"config\":{\"num_threads\":64}}"), 400},
      {"zero k", Call("POST", "/sessions", "{\"config\":{\"k\":0}}"), 400},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.response.status, c.expected_status) << c.name;
    JsonValue body = Body(c.response);
    ASSERT_NE(body.Find("error"), nullptr) << c.name;
    EXPECT_FALSE(body.Find("error")->str().empty()) << c.name;
  }
  // None of the rejects leaked a session.
  EXPECT_EQ(server_.sessions().ActiveCount(), 1u);
}

TEST_F(ServerApiTest, ReadOnlyQueryParsingNeverGrowsSharedDictionaries) {
  const std::string id = CreateSession();
  // An unseen value must 400, not intern into the shared dataset: a second
  // lookup still reports it unknown (interning would make it match-nothing
  // instead, and mutate a table other sessions are scanning).
  for (int i = 0; i < 2; ++i) {
    HttpResponse response = Call("POST", "/sessions/" + id + "/step",
                                 "{\"items\":\"city = atlantis\"}");
    ASSERT_EQ(response.status, 400);
    EXPECT_NE(Body(response).Find("error")->str().find("atlantis"),
              std::string::npos);
  }
}

TEST_F(ServerApiTest, SessionCapAnswers429WithRetryAfter) {
  for (size_t i = 0; i < 4; ++i) {
    // Discard justified: filling the cap; ids are not needed.
    (void)CreateSession();
  }
  HttpResponse shed = Call("POST", "/sessions");
  EXPECT_EQ(shed.status, 429) << shed.body;
  bool has_retry_after = false;
  for (const auto& [name, value] : shed.extra_headers) {
    // Discard justified: presence of the header is the contract under
    // test; its advisory value is configuration.
    (void)value;
    if (name == "Retry-After") has_retry_after = true;
  }
  EXPECT_TRUE(has_retry_after);
}

TEST_F(ServerApiTest, TtlExpiryReapsIdleSessions) {
  const std::string id = CreateSession("{\"ttl_ms\":1}");
  EXPECT_EQ(server_.sessions().ActiveCount(), 1u);
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(server_.sessions().ReapExpired(), 1u);
  EXPECT_EQ(server_.sessions().ActiveCount(), 0u);
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 404);
  double reaped = ScrapeCounter(Call("GET", "/metrics").body,
                                "subdex_server_sessions_reaped_total");
  EXPECT_GE(reaped, 1.0);
}

TEST_F(ServerApiTest, ExpiredSessionIsLazilyReapedWithoutTheReaper) {
  const std::string id = CreateSession("{\"ttl_ms\":1}");
  std::this_thread::sleep_for(milliseconds(50));
  // No ReapExpired call: Acquire itself must observe the expiry.
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 404);
  EXPECT_EQ(server_.sessions().ActiveCount(), 0u);
}

TEST_F(ServerApiTest, ExpiredDeadlineReturnsValidDegradedResult) {
  const std::string id = CreateSession();
  double before = ScrapeCounter(Call("GET", "/metrics").body,
                                "subdex_engine_degraded_steps_total");
  // 1 microsecond: expired by the time the engine checks, so the step
  // must degrade (anytime semantics), not fail or hang.
  HttpResponse step =
      Call("POST", "/sessions/" + id + "/step", "{\"deadline_ms\":0.001}");
  ASSERT_EQ(step.status, 200) << step.body;
  JsonValue result = Body(step);
  EXPECT_TRUE(result.Find("degraded")->bool_value());
  EXPECT_FALSE(result.Find("cancelled")->bool_value());
  EXPECT_NE(result.Find("cut_phase")->str(), "none");
  double after = ScrapeCounter(Call("GET", "/metrics").body,
                               "subdex_engine_degraded_steps_total");
  EXPECT_GE(after, before + 1.0);
}

TEST_F(ServerApiTest, MetricsAndHealthz) {
  const std::string id = CreateSession();
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 200);

  HttpResponse metrics = Call("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
  EXPECT_GE(ScrapeCounter(metrics.body, "subdex_server_steps_total"), 1.0);
  EXPECT_GE(
      ScrapeCounter(metrics.body, "subdex_server_sessions_created_total"),
      1.0);

  HttpResponse healthz = Call("GET", "/healthz");
  ASSERT_EQ(healthz.status, 200);
  JsonValue body = Body(healthz);
  EXPECT_EQ(body.Find("status")->str(), "ok");
  EXPECT_EQ(body.Find("sessions")->number(), 1.0);
  ASSERT_EQ(body.Find("datasets")->items().size(), 1u);
  EXPECT_EQ(body.Find("datasets")->items()[0].str(), "tiny");
}

TEST_F(ServerApiTest, ConfigOverridesShapeTheSessionEngine) {
  HttpResponse created = Call(
      "POST", "/sessions",
      "{\"config\":{\"k\":2,\"o\":1,\"num_phases\":2,\"seed\":7}}");
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string id = Body(created).Find("session_id")->str();
  HttpResponse step = Call("POST", "/sessions/" + id + "/step");
  ASSERT_EQ(step.status, 200);
  JsonValue result = Body(step);
  EXPECT_LE(result.Find("maps")->items().size(), 2u);
  EXPECT_LE(result.Find("recommendations")->items().size(), 1u);
}

// ---------------------------------------------------------------------------
// HTTP front end over real sockets

struct RawResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// Sends raw bytes to 127.0.0.1:port and reads until the server closes
/// (one response per connection). status == 0 signals a transport failure.
RawResponse SendRaw(uint16_t port, const std::string& payload) {
  RawResponse out;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return out;
  }
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t n = send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string text;
  char buf[4096];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    text.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  if (text.rfind("HTTP/1.1 ", 0) == 0 && text.size() > 12) {
    out.status = std::stoi(text.substr(9, 3));
  }
  size_t split = text.find("\r\n\r\n");
  if (split != std::string::npos) {
    out.head = text.substr(0, split);
    out.body = text.substr(split + 4);
  }
  return out;
}

/// Structured requests ride the shared HTTP client
/// (src/server/http_client.h) — the same code path subdex-loadgen drives —
/// while SendRaw stays for the raw-protocol cases (malformed request
/// lines, trickled bytes). The client lower-cases header names, so `head`
/// matchers look for "retry-after:".
RawResponse Fetch(uint16_t port, const std::string& method,
                  const std::string& target, const std::string& body = "") {
  HttpClientOptions options;
  options.port = port;
  RawResponse out;
  Result<HttpClientResponse> response = HttpFetch(options, method, target,
                                                  body);
  if (!response.ok()) return out;  // status 0 = transport failure
  out.status = response.value().status;
  out.body = response.value().body;
  for (const auto& [name, value] : response.value().headers) {
    out.head += name + ": " + value + "\r\n";
  }
  return out;
}

TEST(HttpServerTest, QueueFullShedsImmediately) {
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  HttpServer::Options options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  HttpServer server(options, [&](const HttpRequest&,
                                 const CancellationToken&) {
    entered.fetch_add(1);
    while (!release.load()) std::this_thread::sleep_for(milliseconds(1));
    return HttpResponse::Json(200, "{}");
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // First request occupies the only worker; second fills the queue.
  RawResponse first_response, second_response;
  std::thread first([&] { first_response = Fetch(port, "GET", "/a"); });
  while (entered.load() == 0) std::this_thread::sleep_for(milliseconds(1));
  std::thread second([&] { second_response = Fetch(port, "GET", "/b"); });
  // The acceptor is unblocked, so the second connection reaches the queue
  // quickly; give it a moment before probing.
  std::this_thread::sleep_for(milliseconds(200));

  RawResponse shed = Fetch(port, "GET", "/c");
  EXPECT_EQ(shed.status, 429) << shed.head;
  EXPECT_NE(shed.head.find("retry-after:"), std::string::npos);

  release.store(true);
  first.join();
  second.join();
  EXPECT_EQ(first_response.status, 200);
  EXPECT_EQ(second_response.status, 200);
  server.Stop();
}

TEST(HttpServerTest, TricklingClientIsCutOffWith408) {
  HttpServer::Options options;
  options.num_workers = 1;
  // The per-recv timeout alone never fires below (a byte lands every
  // ~50 ms); only the total read deadline can end this connection.
  options.socket_timeout_ms = 1000;
  options.request_read_deadline_ms = 250;
  HttpServer server(options,
                    [](const HttpRequest&, const CancellationToken&) {
                      return HttpResponse::Json(200, "{}");
                    });
  ASSERT_TRUE(server.Start().ok());

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)),
            0);

  // Trickle a header that never completes, one byte per 50 ms, while
  // watching for the server's answer.
  std::string text;
  char buf[1024];
  for (int i = 0; i < 100 && text.empty(); ++i) {
    // Discard justified: the server may cut us off mid-trickle; the recv
    // below is the observable outcome.
    (void)send(fd, "a", 1, MSG_NOSIGNAL);
    pollfd p{fd, POLLIN, 0};
    if (poll(&p, 1, 50) > 0 && (p.revents & POLLIN) != 0) {
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      text.append(buf, static_cast<size_t>(n));
    }
  }
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    text.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  EXPECT_NE(text.find("408 Request Timeout"), std::string::npos) << text;
  server.Stop();
}

TEST(HttpServerTest, ShutdownAnswersQueuedConnectionsWith503RetryAfter) {
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  HttpServer::Options options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  HttpServer server(options, [&](const HttpRequest&,
                                 const CancellationToken&) {
    entered.fetch_add(1);
    while (!release.load()) std::this_thread::sleep_for(milliseconds(1));
    return HttpResponse::Json(200, "{}");
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // One request pins the only worker; a second waits in the queue.
  RawResponse busy_response, queued_response;
  std::thread busy([&] { busy_response = Fetch(port, "GET", "/a"); });
  while (entered.load() == 0) std::this_thread::sleep_for(milliseconds(1));
  std::thread queued([&] { queued_response = Fetch(port, "GET", "/b"); });
  std::this_thread::sleep_for(milliseconds(200));

  // Stop drains the queue with 503s; a client that got as far as the
  // queue deserves to know when to come back, same as the 429 shed path.
  std::thread stopper([&] { server.Stop(); });
  std::this_thread::sleep_for(milliseconds(100));
  release.store(true);
  busy.join();
  queued.join();
  stopper.join();

  EXPECT_EQ(busy_response.status, 200) << busy_response.head;
  EXPECT_EQ(queued_response.status, 503) << queued_response.head;
  EXPECT_NE(queued_response.head.find("retry-after:"), std::string::npos)
      << queued_response.head;
}

TEST(HttpServerTest, ClientDisconnectTripsCancellationToken) {
  std::atomic<bool> tripped{false};
  std::atomic<bool> finished{false};
  HttpServer::Options options;
  HttpServer server(
      options, [&](const HttpRequest&, const CancellationToken& disconnect) {
        for (int i = 0; i < 400; ++i) {  // up to ~2s
          if (disconnect.cancelled()) {
            tripped.store(true);
            break;
          }
          std::this_thread::sleep_for(milliseconds(5));
        }
        finished.store(true);
        return HttpResponse::Json(200, "{}");
      });
  ASSERT_TRUE(server.Start().ok());

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request =
      "GET /slow HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n";
  ASSERT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  // Hang up while the handler is running.
  std::this_thread::sleep_for(milliseconds(100));
  close(fd);

  while (!finished.load()) std::this_thread::sleep_for(milliseconds(5));
  EXPECT_TRUE(tripped.load());
  server.Stop();
}

TEST(HttpServerTest, MalformedAndOversizedRequestsAreRejected) {
  HttpServer::Options options;
  options.max_body_bytes = 64;
  HttpServer server(options,
                    [](const HttpRequest&, const CancellationToken&) {
                      return HttpResponse::Json(200, "{}");
                    });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  EXPECT_EQ(SendRaw(port, "NOT AN HTTP LINE\r\n\r\n").status, 400);
  EXPECT_EQ(Fetch(port, "POST", "/x", std::string(256, 'a')).status, 413);
  EXPECT_EQ(Fetch(port, "GET", "/ok").status, 200);
  server.Stop();
}

class ServerHttpTest : public ::testing::Test {
 protected:
  ServerHttpTest() : server_(MakeOptions()) {
    Status status = server_.RegisterDataset(
        "tiny", testing_support::MakeTinyRestaurantDb());
    SUBDEX_CHECK_OK(status);
    SUBDEX_CHECK_OK(server_.Start());
  }

  static SubdexServer::Options MakeOptions() {
    SubdexServer::Options options;
    options.http.num_workers = 8;
    options.http.queue_capacity = 128;
    options.sessions.max_sessions = 128;
    options.engine.min_group_size = 1;
    return options;
  }

  SubdexServer server_;
};

TEST_F(ServerHttpTest, LifecycleOverRealSockets) {
  const uint16_t port = server_.port();
  RawResponse health = Fetch(port, "GET", "/healthz");
  ASSERT_EQ(health.status, 200) << health.body;

  RawResponse created = Fetch(port, "POST", "/sessions", "{}");
  ASSERT_EQ(created.status, 201) << created.body;
  auto meta = JsonValue::Parse(created.body);
  ASSERT_TRUE(meta.ok());
  const std::string id = meta.value().Find("session_id")->str();

  RawResponse step = Fetch(port, "POST", "/sessions/" + id + "/step",
                           "{\"reviewers\":\"gender = F\"}");
  ASSERT_EQ(step.status, 200) << step.body;
  auto result = JsonValue::Parse(step.body);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().Find("group_size")->number(), 0.0);

  RawResponse metrics = Fetch(port, "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_GE(ScrapeCounter(metrics.body, "subdex_server_requests_total"), 3.0);

  EXPECT_EQ(Fetch(port, "DELETE", "/sessions/" + id).status, 200);
  EXPECT_EQ(server_.sessions().ActiveCount(), 0u);
}

TEST_F(ServerHttpTest, SixtyFourConcurrentSessionsSurviveTheStorm) {
  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 8;
  const uint16_t port = server_.port();
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([port, &failures] {
      for (int i = 0; i < kSessionsPerThread; ++i) {
        RawResponse created = Fetch(port, "POST", "/sessions", "{}");
        if (created.status != 201) {
          failures.fetch_add(1);
          continue;
        }
        auto meta = JsonValue::Parse(created.body);
        if (!meta.ok() || meta.value().Find("session_id") == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        const std::string id = meta.value().Find("session_id")->str();
        if (Fetch(port, "POST", "/sessions/" + id + "/step", "{}").status !=
            200) {
          failures.fetch_add(1);
        }
        if (Fetch(port, "POST", "/sessions/" + id + "/step",
                  "{\"reviewers\":\"gender = F\",\"deadline_ms\":5000}")
                .status != 200) {
          failures.fetch_add(1);
        }
        if (Fetch(port, "DELETE", "/sessions/" + id).status != 200) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_.sessions().ActiveCount(), 0u);
}

}  // namespace
}  // namespace subdex
