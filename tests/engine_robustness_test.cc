// Deadline, cancellation and degradation semantics of ExecuteStep: the
// anytime contract (every budget produces a valid StepResult), the
// degradation order (recommendations first, then diversification), the
// history commit rules (degraded steps commit, cancelled steps don't) and
// the attached session log. The racy cases assert invariants rather than
// exact outcomes, so they stay deterministic under any thread scheduling.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

#include "engine/sde_engine.h"
#include "engine/session_log.h"
#include "tests/test_support.h"
#include "util/deadline.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

EngineConfig SmallConfig() {
  EngineConfig config;
  config.k = 3;
  config.o = 3;
  config.l = 3;
  config.min_group_size = 1;
  config.operations.max_candidates = 60;
  config.num_threads = 2;
  return config;
}

std::vector<std::string> MapKeys(const std::vector<ScoredRatingMap>& maps,
                                 const SubjectiveDatabase& db) {
  std::vector<std::string> keys;
  for (const auto& m : maps) keys.push_back(m.map.key().ToString(db));
  return keys;
}

// ------------------------------------------------- expired on arrival ---

TEST(EngineRobustnessTest, ExpiredDeadlineReturnsValidEmptyResultFast) {
  auto db = MakeRandomDb(60, 20, 2000, 3, 7);
  SdeEngine engine(db.get(), SmallConfig());

  StepOptions options;
  options.deadline = Deadline::Expired();

  // The acceptance bar is < 5 ms; take the fastest of a few runs so a
  // loaded CI machine's scheduling hiccups cannot fail the test.
  double best_ms = 1e9;
  for (int run = 0; run < 5; ++run) {
    StepResult result = engine.ExecuteStep(GroupSelection{}, options);
    best_ms = std::min(best_ms, result.elapsed_ms);
    EXPECT_TRUE(result.degraded);
    EXPECT_FALSE(result.cancelled);
    EXPECT_EQ(result.cut_phase, StepPhase::kMaterialize);
    EXPECT_TRUE(result.maps.empty());
    EXPECT_TRUE(result.recommendations.empty());
    EXPECT_EQ(result.group_size, 0u);
  }
  EXPECT_LT(best_ms, 5.0);

  // Nothing was displayed, so nothing entered the history.
  EXPECT_EQ(engine.seen().total(), 0u);
  EXPECT_TRUE(engine.explored_selections().empty());
}

// ---------------------------------------------------------- cancelled ---

TEST(EngineRobustnessTest, PreCancelledTokenCommitsNothing) {
  auto db = MakeTinyRestaurantDb();
  SdeEngine engine(db.get(), SmallConfig());

  StepOptions options;
  options.token.RequestCancel();
  StepResult result = engine.ExecuteStep(GroupSelection{}, options);

  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.maps.empty());
  EXPECT_TRUE(result.recommendations.empty());
  EXPECT_EQ(engine.seen().total(), 0u);
  EXPECT_TRUE(engine.explored_selections().empty());

  // The engine is fully usable after a cancelled step.
  StepResult ok = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_FALSE(ok.cancelled);
  EXPECT_FALSE(ok.maps.empty());
  EXPECT_EQ(engine.seen().total(), ok.maps.size());
}

TEST(EngineRobustnessTest, CancellationMidFlightLeavesHistoryConsistent) {
  auto db = MakeRandomDb(80, 25, 4000, 3, 11);
  SdeEngine engine(db.get(), SmallConfig());

  // Cancel from another thread while steps run. Whether any given step
  // wins the race is scheduling-dependent; the invariants are not.
  for (int round = 0; round < 8; ++round) {
    const size_t seen_before = engine.seen().total();
    const size_t explored_before = engine.explored_selections().size();

    StepOptions options;
    CancellationToken token = options.token;
    std::thread canceller([token]() mutable { token.RequestCancel(); });
    StepResult result = engine.ExecuteStep(GroupSelection{}, options);
    canceller.join();

    if (result.cancelled) {
      EXPECT_TRUE(result.maps.empty());
      EXPECT_TRUE(result.recommendations.empty());
      EXPECT_EQ(engine.seen().total(), seen_before);
      EXPECT_EQ(engine.explored_selections().size(), explored_before);
    } else {
      // Committed: the history grew by exactly the displayed maps.
      EXPECT_EQ(engine.seen().total(), seen_before + result.maps.size());
    }
  }
}

// ---------------------------------------------------- tiny deadlines ----

TEST(EngineRobustnessTest, TinyDeadlinesAlwaysYieldValidResults) {
  auto db = MakeRandomDb(100, 30, 6000, 3, 13);
  EngineConfig config = SmallConfig();
  SdeEngine engine(db.get(), config);

  // Sweep budgets from "hopeless" to "comfortable". Every result must be
  // structurally valid regardless of where the deadline lands.
  for (double budget_ms : {0.01, 0.1, 0.5, 2.0, 10.0, 1000.0}) {
    StepOptions options;
    options.deadline = Deadline::FromNowMs(budget_ms);
    const size_t seen_before = engine.seen().total();
    StepResult result = engine.ExecuteStep(GroupSelection{}, options);

    EXPECT_FALSE(result.cancelled);
    EXPECT_LE(result.maps.size(), config.k);
    // Degradation bookkeeping is consistent: a cut phase implies the
    // degraded flag and vice versa.
    EXPECT_EQ(result.degraded, result.cut_phase != StepPhase::kNone);
    if (result.cut_phase == StepPhase::kMaterialize) {
      // Expired on arrival: no group, no maps, no recommendations.
      EXPECT_EQ(result.group_size, 0u);
      EXPECT_TRUE(result.maps.empty());
      EXPECT_TRUE(result.recommendations.empty());
    }
    // Recommendations only exist when display maps were produced (they
    // are ranked against the updated history).
    if (!result.recommendations.empty()) {
      EXPECT_FALSE(result.maps.empty());
    }
    // Whatever was displayed is exactly what entered the history.
    EXPECT_EQ(engine.seen().total(), seen_before + result.maps.size());
  }
}

// ----------------------------------------------- unbudgeted semantics ---

TEST(EngineRobustnessTest, GenerousDeadlineMatchesClassicStep) {
  auto db = MakeRandomDb(60, 20, 2000, 3, 17);
  SdeEngine classic(db.get(), SmallConfig());
  SdeEngine budgeted(db.get(), SmallConfig());

  StepResult a = classic.ExecuteStep(GroupSelection{}, true);

  StepOptions options;
  options.deadline = Deadline::FromNowMs(60'000);
  StepResult b = budgeted.ExecuteStep(GroupSelection{}, options);

  EXPECT_FALSE(b.degraded);
  EXPECT_FALSE(b.cancelled);
  EXPECT_EQ(b.cut_phase, StepPhase::kNone);
  EXPECT_EQ(MapKeys(a.maps, *db), MapKeys(b.maps, *db));
  ASSERT_EQ(a.recommendations.size(), b.recommendations.size());
  for (size_t i = 0; i < a.recommendations.size(); ++i) {
    EXPECT_TRUE(a.recommendations[i].operation.target ==
                b.recommendations[i].operation.target);
  }
}

TEST(EngineRobustnessTest, BoolOverloadForwardsToOptions) {
  auto db = MakeTinyRestaurantDb();
  SdeEngine via_bool(db.get(), SmallConfig());
  SdeEngine via_options(db.get(), SmallConfig());

  StepResult a = via_bool.ExecuteStep(GroupSelection{}, false);
  StepOptions options;
  options.with_recommendations = false;
  StepResult b = via_options.ExecuteStep(GroupSelection{}, options);

  EXPECT_FALSE(a.degraded);
  EXPECT_FALSE(b.degraded);
  EXPECT_TRUE(a.recommendations.empty());
  EXPECT_TRUE(b.recommendations.empty());
  EXPECT_EQ(MapKeys(a.maps, *db), MapKeys(b.maps, *db));
}

// -------------------------------------------------------- concurrency ---

TEST(EngineRobustnessTest, ConcurrentStepsResetsAndCancelsAreSafe) {
  // Exercises the TSan-audited triangle: ExecuteStep committing history,
  // ResetHistory wiping it, and a cancellation token flipping mid-step.
  // Correctness here is "no data race, no crash, invariants hold" — the
  // interleaving itself is intentionally wild.
  auto db = MakeRandomDb(60, 20, 1500, 2, 19);
  SdeEngine engine(db.get(), SmallConfig());

  std::atomic<bool> running{true};
  std::thread resetter([&] {
    while (running.load()) {
      engine.ResetHistory();
      std::this_thread::yield();
    }
  });

  auto stepper = [&](uint64_t salt) {
    for (int i = 0; i < 12; ++i) {
      StepOptions options;
      if (i % 2 == 0) {
        options.deadline = Deadline::FromNowMs(static_cast<double>(
            (i + salt) % 5));
      }
      CancellationToken token = options.token;
      std::thread canceller([token, i]() mutable {
        if (i % 3 == 0) token.RequestCancel();
      });
      StepResult result = engine.ExecuteStep(GroupSelection{}, options);
      canceller.join();
      EXPECT_LE(result.maps.size(), SmallConfig().k);
      if (result.cancelled) {
        EXPECT_TRUE(result.maps.empty());
        EXPECT_TRUE(result.recommendations.empty());
      }
    }
  };
  std::thread s1(stepper, 1);
  std::thread s2(stepper, 2);
  s1.join();
  s2.join();
  running.store(false);
  resetter.join();

  // The engine still works after the storm.
  StepResult final = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_FALSE(final.maps.empty());
}

// --------------------------------------------------------- session log --

TEST(EngineRobustnessTest, AttachedLogRecordsCommittedStepsOnly) {
  auto db = MakeTinyRestaurantDb();
  SdeEngine engine(db.get(), SmallConfig());
  SessionLog log;
  engine.AttachSessionLog(&log);

  engine.ExecuteStep(GroupSelection{}, false);
  GroupSelection other;
  other.reviewer_pred = Predicate({{0, 0}});
  engine.ExecuteStep(other, false);
  EXPECT_EQ(log.size(), 2u);

  // A cancelled step committed nothing, so it is not logged either.
  StepOptions options;
  options.token.RequestCancel();
  engine.ExecuteStep(GroupSelection{}, options);
  EXPECT_EQ(log.size(), 2u);

  // A deadline-degraded step displayed (possibly empty) best-effort maps
  // and IS part of the session record.
  StepOptions expired;
  expired.deadline = Deadline::Expired();
  engine.ExecuteStep(GroupSelection{}, expired);
  EXPECT_EQ(log.size(), 3u);

  EXPECT_EQ(engine.dropped_log_entries(), 0u);
  engine.AttachSessionLog(nullptr);
  engine.ExecuteStep(GroupSelection{}, false);
  EXPECT_EQ(log.size(), 3u);
}

TEST(EngineRobustnessTest, SessionLogSinkWritesThroughAndReplays) {
  auto db = MakeTinyRestaurantDb();
  SdeEngine engine(db.get(), SmallConfig());
  SessionLog log;
  const std::string path =
      (std::filesystem::temp_directory_path() / "subdex_sink.log").string();
  ASSERT_TRUE(log.OpenSink(db.get(), path).ok());
  EXPECT_TRUE(log.has_sink());
  engine.AttachSessionLog(&log);

  engine.ExecuteStep(GroupSelection{}, false);
  GroupSelection other;
  other.reviewer_pred = Predicate({{0, 0}});
  engine.ExecuteStep(other, false);
  ASSERT_TRUE(log.CloseSink().ok());
  EXPECT_FALSE(log.has_sink());
  EXPECT_EQ(engine.dropped_log_entries(), 0u);

  // Every committed step is already on disk — no separate Save call.
  auto restored = SessionLog::LoadFromFile(db.get(), path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().size(), 2u);
  EXPECT_EQ(restored.value().steps()[1].selection, other);
  std::filesystem::remove(path);
}

TEST(EngineRobustnessTest, OpenSinkOnUnwritablePathFails) {
  auto db = MakeTinyRestaurantDb();
  SessionLog log;
  Status st = log.OpenSink(db.get(), "/nonexistent_dir_zz/sink.log");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_FALSE(log.has_sink());
  // A failed open leaves the log itself fully functional.
  SdeEngine engine(db.get(), SmallConfig());
  engine.AttachSessionLog(&log);
  engine.ExecuteStep(GroupSelection{}, false);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(engine.dropped_log_entries(), 0u);
}

}  // namespace
}  // namespace subdex
