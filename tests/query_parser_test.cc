#include <gtest/gtest.h>

#include "storage/query_parser.h"

namespace subdex {
namespace {

Schema TestSchema() {
  return Schema({{"color", AttributeType::kCategorical},
                 {"tags", AttributeType::kMultiCategorical},
                 {"price", AttributeType::kNumeric}});
}

Table MakeTable() {
  Table t(TestSchema());
  EXPECT_TRUE(
      t.AppendRow({std::string("red"), std::vector<std::string>{"a", "b"}, 1.0})
          .ok());
  EXPECT_TRUE(t.AppendRow({std::string("dark blue"),
                           std::vector<std::string>{"b"}, 2.0})
                  .ok());
  return t;
}

TEST(QueryParserTest, EmptyQueryMatchesAll) {
  Table t = MakeTable();
  auto p = ParsePredicate(&t, "");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().empty());
  auto ws = ParsePredicate(&t, "   \t ");
  ASSERT_TRUE(ws.ok());
  EXPECT_TRUE(ws.value().empty());
}

TEST(QueryParserTest, SingleCondition) {
  Table t = MakeTable();
  auto p = ParsePredicate(&t, "color = red");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().size(), 1u);
  EXPECT_EQ(p.value().Select(t).size(), 1u);
}

TEST(QueryParserTest, Conjunction) {
  Table t = MakeTable();
  auto p = ParsePredicate(&t, "color = red AND tags = a");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().size(), 2u);
  EXPECT_EQ(p.value().Select(t).size(), 1u);
}

TEST(QueryParserTest, AndIsCaseInsensitive) {
  Table t = MakeTable();
  for (const char* q : {"color = red and tags = a", "color = red And tags = a",
                        "color=red AND tags=b"}) {
    EXPECT_TRUE(ParsePredicate(&t, q).ok()) << q;
  }
}

TEST(QueryParserTest, QuotedValues) {
  Table t = MakeTable();
  auto single = ParsePredicate(&t, "color = 'dark blue'");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value().Select(t).size(), 1u);
  auto dbl = ParsePredicate(&t, "color = \"dark blue\"");
  ASSERT_TRUE(dbl.ok());
  EXPECT_EQ(dbl.value().Select(t).size(), 1u);
}

TEST(QueryParserTest, UnknownValueMatchesNothing) {
  Table t = MakeTable();
  auto p = ParsePredicate(&t, "color = chartreuse");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().Select(t).empty());
}

TEST(QueryParserTest, Errors) {
  Table t = MakeTable();
  EXPECT_FALSE(ParsePredicate(&t, "color").ok());              // missing '='
  EXPECT_FALSE(ParsePredicate(&t, "color =").ok());            // missing value
  EXPECT_FALSE(ParsePredicate(&t, "color = red AND").ok());    // dangling AND
  EXPECT_FALSE(ParsePredicate(&t, "color = 'red").ok());       // open quote
  EXPECT_FALSE(ParsePredicate(&t, "nope = red").ok());         // bad attribute
  EXPECT_FALSE(ParsePredicate(&t, "price = 3").ok());          // numeric attr
  EXPECT_FALSE(ParsePredicate(&t, "color = red color = x").ok());  // no AND
  EXPECT_FALSE(
      ParsePredicate(&t, "color = red AND color = blue").ok());  // duplicate
}

TEST(QueryParserTest, ErrorMessagesCarryPosition) {
  Table t = MakeTable();
  auto p = ParsePredicate(&t, "color ! red");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("position"), std::string::npos);
}

TEST(QueryParserTest, RoundTripThroughPredicateToQuery) {
  Table t = MakeTable();
  for (const char* q :
       {"color = red", "color = 'dark blue' AND tags = b", ""}) {
    auto p = ParsePredicate(&t, q);
    ASSERT_TRUE(p.ok()) << q;
    std::string rendered = PredicateToQuery(t, p.value());
    auto back = ParsePredicate(&t, rendered);
    ASSERT_TRUE(back.ok()) << rendered;
    EXPECT_EQ(back.value(), p.value()) << rendered;
  }
}

TEST(QueryParserTest, ValuesWithSpecialBareChars) {
  Table t = MakeTable();
  t.InternValue(0, "$$");
  t.InternValue(0, "bar-b-q");
  EXPECT_TRUE(ParsePredicate(&t, "color = $$").ok());
  EXPECT_TRUE(ParsePredicate(&t, "color = bar-b-q").ok());
}

TEST(QueryParserReadOnlyTest, MatchesMutatingParserOnKnownValues) {
  Table t = MakeTable();
  for (const char* q :
       {"", "color = red", "color = 'dark blue' AND tags = b"}) {
    auto mutating = ParsePredicate(&t, q);
    auto read_only = ParsePredicateReadOnly(t, q);
    ASSERT_TRUE(mutating.ok()) << q;
    ASSERT_TRUE(read_only.ok()) << q;
    EXPECT_EQ(read_only.value(), mutating.value()) << q;
  }
}

TEST(QueryParserReadOnlyTest, NeverInternsUnseenValues) {
  Table t = MakeTable();
  const size_t before = t.DistinctValueCount(0);
  auto p = ParsePredicateReadOnly(t, "color = chartreuse");
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
  EXPECT_NE(p.status().message().find("chartreuse"), std::string::npos);
  EXPECT_NE(p.status().message().find("color"), std::string::npos);
  // The whole point of the read-only variant: the dictionary is untouched,
  // where ParsePredicate would have interned the value.
  EXPECT_EQ(t.DistinctValueCount(0), before);
  EXPECT_EQ(t.LookupValue(0, "chartreuse"), kNullCode);
}

TEST(QueryParserReadOnlyTest, SharesGrammarErrors) {
  Table t = MakeTable();
  EXPECT_EQ(ParsePredicateReadOnly(t, "color red").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParsePredicateReadOnly(t, "nope = red").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParsePredicateReadOnly(t, "price = 1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParsePredicateReadOnly(t, "color = red AND color = red").status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace subdex
