#include <gtest/gtest.h>

#include <set>

#include "core/rating_map.h"
#include "datagen/insights.h"
#include "datagen/irregular.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "datagen/transforms.h"

namespace subdex {
namespace {

// Small, fast instances for unit testing; the full-size specs are exercised
// by the benchmarks.
DatasetSpec TinyYelp() {
  DatasetSpec spec = YelpSpec().Scaled(0.004);
  // Yelp has only 93 items; proportional scaling would leave 1, too few
  // for item-side groups. Keep a meaningful item table.
  spec.num_items = 30;
  return spec;
}
DatasetSpec TinyMovielens() { return MovielensSpec().Scaled(0.02); }

// ----------------------------------------------------------- Specs ------

TEST(SpecsTest, Table2ShapesMatchThePaper) {
  DatasetSpec ml = MovielensSpec();
  EXPECT_EQ(ml.reviewer_attributes.size() + ml.item_attributes.size(), 12u);
  EXPECT_EQ(ml.dimensions.size(), 1u);
  EXPECT_EQ(ml.num_ratings, 100000u);
  EXPECT_EQ(ml.num_reviewers, 943u);
  EXPECT_EQ(ml.num_items, 1682u);
  size_t ml_max = 0;
  for (const auto& a : ml.reviewer_attributes) ml_max = std::max(ml_max, a.num_values);
  for (const auto& a : ml.item_attributes) ml_max = std::max(ml_max, a.num_values);
  EXPECT_EQ(ml_max, 29u);

  DatasetSpec yelp = YelpSpec();
  EXPECT_EQ(yelp.reviewer_attributes.size() + yelp.item_attributes.size(),
            24u);
  EXPECT_EQ(yelp.dimensions.size(), 4u);
  EXPECT_EQ(yelp.num_ratings, 200500u);
  EXPECT_EQ(yelp.num_reviewers, 150318u);
  EXPECT_EQ(yelp.num_items, 93u);
  size_t yelp_max = 0;
  for (const auto& a : yelp.reviewer_attributes) yelp_max = std::max(yelp_max, a.num_values);
  for (const auto& a : yelp.item_attributes) yelp_max = std::max(yelp_max, a.num_values);
  EXPECT_EQ(yelp_max, 13u);

  DatasetSpec hotel = HotelSpec();
  EXPECT_EQ(hotel.reviewer_attributes.size() + hotel.item_attributes.size(),
            8u);
  EXPECT_EQ(hotel.dimensions.size(), 4u);
  EXPECT_EQ(hotel.num_ratings, 35912u);
  EXPECT_EQ(hotel.num_reviewers, 15493u);
  EXPECT_EQ(hotel.num_items, 879u);
  size_t hotel_max = 0;
  for (const auto& a : hotel.reviewer_attributes) hotel_max = std::max(hotel_max, a.num_values);
  for (const auto& a : hotel.item_attributes) hotel_max = std::max(hotel_max, a.num_values);
  EXPECT_EQ(hotel_max, 62u);
}

TEST(SpecsTest, ScaledKeepsAttributeShape) {
  DatasetSpec tiny = TinyYelp();
  EXPECT_EQ(tiny.reviewer_attributes.size(), 12u);
  EXPECT_LT(tiny.num_ratings, 2000u);
  EXPECT_GE(tiny.num_reviewers, 1u);
}

// -------------------------------------------------------- Generator -----

TEST(GeneratorTest, ProducesRequestedShape) {
  DatasetSpec spec = TinyMovielens();
  auto db = GenerateDataset(spec, 1);
  EXPECT_EQ(db->num_reviewers(), spec.num_reviewers);
  EXPECT_EQ(db->num_items(), spec.num_items);
  EXPECT_EQ(db->num_records(), spec.num_ratings);
  EXPECT_EQ(db->num_dimensions(), 1u);
  EXPECT_TRUE(db->finalized());
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  DatasetSpec spec = TinyMovielens();
  auto a = GenerateDataset(spec, 5);
  auto b = GenerateDataset(spec, 5);
  ASSERT_EQ(a->num_records(), b->num_records());
  for (RecordId r = 0; r < a->num_records(); ++r) {
    EXPECT_EQ(a->reviewer_of(r), b->reviewer_of(r));
    EXPECT_EQ(a->item_of(r), b->item_of(r));
    EXPECT_EQ(a->score(0, r), b->score(0, r));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  DatasetSpec spec = TinyMovielens();
  auto a = GenerateDataset(spec, 5);
  auto b = GenerateDataset(spec, 6);
  size_t diffs = 0;
  for (RecordId r = 0; r < a->num_records(); ++r) {
    if (a->score(0, r) != b->score(0, r)) ++diffs;
  }
  EXPECT_GT(diffs, a->num_records() / 10);
}

TEST(GeneratorTest, MinRatingsPerReviewerHonored) {
  DatasetSpec spec = TinyMovielens();
  spec.min_ratings_per_reviewer = 3;
  auto db = GenerateDataset(spec, 2);
  for (RowId u = 0; u < db->num_reviewers(); ++u) {
    EXPECT_GE(db->RecordsOfReviewer(u).size(), 3u);
  }
}

TEST(GeneratorTest, ScoresStayOnScale) {
  auto db = GenerateDataset(TinyYelp(), 3);
  for (size_t d = 0; d < db->num_dimensions(); ++d) {
    for (RecordId r = 0; r < db->num_records(); ++r) {
      EXPECT_GE(db->score(d, r), 1);
      EXPECT_LE(db->score(d, r), 5);
    }
  }
}

TEST(GeneratorTest, LatentBiasIsDeterministicAndSparse) {
  DatasetSpec spec = TinyYelp();
  size_t nonzero = 0;
  size_t total = 0;
  for (size_t a = 0; a < 5; ++a) {
    for (ValueCode v = 0; v < 10; ++v) {
      for (size_t d = 0; d < 4; ++d) {
        double b1 = LatentBias(spec, 77, Side::kReviewer, a, v, d);
        double b2 = LatentBias(spec, 77, Side::kReviewer, a, v, d);
        EXPECT_DOUBLE_EQ(b1, b2);
        ++total;
        if (b1 != 0.0) ++nonzero;
      }
    }
  }
  // bias_probability=0.35: expect roughly a third nonzero.
  EXPECT_GT(nonzero, total / 6);
  EXPECT_LT(nonzero, total * 2 / 3);
}

TEST(GeneratorTest, BiasShowsUpInGroupAverages) {
  // Find a reviewer attribute value with a strongly positive latent bias on
  // dimension 0 and check its group's average beats a strongly negative
  // one's.
  DatasetSpec spec = TinyMovielens();
  spec.num_ratings = 4000;
  spec.num_reviewers = 200;
  spec.min_ratings_per_reviewer = 10;
  auto db = GenerateDataset(spec, 123);
  // gender has 2 values; compare against occupation values to find a big
  // spread somewhere.
  double best_bias = 0, worst_bias = 0;
  size_t best_attr = 0, worst_attr = 0;
  ValueCode best_val = 0, worst_val = 0;
  for (size_t a = 0; a < db->reviewers().num_attributes(); ++a) {
    for (size_t v = 0; v < db->reviewers().DistinctValueCount(a); ++v) {
      double b = LatentBias(spec, 123, Side::kReviewer, a,
                            static_cast<ValueCode>(v), 0);
      size_t rows = db->MatchRows(Side::kReviewer,
                                  Predicate({{a, static_cast<ValueCode>(v)}}))
                        .Count();
      if (rows < 10) continue;
      if (b > best_bias) {
        best_bias = b;
        best_attr = a;
        best_val = static_cast<ValueCode>(v);
      }
      if (b < worst_bias) {
        worst_bias = b;
        worst_attr = a;
        worst_val = static_cast<ValueCode>(v);
      }
    }
  }
  ASSERT_GT(best_bias, 0.2);
  ASSERT_LT(worst_bias, -0.2);
  auto avg_for = [&](size_t attr, ValueCode val) {
    GroupSelection sel;
    sel.reviewer_pred = Predicate({{attr, val}});
    RatingGroup g = RatingGroup::Materialize(*db, sel);
    return g.AverageScore(0);
  };
  EXPECT_GT(avg_for(best_attr, best_val), avg_for(worst_attr, worst_val));
}

TEST(GeneratorTest, TextPipelineProducesVariedDimensions) {
  DatasetSpec spec = TinyYelp();
  ASSERT_TRUE(spec.extract_dimensions_from_text);
  auto db = GenerateDataset(spec, 9);
  // Each non-overall dimension should have at least 3 distinct score
  // values in use (the extraction is not degenerate).
  for (size_t d = 1; d < db->num_dimensions(); ++d) {
    std::set<int> values;
    for (RecordId r = 0; r < db->num_records(); ++r) {
      values.insert(db->score(d, r));
    }
    EXPECT_GE(values.size(), 3u) << "dimension " << d;
  }
}

// -------------------------------------------------------- Irregular -----

TEST(IrregularTest, PlantsRequestedGroupsWithFlooredScores) {
  auto db = GenerateDataset(TinyYelp(), 11);
  IrregularPlantingOptions options;
  options.count = 2;
  auto groups = PlantIrregularGroups(db.get(), options, 42);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].side, Side::kReviewer);
  EXPECT_EQ(groups[1].side, Side::kItem);
  for (const auto& g : groups) {
    EXPECT_GE(g.members.size(), options.min_members);
    size_t desc = g.description.size();
    EXPECT_GE(desc, 2u);
    EXPECT_LE(desc, 3u);
    for (RecordId r : g.affected_records) {
      EXPECT_EQ(db->score(g.dimension, r), 1);
    }
    // Every member matches the description.
    for (RowId row : g.members) {
      EXPECT_TRUE(g.description.Matches(db->table(g.side), row));
    }
  }
}

TEST(IrregularTest, DescriptionsAreDistinct) {
  auto db = GenerateDataset(TinyYelp(), 13);
  IrregularPlantingOptions options;
  options.count = 4;
  auto groups = PlantIrregularGroups(db.get(), options, 7);
  std::set<std::string> descs;
  for (const auto& g : groups) {
    descs.insert(g.Describe(*db));
  }
  EXPECT_EQ(descs.size(), groups.size());
}

TEST(IrregularTest, DeterministicPlanting) {
  auto a = GenerateDataset(TinyYelp(), 17);
  auto b = GenerateDataset(TinyYelp(), 17);
  IrregularPlantingOptions options;
  auto ga = PlantIrregularGroups(a.get(), options, 5);
  auto gb = PlantIrregularGroups(b.get(), options, 5);
  ASSERT_EQ(ga.size(), gb.size());
  for (size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga[i].Describe(*a), gb[i].Describe(*b));
  }
}

// ---------------------------------------------------------- Insights ----

TEST(InsightsTest, PlantedInsightsAreVerifiedExtremes) {
  auto db = GenerateDataset(TinyYelp(), 19);
  InsightPlantingOptions options;
  options.count = 3;
  options.min_records = 10;
  auto insights = PlantInsights(db.get(), options, 23);
  ASSERT_GE(insights.size(), 2u);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  for (const auto& ins : insights) {
    RatingMap map =
        RatingMap::Build(all, {ins.side, ins.attribute, ins.dimension});
    double target = 0.0;
    for (const Subgroup& sg : map.subgroups()) {
      if (sg.value == ins.value) target = sg.average();
    }
    for (const Subgroup& sg : map.subgroups()) {
      if (sg.value == ins.value || sg.count() == 0) continue;
      if (ins.is_highest) {
        EXPECT_LT(sg.average(), target);
      } else {
        EXPECT_GT(sg.average(), target);
      }
    }
  }
}

TEST(InsightsTest, AttributesAreUniquePerInsight) {
  auto db = GenerateDataset(TinyYelp(), 29);
  InsightPlantingOptions options;
  options.count = 4;
  options.min_records = 5;
  auto insights = PlantInsights(db.get(), options, 31);
  std::set<std::pair<int, size_t>> attrs;
  for (const auto& ins : insights) {
    EXPECT_TRUE(
        attrs.insert({ins.side == Side::kReviewer ? 0 : 1, ins.attribute})
            .second);
  }
}

// --------------------------------------------------------- Transforms ---

TEST(TransformsTest, SampleReviewersKeepsOnlyTheirRecords) {
  auto db = GenerateDataset(TinyMovielens(), 37);
  auto half = SampleReviewers(*db, 0.5, 41);
  EXPECT_LT(half->num_reviewers(), db->num_reviewers());
  EXPECT_GT(half->num_reviewers(), 0u);
  EXPECT_EQ(half->num_items(), db->num_items());
  EXPECT_LT(half->num_records(), db->num_records());
  // Ratio of records roughly tracks the reviewer ratio (same per-reviewer
  // quota in the generator).
  double reviewer_ratio = static_cast<double>(half->num_reviewers()) /
                          static_cast<double>(db->num_reviewers());
  double record_ratio = static_cast<double>(half->num_records()) /
                        static_cast<double>(db->num_records());
  EXPECT_NEAR(record_ratio, reviewer_ratio, 0.25);
  EXPECT_TRUE(half->finalized());
}

TEST(TransformsTest, SampleAllKeepsEverything) {
  auto db = GenerateDataset(TinyMovielens(), 43);
  auto all = SampleReviewers(*db, 1.0, 47);
  EXPECT_EQ(all->num_reviewers(), db->num_reviewers());
  EXPECT_EQ(all->num_records(), db->num_records());
}

TEST(TransformsTest, DropAttributesKeepsRequestedCount) {
  auto db = GenerateDataset(TinyYelp(), 53);
  for (size_t keep : {2u, 6u, 12u}) {
    auto dropped = DropAttributes(*db, keep, 59);
    EXPECT_EQ(dropped->reviewers().num_attributes() +
                  dropped->items().num_attributes(),
              keep);
    EXPECT_GE(dropped->reviewers().num_attributes(), 1u);
    EXPECT_GE(dropped->items().num_attributes(), 1u);
    EXPECT_EQ(dropped->num_records(), db->num_records());
  }
}

TEST(TransformsTest, LimitAttributeValuesFolds) {
  auto db = GenerateDataset(TinyYelp(), 61);
  auto limited = LimitAttributeValues(*db, 3, 67);
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& table = limited->table(side);
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      if (table.schema().attribute(a).type == AttributeType::kNumeric) {
        continue;
      }
      EXPECT_LE(table.DistinctValueCount(a), 3u);
    }
  }
  EXPECT_EQ(limited->num_records(), db->num_records());
}

TEST(TransformsTest, TransformsPreserveScores) {
  auto db = GenerateDataset(TinyMovielens(), 71);
  auto limited = LimitAttributeValues(*db, 100, 73);  // no folding happens
  ASSERT_EQ(limited->num_records(), db->num_records());
  for (RecordId r = 0; r < db->num_records(); ++r) {
    EXPECT_EQ(limited->score(0, r), db->score(0, r));
    EXPECT_EQ(limited->reviewer_of(r), db->reviewer_of(r));
    EXPECT_EQ(limited->item_of(r), db->item_of(r));
  }
}

}  // namespace
}  // namespace subdex
