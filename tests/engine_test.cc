#include <gtest/gtest.h>

#include <set>

#include "engine/exploration_session.h"
#include "engine/recommendation_builder.h"
#include "engine/rm_pipeline.h"
#include "engine/sde_engine.h"
#include "tests/test_support.h"
#include "util/thread_pool.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

EngineConfig SmallConfig() {
  EngineConfig config;
  config.k = 3;
  config.o = 3;
  config.l = 3;
  config.min_group_size = 1;
  config.operations.max_candidates = 60;
  config.num_threads = 2;
  return config;
}

std::set<std::string> KeySet(const std::vector<ScoredRatingMap>& maps,
                             const SubjectiveDatabase& db) {
  std::set<std::string> keys;
  for (const auto& m : maps) keys.insert(m.map.key().ToString(db));
  return keys;
}

// -------------------------------------------------------- RmGenerator ---

TEST(RmGeneratorTest, ReturnsSortedByDwUtility) {
  auto db = MakeRandomDb(60, 20, 800, 3, 31);
  EngineConfig config = SmallConfig();
  RmGenerator gen(&config);
  SeenMapsTracker seen(db->num_dimensions());
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  auto maps = gen.Generate(all, seen, 6);
  ASSERT_LE(maps.size(), 6u);
  ASSERT_GE(maps.size(), 2u);
  for (size_t i = 1; i < maps.size(); ++i) {
    EXPECT_GE(maps[i - 1].dw_utility, maps[i].dw_utility);
  }
  for (const auto& m : maps) {
    // Survivor maps cover the full group.
    EXPECT_EQ(m.map.group_size(), all.size());
    EXPECT_GE(m.utility, 0.0);
    EXPECT_LE(m.utility, 1.0);
  }
}

TEST(RmGeneratorTest, PruningAgreesWithNoPruningOnTopSet) {
  auto db = MakeRandomDb(80, 25, 1500, 2, 33);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());

  EngineConfig exact_config = SmallConfig();
  exact_config.pruning = PruningScheme::kNone;
  RmGenerator exact_gen(&exact_config);
  auto exact = exact_gen.Generate(all, seen, 4);

  for (PruningScheme scheme :
       {PruningScheme::kConfidenceInterval, PruningScheme::kMab,
        PruningScheme::kHybrid}) {
    EngineConfig config = SmallConfig();
    config.pruning = scheme;
    RmGenerator gen(&config);
    RmGeneratorStats stats;
    auto pruned = gen.Generate(all, seen, 4, &stats);
    ASSERT_EQ(pruned.size(), exact.size())
        << PruningSchemeName(scheme);
    // The pruned top set should strongly overlap the exact one (pruning is
    // probabilistic; require at least 3 of 4 and matching top-1 utility).
    std::set<std::string> e = KeySet(exact, *db);
    std::set<std::string> p = KeySet(pruned, *db);
    size_t overlap = 0;
    for (const auto& k : p) overlap += e.count(k);
    EXPECT_GE(overlap, 3u) << PruningSchemeName(scheme);
    EXPECT_NEAR(pruned[0].dw_utility, exact[0].dw_utility, 0.05)
        << PruningSchemeName(scheme);
  }
}

TEST(RmGeneratorTest, PruningReducesWork) {
  auto db = MakeRandomDb(100, 30, 3000, 3, 35);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());

  auto run = [&](PruningScheme scheme) {
    EngineConfig config = SmallConfig();
    config.pruning = scheme;
    RmGenerator gen(&config);
    RmGeneratorStats stats;
    EXPECT_FALSE(gen.Generate(all, seen, 3, &stats).empty());
    return stats;
  };
  RmGeneratorStats none = run(PruningScheme::kNone);
  RmGeneratorStats hybrid = run(PruningScheme::kHybrid);
  EXPECT_LT(hybrid.record_updates, none.record_updates);
  EXPECT_GT(hybrid.pruned_ci + hybrid.pruned_mab, 0u);
  EXPECT_EQ(none.pruned_ci + none.pruned_mab, 0u);
}

TEST(RmGeneratorTest, EmptyGroupYieldsNothing) {
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = SmallConfig();
  RmGenerator gen(&config);
  SeenMapsTracker seen(db->num_dimensions());
  RatingGroup empty(&*db, GroupSelection{}, std::vector<RecordId>{});
  EXPECT_TRUE(gen.Generate(empty, seen, 5).empty());
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  EXPECT_TRUE(gen.Generate(all, seen, 0).empty());
}

TEST(RmGeneratorTest, DeterministicAcrossRuns) {
  auto db = MakeRandomDb(50, 15, 700, 2, 37);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());
  EngineConfig config = SmallConfig();
  RmGenerator gen(&config);
  auto a = gen.Generate(all, seen, 5);
  auto b = gen.Generate(all, seen, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].map.key() == b[i].map.key());
    EXPECT_DOUBLE_EQ(a[i].dw_utility, b[i].dw_utility);
  }
}

TEST(RmGeneratorTest, DimensionWeightsSteerSelection) {
  auto db = MakeRandomDb(60, 20, 1000, 3, 39);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  EngineConfig config = SmallConfig();
  RmGenerator gen(&config);

  // History saturated with dimension 0 -> its weight collapses to 0, so no
  // dimension-0 map can be selected over any other dimension's map.
  SeenMapsTracker seen(db->num_dimensions());
  for (int i = 0; i < 5; ++i) {
    seen.Record(RatingMap::Build(all, {Side::kReviewer, 0, 0}));
  }
  auto maps = gen.Generate(all, seen, 4);
  for (const auto& m : maps) {
    EXPECT_NE(m.map.key().dimension, 0u);
  }
}

// The pruning machinery must stay sound under every utility aggregation
// (the interval logic special-cases max vs. the rest).
class AggregationSweepTest
    : public ::testing::TestWithParam<UtilityAggregation> {};

TEST_P(AggregationSweepTest, PrunedMatchesExactTopSet) {
  auto db = MakeRandomDb(60, 20, 1000, 3, 61);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());

  EngineConfig exact_config = SmallConfig();
  exact_config.pruning = PruningScheme::kNone;
  exact_config.utility.aggregation = GetParam();
  exact_config.utility.single = UtilityCriterion::kAgreement;
  RmGenerator exact_gen(&exact_config);
  auto exact = exact_gen.Generate(all, seen, 4);

  EngineConfig pruned_config = exact_config;
  pruned_config.pruning = PruningScheme::kHybrid;
  RmGenerator pruned_gen(&pruned_config);
  auto pruned = pruned_gen.Generate(all, seen, 4);

  ASSERT_EQ(pruned.size(), exact.size());
  // Non-max aggregations compress utilities into a narrow band where many
  // candidates tie; the sound property is equivalent *quality* of the
  // returned set, not set identity.
  double exact_total = 0.0;
  double pruned_total = 0.0;
  for (const auto& m : exact) exact_total += m.dw_utility;
  for (const auto& m : pruned) pruned_total += m.dw_utility;
  EXPECT_NEAR(pruned_total, exact_total, 0.08 * exact.size());
  EXPECT_NEAR(pruned[0].dw_utility, exact[0].dw_utility, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllAggregations, AggregationSweepTest,
                         ::testing::Values(UtilityAggregation::kMax,
                                           UtilityAggregation::kAverage,
                                           UtilityAggregation::kSingleCriterion));

TEST(RmGeneratorTest, KlPeculiarityConfigRunsEndToEnd) {
  auto db = MakeRandomDb(50, 15, 600, 2, 63);
  EngineConfig config = SmallConfig();
  config.utility.peculiarity_measure = PeculiarityMeasure::kKlDivergence;
  SdeEngine engine(db.get(), config);
  StepResult step = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_EQ(step.maps.size(), config.k);
  for (const ScoredRatingMap& m : step.maps) {
    EXPECT_GE(m.scores.self_peculiarity, 0.0);
    EXPECT_LE(m.scores.self_peculiarity, 1.0);
  }
  EXPECT_FALSE(step.recommendations.empty());
}

TEST(RmGeneratorTest, SharingAblationPreservesResults) {
  auto db = MakeRandomDb(50, 20, 800, 3, 53);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());

  EngineConfig shared_config = SmallConfig();
  EngineConfig unshared_config = SmallConfig();
  unshared_config.share_scans = false;
  RmGenerator shared_gen(&shared_config);
  RmGenerator unshared_gen(&unshared_config);
  auto a = shared_gen.Generate(all, seen, 6);
  auto b = unshared_gen.Generate(all, seen, 6);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].map.key() == b[i].map.key());
    EXPECT_DOUBLE_EQ(a[i].dw_utility, b[i].dw_utility);
  }
}

TEST(RecommendationBuilderTest, ExcludesExploredSelections) {
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = SmallConfig();
  RmPipeline pipeline(&config);
  RecommendationBuilder builder(db.get(), &config, &pipeline);
  SeenMapsTracker seen(db->num_dimensions());

  auto baseline = builder.TopRecommendations(GroupSelection{}, seen);
  ASSERT_FALSE(baseline.empty());
  // Declare the top target as already explored: it must not come back.
  std::vector<GroupSelection> explored = {baseline[0].operation.target};
  auto filtered = builder.TopRecommendations(GroupSelection{}, seen, explored);
  for (const Recommendation& rec : filtered) {
    EXPECT_FALSE(rec.operation.target == explored[0]);
  }
}

TEST(RecommendationBuilderTest, EvaluationBudgetPrefersSingleEdits) {
  auto db = MakeRandomDb(40, 15, 500, 2, 55);
  EngineConfig config = SmallConfig();
  config.operations.max_candidates = 200;
  config.max_operation_evaluations = 12;
  RmPipeline pipeline(&config);
  RecommendationBuilder builder(db.get(), &config, &pipeline);
  SeenMapsTracker seen(db->num_dimensions());
  auto recs = builder.TopRecommendations(GroupSelection{}, seen);
  ASSERT_FALSE(recs.empty());
  for (const Recommendation& rec : recs) {
    EXPECT_EQ(rec.operation.num_edits, 1u);
  }
}

TEST(SdeEngineTest, FullyAutomatedNeverRevisitsASelection) {
  auto db = MakeRandomDb(50, 20, 700, 2, 57);
  ExplorationSession session(db.get(), SmallConfig(),
                             ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  session.RunAutomated(6);
  const auto& path = session.path();
  for (size_t i = 0; i < path.size(); ++i) {
    for (size_t j = i + 1; j < path.size(); ++j) {
      EXPECT_FALSE(path[i].selection == path[j].selection)
          << "revisited at steps " << i << " and " << j;
    }
  }
}

// --------------------------------------------------------- RmPipeline ---

TEST(RmPipelineTest, SelectionModesBehave) {
  auto db = MakeRandomDb(60, 20, 900, 2, 41);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());

  EngineConfig util_only = SmallConfig();
  util_only.selection = SelectionMode::kUtilityOnly;
  RmPipeline p1(&util_only);
  auto u_maps = p1.SelectForDisplay(all, seen);
  ASSERT_EQ(u_maps.size(), util_only.k);

  EngineConfig both = SmallConfig();
  RmPipeline p2(&both);
  auto d_maps = p2.SelectForDisplay(all, seen);
  ASSERT_EQ(d_maps.size(), both.k);

  EngineConfig div_only = SmallConfig();
  div_only.selection = SelectionMode::kDiversityOnly;
  RmPipeline p3(&div_only);
  auto dd_maps = p3.SelectForDisplay(all, seen);
  ASSERT_EQ(dd_maps.size(), div_only.k);

  // Utility-only maximizes summed DW utility among the three modes.
  auto total = [](const std::vector<ScoredRatingMap>& maps) {
    return RmPipeline::OperationUtility(maps);
  };
  EXPECT_GE(total(u_maps) + 1e-9, total(d_maps));
  EXPECT_GE(total(d_maps) + 1e-9, total(dd_maps));
}

TEST(RmPipelineTest, OperationUtilityIsSumOfDw) {
  std::vector<ScoredRatingMap> maps(3);
  maps[0].dw_utility = 0.5;
  maps[1].dw_utility = 0.25;
  maps[2].dw_utility = 0.1;
  EXPECT_DOUBLE_EQ(RmPipeline::OperationUtility(maps), 0.85);
}

// ------------------------------------------------ RecommendationBuilder --

TEST(RecommendationBuilderTest, ReturnsTopORankedByUtility) {
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = SmallConfig();
  RmPipeline pipeline(&config);
  RecommendationBuilder builder(db.get(), &config, &pipeline);
  SeenMapsTracker seen(db->num_dimensions());
  auto recs = builder.TopRecommendations(GroupSelection{}, seen);
  ASSERT_LE(recs.size(), config.o);
  ASSERT_GE(recs.size(), 1u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].utility, recs[i].utility);
  }
  for (const auto& rec : recs) {
    EXPECT_GE(rec.group_size, config.min_group_size);
    EXPECT_FALSE(rec.maps.empty());
    // Eq. 2: utility equals the sum of the maps' DW utilities.
    EXPECT_NEAR(rec.utility, RmPipeline::OperationUtility(rec.maps), 1e-12);
  }
}

TEST(RecommendationBuilderTest, ParallelEqualsSequential) {
  auto db = MakeRandomDb(40, 15, 500, 2, 43);
  EngineConfig par = SmallConfig();
  par.parallel_recommendations = true;
  par.num_threads = 4;
  EngineConfig seq = SmallConfig();
  seq.parallel_recommendations = false;

  ThreadPool pool(par.num_threads);
  RmPipeline pp(&par, &pool);
  RmPipeline sp(&seq);
  RecommendationBuilder pb(db.get(), &par, &pp, nullptr, &pool);
  RecommendationBuilder sb(db.get(), &seq, &sp);
  SeenMapsTracker seen(db->num_dimensions());
  auto a = pb.TopRecommendations(GroupSelection{}, seen);
  auto b = sb.TopRecommendations(GroupSelection{}, seen);
  EXPECT_GT(pool.stats().tasks_submitted, 0u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].operation.target, b[i].operation.target);
    EXPECT_DOUBLE_EQ(a[i].utility, b[i].utility);
  }
}

TEST(RecommendationBuilderTest, RespectsMinGroupSize) {
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = SmallConfig();
  config.min_group_size = 4;
  RmPipeline pipeline(&config);
  RecommendationBuilder builder(db.get(), &config, &pipeline);
  SeenMapsTracker seen(db->num_dimensions());
  auto recs = builder.TopRecommendations(GroupSelection{}, seen);
  for (const auto& rec : recs) {
    EXPECT_GE(rec.group_size, 4u);
  }
}

// ----------------------------------------------------------- SdeEngine --

TEST(SdeEngineTest, ExecuteStepRecordsHistory) {
  auto db = MakeTinyRestaurantDb();
  SdeEngine engine(db.get(), SmallConfig());
  EXPECT_EQ(engine.seen().total(), 0u);
  StepResult step = engine.ExecuteStep(GroupSelection{}, false);
  EXPECT_EQ(step.group_size, db->num_records());
  EXPECT_EQ(step.maps.size(), engine.config().k);
  EXPECT_EQ(engine.seen().total(), engine.config().k);
  EXPECT_TRUE(step.recommendations.empty());
  EXPECT_GT(step.elapsed_ms, 0.0);

  StepResult with_recs = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_FALSE(with_recs.recommendations.empty());
  engine.ResetHistory();
  EXPECT_EQ(engine.seen().total(), 0u);
}

TEST(SdeEngineTest, ExploredSelectionsDeduplicated) {
  auto db = MakeTinyRestaurantDb();
  SdeEngine engine(db.get(), SmallConfig());
  engine.ExecuteStep(GroupSelection{}, false);
  engine.ExecuteStep(GroupSelection{}, false);
  engine.ExecuteStep(GroupSelection{}, false);
  // Revisiting the same selection must not grow the history list.
  EXPECT_EQ(engine.explored_selections().size(), 1u);
  GroupSelection other;
  other.reviewer_pred = Predicate({{0, 0}});
  engine.ExecuteStep(other, false);
  EXPECT_EQ(engine.explored_selections().size(), 2u);
}

TEST(SdeEngineTest, EngineOwnedPoolIsReusedAcrossSteps) {
  auto db = MakeRandomDb(40, 15, 500, 2, 59);
  EngineConfig config = SmallConfig();
  config.num_threads = 4;
  SdeEngine engine(db.get(), config);
  ASSERT_NE(engine.pool(), nullptr);
  const ThreadPool* pool = engine.pool();
  StepResult first = engine.ExecuteStep(GroupSelection{}, true);
  size_t after_first = pool->stats().tasks_submitted;
  EXPECT_GT(first.timings.pool_tasks, 0u);
  EXPECT_GT(after_first, 0u);
  StepResult second = engine.ExecuteStep(GroupSelection{}, true);
  // Same pool object served the second step (no churn, counters carry on).
  EXPECT_EQ(engine.pool(), pool);
  EXPECT_GT(pool->stats().tasks_submitted, after_first);
  EXPECT_GT(second.timings.pool_tasks, 0u);
}

TEST(SdeEngineTest, SerialConfigRunsWithoutPool) {
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = SmallConfig();
  config.num_threads = 1;
  SdeEngine engine(db.get(), config);
  EXPECT_EQ(engine.pool(), nullptr);
  StepResult step = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_EQ(step.timings.pool_tasks, 0u);
  EXPECT_FALSE(step.recommendations.empty());
}

TEST(SdeEngineTest, StepTimingsBreakDownTheStep) {
  auto db = MakeRandomDb(40, 15, 600, 2, 67);
  SdeEngine engine(db.get(), SmallConfig());
  StepResult step = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_GE(step.timings.materialize_ms, 0.0);
  EXPECT_GT(step.timings.rm_generation_ms, 0.0);
  EXPECT_GE(step.timings.gmm_selection_ms, 0.0);
  EXPECT_GT(step.timings.recommendation_ms, 0.0);
  double itemized = step.timings.materialize_ms + step.timings.rm_generation_ms +
                    step.timings.gmm_selection_ms +
                    step.timings.recommendation_ms;
  EXPECT_LE(itemized, step.elapsed_ms + 1e-6);
}

// Acceptance invariant of the shared-pool refactor: parallel and serial
// execution produce identical recommendation rankings, step after step.
TEST(SdeEngineTest, ParallelAndSerialRankingsIdentical) {
  auto db = MakeRandomDb(50, 20, 800, 2, 71);
  EngineConfig par = SmallConfig();
  par.num_threads = 4;
  par.parallel_recommendations = true;
  par.parallel_generation = true;
  EngineConfig ser = SmallConfig();
  ser.num_threads = 1;
  ser.parallel_recommendations = false;
  ser.parallel_generation = false;

  SdeEngine parallel(db.get(), par);
  SdeEngine serial(db.get(), ser);
  GroupSelection selection;  // both engines follow the serial engine's path
  for (int s = 0; s < 3; ++s) {
    StepResult a = parallel.ExecuteStep(selection, true);
    StepResult b = serial.ExecuteStep(selection, true);
    ASSERT_EQ(a.maps.size(), b.maps.size());
    for (size_t i = 0; i < a.maps.size(); ++i) {
      EXPECT_TRUE(a.maps[i].map.key() == b.maps[i].map.key());
      EXPECT_EQ(a.maps[i].dw_utility, b.maps[i].dw_utility);
    }
    ASSERT_EQ(a.recommendations.size(), b.recommendations.size());
    ASSERT_FALSE(b.recommendations.empty());
    for (size_t i = 0; i < a.recommendations.size(); ++i) {
      EXPECT_EQ(a.recommendations[i].operation.target,
                b.recommendations[i].operation.target);
      EXPECT_EQ(a.recommendations[i].utility, b.recommendations[i].utility);
      EXPECT_EQ(a.recommendations[i].group_size,
                b.recommendations[i].group_size);
    }
    selection = b.recommendations[0].operation.target;
  }
}

TEST(SdeEngineTest, MultiStepDiversityAvoidsRepeatingOneDimension) {
  auto db = MakeRandomDb(60, 20, 900, 4, 47);
  SdeEngine engine(db.get(), SmallConfig());
  for (int s = 0; s < 4; ++s) {
    engine.ExecuteStep(GroupSelection{}, false);
  }
  // With DW weighting, all 4 dimensions should have been displayed.
  size_t dims_shown = 0;
  for (size_t d = 0; d < db->num_dimensions(); ++d) {
    if (engine.seen().dimension_count(d) > 0) ++dims_shown;
  }
  EXPECT_EQ(dims_shown, 4u);
}

// -------------------------------------------------- ExplorationSession --

TEST(ExplorationSessionTest, UserDrivenFlow) {
  auto db = MakeTinyRestaurantDb();
  ExplorationSession session(db.get(), SmallConfig(),
                             ExplorationMode::kUserDriven);
  const StepResult& first = session.Start(GroupSelection{});
  EXPECT_TRUE(first.recommendations.empty());  // UD shows no recommendations
  GroupSelection next;
  next.reviewer_pred = Predicate(
      {{0, db->reviewers().LookupValue(0, "F")}});
  session.ApplyOperation(next);
  EXPECT_EQ(session.path().size(), 2u);
  EXPECT_EQ(session.last().selection, next);
}

TEST(ExplorationSessionTest, FullyAutomatedFollowsTopRecommendation) {
  auto db = MakeRandomDb(40, 15, 600, 2, 49);
  ExplorationSession session(db.get(), SmallConfig(),
                             ExplorationMode::kFullyAutomated);
  const StepResult& first = session.Start(GroupSelection{});
  ASSERT_FALSE(first.recommendations.empty());
  GroupSelection expected = first.recommendations[0].operation.target;
  size_t done = session.RunAutomated(3);
  EXPECT_EQ(done, 3u);
  EXPECT_EQ(session.path().size(), 4u);
  EXPECT_EQ(session.path()[1].selection, expected);
}

TEST(ExplorationSessionTest, RecommendationPoweredAllowsBoth) {
  auto db = MakeRandomDb(40, 15, 600, 2, 51);
  ExplorationSession session(db.get(), SmallConfig(),
                             ExplorationMode::kRecommendationPowered);
  const StepResult& first = session.Start(GroupSelection{});
  ASSERT_FALSE(first.recommendations.empty());
  EXPECT_TRUE(session.ApplyRecommendation(0));
  GroupSelection own;
  own.item_pred = Predicate({{0, db->items().LookupValue(0, "nyc")}});
  session.ApplyOperation(own);
  EXPECT_EQ(session.path().size(), 3u);
}

TEST(ExplorationSessionTest, ApplyRecommendationOutOfRangeFails) {
  auto db = MakeTinyRestaurantDb();
  ExplorationSession session(db.get(), SmallConfig(),
                             ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  EXPECT_FALSE(session.ApplyRecommendation(99));
}

}  // namespace
}  // namespace subdex
