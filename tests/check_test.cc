// Tests for the CHECK/DCHECK invariant layer (util/check.h). This target
// compiles with SUBDEX_FORCE_DCHECK so the debug-only macros stay active
// regardless of the build type (the tier-1 tree is RelWithDebInfo).

#include "util/check.h"

#include <string>

#include <gtest/gtest.h>

#include "util/status.h"

namespace subdex {
namespace {

TEST(CheckTest, PassingChecksAreNoOps) {
  SUBDEX_CHECK(1 + 1 == 2);
  SUBDEX_CHECK_MSG(true, "never printed");
  SUBDEX_CHECK_MSG(true, "never %s with %d args", "formatted", 2);
  SUBDEX_CHECK_OK(Status::Ok());
  Result<int> r(7);
  SUBDEX_CHECK_OK(r);
  EXPECT_EQ(r.value(), 7);
}

TEST(CheckTest, MessageArgumentsAreLazyOnSuccess) {
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "message";
  };
  SUBDEX_CHECK_MSG(true, "%s", expensive());
  EXPECT_EQ(evaluations, 0) << "message must only be evaluated on failure";
}

TEST(CheckTest, ChecksAreSingleStatements) {
  // Must parse as one statement in unbraced if/else and for bodies.
  if (true)
    SUBDEX_CHECK(true);
  else
    SUBDEX_CHECK_MSG(true, "unreachable");
  for (int i = 0; i < 2; ++i) SUBDEX_DCHECK_LT(i, 2);
}

TEST(CheckDeathTest, CheckPrintsExpression) {
  EXPECT_DEATH(SUBDEX_CHECK(2 + 2 == 5), "SUBDEX_CHECK failed.*2 \\+ 2 == 5");
}

TEST(CheckDeathTest, CheckMsgFormatsOnFailure) {
  EXPECT_DEATH(SUBDEX_CHECK_MSG(false, "n=%d cap=%d", 12, 7),
               "n=12 cap=7");
}

TEST(CheckDeathTest, CheckMsgLiteralPercentIsSafe) {
  // Dynamic text routed through "%s" must not be reinterpreted as a format.
  std::string hostile = "100% broken %n%s";
  EXPECT_DEATH(SUBDEX_CHECK_MSG(false, "%s", hostile.c_str()),
               "100% broken");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(SUBDEX_CHECK_OK(Status::InvalidArgument("bad knob")),
               "InvalidArgument: bad knob");
  Result<int> failed(Status::NotFound("no such row"));
  EXPECT_DEATH(SUBDEX_CHECK_OK(failed), "NotFound: no such row");
}

TEST(CheckDeathTest, DcheckActiveInThisTarget) {
  static_assert(SUBDEX_DCHECK_ENABLED,
                "check_test must force-enable DCHECKs");
  EXPECT_DEATH(SUBDEX_DCHECK(false), "SUBDEX_CHECK failed");
}

TEST(CheckDeathTest, DcheckOpPrintsBothValues) {
  int lhs = 3;
  int rhs = 9;
  EXPECT_DEATH(SUBDEX_DCHECK_EQ(lhs, rhs), "lhs=3 rhs=9");
  EXPECT_DEATH(SUBDEX_DCHECK_GE(lhs, rhs), "lhs=3 rhs=9");
  EXPECT_DEATH(SUBDEX_DCHECK_GT(lhs, rhs), "lhs=3 rhs=9");
  double small = 0.25;
  EXPECT_DEATH(SUBDEX_DCHECK_LE(1.5, small), "lhs=1.5 rhs=0.25");
  EXPECT_DEATH(SUBDEX_DCHECK_LT(1.5, small), "lhs=1.5 rhs=0.25");
  EXPECT_DEATH(SUBDEX_DCHECK_NE(rhs, 9), "lhs=9 rhs=9");
}

TEST(CheckTest, DcheckOpEvaluatesOperandsOnce) {
  int a = 0;
  int b = 10;
  SUBDEX_DCHECK_LT(a++, b++);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 11);
}

}  // namespace
}  // namespace subdex
