// Tests for the CRC32C-framed segment substrate of the session journal:
// checksum vectors, write/read round-trips, and — the part that earns its
// keep — the torn-tail taxonomy: every prefix of a crash mid-append must
// read back as "good records + torn tail", while damage that cannot be a
// torn append must read back as corruption.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/framed_log.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace subdex {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "framed_log_" + tag + "_" +
         std::to_string(::getpid()) + ".sjl";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SUBDEX_CHECK_MSG(in.good(), "cannot read back test file");
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SUBDEX_CHECK_MSG(out.good(), "cannot write test file");
}

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, Rfc3720Vectors) {
  // iSCSI (RFC 3720 §B.4) test vectors for the Castagnoli polynomial.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62a8ab43u);
  std::string ascending(32, '\0');
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<char>(i);
  }
  EXPECT_EQ(Crc32c(ascending), 0x46dd794eu);
}

TEST(Crc32cTest, ExtendComposesLikeOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t piecewise = Crc32cExtend(0, data.data(), split);
    piecewise =
        Crc32cExtend(piecewise, data.data() + split, data.size() - split);
    EXPECT_EQ(piecewise, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "framed log payload";
  const uint32_t good = Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] = static_cast<char>(data[bit / 8] ^ (1 << (bit % 8)));
    EXPECT_NE(Crc32c(data), good) << "bit " << bit;
    data[bit / 8] = static_cast<char>(data[bit / 8] ^ (1 << (bit % 8)));
  }
}

// ---------------------------------------------------------------------------
// Round-trips

TEST(FramedLogTest, WriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip");
  std::remove(path.c_str());
  std::vector<std::string> payloads = {
      "",                                  // empty record is legal
      "{\"type\":\"create\"}",             //
      std::string(100 * 1024, 'x'),        // larger than one write buffer
      std::string("\x00\xff\n\r\0x", 6),   // binary-safe
  };
  {
    Result<FramedLogWriter> writer = FramedLogWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    FramedLogWriter log = std::move(writer).value();
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(log.Append(payload).ok());
    }
    ASSERT_TRUE(log.Sync().ok());
  }
  FramedLogContents contents = ReadFramedLog(path);
  ASSERT_TRUE(contents.status.ok()) << contents.status.message();
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(contents.records[i], payloads[i]) << "record " << i;
  }
  EXPECT_EQ(contents.valid_bytes, ReadFileBytes(path).size());
  std::remove(path.c_str());
}

TEST(FramedLogTest, CreateRefusesToClobberAndAppendContinues) {
  const std::string path = TempPath("reopen");
  std::remove(path.c_str());
  {
    Result<FramedLogWriter> writer = FramedLogWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    FramedLogWriter log = std::move(writer).value();
    ASSERT_TRUE(log.Append("one").ok());
  }
  // O_EXCL: the same segment name must never be silently overwritten.
  EXPECT_FALSE(FramedLogWriter::Create(path).ok());

  FramedLogContents first = ReadFramedLog(path);
  ASSERT_TRUE(first.status.ok());
  Result<FramedLogWriter> reopened =
      FramedLogWriter::OpenForAppend(path, first.valid_bytes);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  FramedLogWriter log = std::move(reopened).value();
  ASSERT_TRUE(log.Append("two").ok());
  log.Close();

  FramedLogContents contents = ReadFramedLog(path);
  ASSERT_TRUE(contents.status.ok());
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0], "one");
  EXPECT_EQ(contents.records[1], "two");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Torn tails vs corruption

/// Builds a healthy two-record segment and returns its bytes.
std::string HealthySegment(const std::string& path) {
  std::remove(path.c_str());
  Result<FramedLogWriter> writer = FramedLogWriter::Create(path);
  SUBDEX_CHECK_MSG(writer.ok(), "create failed");
  FramedLogWriter log = std::move(writer).value();
  SUBDEX_CHECK_OK(log.Append("first record"));
  SUBDEX_CHECK_OK(log.Append("second record"));
  log.Close();
  return ReadFileBytes(path);
}

TEST(FramedLogTest, EveryCrashPrefixIsGoodRecordsPlusTornTail) {
  const std::string path = TempPath("prefix");
  const std::string bytes = HealthySegment(path);
  // A crash mid-append leaves some prefix of the file. Every prefix from
  // the bare magic to one-byte-short-of-complete must recover the whole
  // records before the tear and flag (only) the tear.
  for (size_t len = 8; len < bytes.size(); ++len) {
    WriteFileBytes(path, bytes.substr(0, len));
    FramedLogContents contents = ReadFramedLog(path);
    ASSERT_TRUE(contents.status.ok())
        << "prefix " << len << ": " << contents.status.message();
    // "first record" frames as 8 header + 12 payload after the magic, so
    // prefixes of at least 28 bytes hold it whole.
    const size_t whole = len >= 8 + 8 + 12 ? 1u : 0u;
    ASSERT_EQ(contents.records.size(), whole) << "prefix " << len;
    if (!contents.records.empty()) {
      EXPECT_EQ(contents.records[0], "first record");
    }
    if (len == contents.valid_bytes) {
      EXPECT_FALSE(contents.torn_tail) << "prefix " << len;
    } else {
      EXPECT_TRUE(contents.torn_tail) << "prefix " << len;
      EXPECT_LT(contents.valid_bytes, len);
    }
  }
  std::remove(path.c_str());
}

TEST(FramedLogTest, CorruptFinalRecordIsATornTailButMidFileIsCorruption) {
  const std::string path = TempPath("midfile");
  std::string bytes = HealthySegment(path);
  // Flip a byte inside the *last* record's payload: indistinguishable
  // from a torn append, so it must truncate, not fail.
  std::string tail_flip = bytes;
  tail_flip[bytes.size() - 3] =
      static_cast<char>(tail_flip[bytes.size() - 3] ^ 0x1);
  WriteFileBytes(path, tail_flip);
  FramedLogContents tail = ReadFramedLog(path);
  ASSERT_TRUE(tail.status.ok()) << tail.status.message();
  EXPECT_TRUE(tail.torn_tail);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0], "first record");

  // Flip a payload byte inside the *first* record: a CRC-bad record
  // followed by valid data cannot be a torn append — silent truncation
  // would drop the second (acknowledged!) record, so this must be
  // corruption. (A *length*-field flip is different: it swallows the rest
  // of the file as one incomplete record, which is indistinguishable from
  // a torn append and correctly reads as a tear.)
  std::string mid_flip = bytes;
  mid_flip[20] = static_cast<char>(mid_flip[20] ^ 0x1);
  WriteFileBytes(path, mid_flip);
  EXPECT_FALSE(ReadFramedLog(path).status.ok());
  std::remove(path.c_str());
}

TEST(FramedLogTest, BadMagicAndOversizedLengthAreRejected) {
  const std::string path = TempPath("magic");
  std::string bytes = HealthySegment(path);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteFileBytes(path, bad_magic);
  EXPECT_FALSE(ReadFramedLog(path).status.ok());

  // A garbage length prefix above the cap in the *tail* position: treated
  // as a torn header (trailing garbage), not a 4 GiB read.
  std::string oversized = bytes;
  oversized += std::string("\xff\xff\xff\xff\0\0\0\0", 8);
  WriteFileBytes(path, oversized);
  FramedLogContents contents = ReadFramedLog(path);
  ASSERT_TRUE(contents.status.ok()) << contents.status.message();
  EXPECT_TRUE(contents.torn_tail);
  EXPECT_EQ(contents.records.size(), 2u);
  std::remove(path.c_str());

  EXPECT_FALSE(ReadFramedLog(path).status.ok()) << "missing file";
}

TEST(FramedLogTest, TruncateOnOpenPhysicallyDropsTheTornTail) {
  const std::string path = TempPath("truncate");
  const std::string bytes = HealthySegment(path);
  // Tear the second record, resume, append. The reader tolerates only one
  // tear, so OpenForAppend must remove the old one before the new record
  // lands — otherwise the file would hold good bytes after a tear, which
  // reads as corruption.
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 5));
  FramedLogContents torn = ReadFramedLog(path);
  ASSERT_TRUE(torn.status.ok());
  ASSERT_TRUE(torn.torn_tail);
  Result<FramedLogWriter> resumed =
      FramedLogWriter::OpenForAppend(path, torn.valid_bytes);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  FramedLogWriter log = std::move(resumed).value();
  ASSERT_TRUE(log.Append("replacement").ok());
  log.Close();

  FramedLogContents contents = ReadFramedLog(path);
  ASSERT_TRUE(contents.status.ok()) << contents.status.message();
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0], "first record");
  EXPECT_EQ(contents.records[1], "replacement");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subdex
