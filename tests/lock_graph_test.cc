// Tests for the lock-order detector (util/lock_graph.h) through the armed
// subdex::Mutex API: this TU compiles with SUBDEX_DEADLOCK_DETECTOR=1 (see
// tests/CMakeLists.txt), so every Mutex/MutexLock here routes through the
// detector hooks exactly as the armed CI build does.
//
// The violation tests use death tests: a detector report is a
// check_internal::CheckFail abort carrying both acquisition sites, and
// EXPECT_DEATH's regex pins the report contents, not just the abort.

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/lock_graph.h"
#include "util/lock_rank.h"
#include "util/mutex.h"

namespace subdex {
namespace {

class LockGraphTest : public ::testing::Test {
 protected:
  void SetUp() override { lock_graph::ResetForTest(); }
  void TearDown() override { lock_graph::ResetForTest(); }
};

TEST_F(LockGraphTest, SingleLockIsSilentAndTracksHeldCount) {
  Mutex mu{"t.single"};
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 0u);
  {
    MutexLock lock(mu);
    EXPECT_EQ(lock_graph::HeldByCurrentThread(), 1u);
  }
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 0u);
  // A lone lock creates no acquired-after edges.
  EXPECT_TRUE(lock_graph::Edges().empty());
}

TEST_F(LockGraphTest, NameAndRankAreExposed) {
  Mutex mu{"t.named", lock_rank::kMetricsRegistry};
  EXPECT_STREQ(mu.name(), "t.named");
  EXPECT_EQ(mu.rank(), lock_rank::kMetricsRegistry);
  Mutex unranked{"t.unranked"};
  EXPECT_EQ(unranked.rank(), 0);
}

TEST_F(LockGraphTest, NestedAcquisitionRecordsEdgeWithBothSites) {
  Mutex outer{"t.outer"};
  Mutex inner{"t.inner"};
  {
    MutexLock lock_outer(outer);
    MutexLock lock_inner(inner);
    EXPECT_EQ(lock_graph::HeldByCurrentThread(), 2u);
  }
  EXPECT_TRUE(lock_graph::HasEdge("t.outer", "t.inner"));
  EXPECT_FALSE(lock_graph::HasEdge("t.inner", "t.outer"));
  ASSERT_EQ(lock_graph::Edges().size(), 1u);
  const lock_graph::Edge edge = lock_graph::Edges()[0];
  EXPECT_EQ(edge.from, "t.outer");
  EXPECT_EQ(edge.to, "t.inner");
  // Both acquisition sites land in this file.
  EXPECT_NE(edge.holder_site.find("lock_graph_test"), std::string::npos);
  EXPECT_NE(edge.acquire_site.find("lock_graph_test"), std::string::npos);
}

TEST_F(LockGraphTest, ConsistentOrderAcrossThreadsStaysSilent) {
  Mutex a{"t.a"};
  Mutex b{"t.b"};
  auto take_in_order = [&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock lock_a(a);
      MutexLock lock_b(b);
    }
  };
  std::thread t1(take_in_order);
  std::thread t2(take_in_order);
  t1.join();
  t2.join();
  EXPECT_TRUE(lock_graph::HasEdge("t.a", "t.b"));
  EXPECT_FALSE(lock_graph::HasEdge("t.b", "t.a"));
}

// The seeded AB/BA inversion from the acceptance criteria: A-then-B on one
// code path, B-then-A on another. The second path must die at acquire time
// (no actual deadlock needed — the graph remembers the first ordering),
// and the report must carry the cycle and both conflicting sites.
TEST_F(LockGraphTest, AbBaInversionDiesWithBothSites) {
  Mutex a{"t.ab.a"};
  Mutex b{"t.ab.b"};
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // graph learns a -> b
  }
  EXPECT_DEATH(
      {
        MutexLock lock_b(b);
        MutexLock lock_a(a);  // cycle: a -> b -> a
      },
      "lock-order cycle.*t\\.ab\\.a.*while holding \"t\\.ab\\.b\".*"
      "conflicting order.*lock_graph_test");
}

// Rank inversions die even before any cycle exists in the graph: the
// hierarchy in util/lock_rank.h is directly enforced.
TEST_F(LockGraphTest, RankInversionDies) {
  Mutex inner{"t.rank.inner", lock_rank::kMetricsRegistry};  // rank 90
  Mutex outer{"t.rank.outer", lock_rank::kSessionReaper};    // rank 10
  EXPECT_DEATH(
      {
        MutexLock lock_inner(inner);
        MutexLock lock_outer(outer);  // 10 acquired under 90
      },
      "rank inversion.*t\\.rank\\.outer.*while holding \"t\\.rank\\.inner\"");
}

TEST_F(LockGraphTest, EqualNonzeroRankNestingDies) {
  Mutex first{"t.eq.first", 30};
  Mutex second{"t.eq.second", 30};
  EXPECT_DEATH(
      {
        MutexLock lock_first(first);
        MutexLock lock_second(second);
      },
      "rank inversion");
}

TEST_F(LockGraphTest, UnrankedLocksSkipTheRankCheck) {
  Mutex ranked{"t.mix.ranked", lock_rank::kMetricsRegistry};
  Mutex unranked{"t.mix.unranked"};
  // rank 0 under rank 90: no rank rule fires, only the graph watches.
  MutexLock lock_ranked(ranked);
  MutexLock lock_unranked(unranked);
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 2u);
}

TEST_F(LockGraphTest, SameNameNestingDies) {
  // Two instances of one family (the session-shard pattern): nesting them
  // is banned outright, which proves shard sweeps release before re-lock.
  Mutex shard0{"t.family", 30};
  Mutex shard1{"t.family", 30};
  EXPECT_DEATH(
      {
        MutexLock lock0(shard0);
        MutexLock lock1(shard1);
      },
      "same-name nesting.*t\\.family");
}

TEST_F(LockGraphTest, RecursiveAcquisitionDiesInsteadOfHanging) {
  Mutex mu{"t.recursive"};
  // The hook runs before the underlying std::mutex::lock, so the second
  // acquisition aborts with a report instead of deadlocking the test.
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();
      },
      "recursive acquisition.*t\\.recursive");
}

TEST_F(LockGraphTest, ManualLockUnlockBalancesHeldStack) {
  Mutex mu{"t.manual"};
  mu.Lock();
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 1u);
  mu.Unlock();
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 0u);
}

// WaitOnceFor must release the waited lock in the detector's view: locks
// acquired by other threads while this one sleeps are not "nested under"
// the sleeping lock. Regression shape for the session-reaper blind spot.
TEST_F(LockGraphTest, TimedWaitReleasesLockInDetectorView) {
  Mutex mu{"t.wait"};
  std::condition_variable cv;
  MutexLock lock(mu);
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 1u);
  // Expires after 1ms (nothing notifies); the lock must be re-held and
  // re-tracked afterwards.
  EXPECT_FALSE(lock.WaitOnceFor(cv, std::chrono::milliseconds(1)));
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 1u);
}

TEST_F(LockGraphTest, WaitDoesNotFabricateNestingEdges) {
  Mutex waiter{"t.waiter"};
  Mutex other{"t.other"};
  std::condition_variable cv;
  {
    MutexLock lock(waiter);
    // During the wait the waiter lock is (really and in the detector's
    // view) released; another thread takes an unrelated lock meanwhile.
    std::thread t([&other] { MutexLock lock_other(other); });
    EXPECT_FALSE(lock.WaitOnceFor(cv, std::chrono::milliseconds(20)));
    t.join();
  }
  EXPECT_FALSE(lock_graph::HasEdge("t.waiter", "t.other"));
  EXPECT_FALSE(lock_graph::HasEdge("t.other", "t.waiter"));
}

// Three-lock cycle through transitive edges: a->b and b->c are benign on
// their own; c->a closes the loop and must die even though no two locks
// were ever directly inverted.
TEST_F(LockGraphTest, TransitiveCycleDies) {
  Mutex a{"t.tri.a"};
  Mutex b{"t.tri.b"};
  Mutex c{"t.tri.c"};
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_c(c);
  }
  EXPECT_DEATH(
      {
        MutexLock lock_c(c);
        MutexLock lock_a(a);  // a -> b -> c -> a
      },
      "lock-order cycle.*t\\.tri\\.");
}

TEST_F(LockGraphTest, ResetForTestClearsGraphAndStack) {
  Mutex outer{"t.reset.outer"};
  Mutex inner{"t.reset.inner"};
  {
    MutexLock lock_outer(outer);
    MutexLock lock_inner(inner);
  }
  EXPECT_FALSE(lock_graph::Edges().empty());
  lock_graph::ResetForTest();
  EXPECT_TRUE(lock_graph::Edges().empty());
  EXPECT_EQ(lock_graph::HeldByCurrentThread(), 0u);
}

}  // namespace
}  // namespace subdex
