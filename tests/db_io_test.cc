#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/irregular.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "subjective/db_io.h"
#include "tests/test_support.h"

namespace subdex {
namespace {

using testing_support::MakeTinyRestaurantDb;

std::string TempDir(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectDatabasesEqual(const SubjectiveDatabase& a,
                          const SubjectiveDatabase& b) {
  ASSERT_EQ(a.num_reviewers(), b.num_reviewers());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_records(), b.num_records());
  ASSERT_EQ(a.num_dimensions(), b.num_dimensions());
  EXPECT_EQ(a.scale(), b.scale());
  for (size_t d = 0; d < a.num_dimensions(); ++d) {
    EXPECT_EQ(a.dimension_name(d), b.dimension_name(d));
  }
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& ta = a.table(side);
    const Table& tb = b.table(side);
    ASSERT_EQ(ta.num_attributes(), tb.num_attributes());
    for (size_t attr = 0; attr < ta.num_attributes(); ++attr) {
      EXPECT_EQ(ta.schema().attribute(attr).name,
                tb.schema().attribute(attr).name);
      for (RowId row = 0; row < ta.num_rows(); ++row) {
        EXPECT_EQ(ta.CellToString(attr, row), tb.CellToString(attr, row));
      }
    }
  }
  for (RecordId r = 0; r < a.num_records(); ++r) {
    EXPECT_EQ(a.reviewer_of(r), b.reviewer_of(r));
    EXPECT_EQ(a.item_of(r), b.item_of(r));
    for (size_t d = 0; d < a.num_dimensions(); ++d) {
      EXPECT_EQ(a.score(d, r), b.score(d, r));
    }
  }
}

TEST(DbIoTest, RoundTripTinyDatabase) {
  auto db = MakeTinyRestaurantDb();
  std::string dir = TempDir("subdex_dbio_tiny");
  ASSERT_TRUE(SaveDatabase(*db, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatabasesEqual(*db, *loaded.value());
  EXPECT_TRUE(loaded.value()->finalized());
  std::filesystem::remove_all(dir);
}

TEST(DbIoTest, RoundTripSyntheticWithPlanting) {
  DatasetSpec spec = MovielensSpec().Scaled(0.02);
  auto db = GenerateDataset(spec, 77);
  IrregularPlantingOptions plant;
  auto groups = PlantIrregularGroups(db.get(), plant, 5);
  ASSERT_FALSE(groups.empty());

  std::string dir = TempDir("subdex_dbio_planted");
  ASSERT_TRUE(SaveDatabase(*db, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatabasesEqual(*db, *loaded.value());
  // The planted floors survive the round trip.
  for (RecordId r : groups[0].affected_records) {
    EXPECT_EQ(loaded.value()->score(groups[0].dimension, r), 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(DbIoTest, MissingDirectoryFails) {
  auto loaded = LoadDatabase("/nonexistent/subdex_db");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(DbIoTest, CorruptManifestFails) {
  std::string dir = TempDir("subdex_dbio_corrupt");
  std::filesystem::create_directories(dir);
  {
    FILE* f = fopen((dir + "/manifest.txt").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not-a-subdex-db 9\n", f);
    fclose(f);
  }
  auto loaded = LoadDatabase(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST(DbIoTest, BadRatingsRowFails) {
  auto db = MakeTinyRestaurantDb();
  std::string dir = TempDir("subdex_dbio_badrow");
  ASSERT_TRUE(SaveDatabase(*db, dir).ok());
  {
    FILE* f = fopen((dir + "/ratings.csv").c_str(), "a");
    ASSERT_NE(f, nullptr);
    fputs("999,0,3,3,3,3\n", f);  // reviewer out of range
    fclose(f);
  }
  EXPECT_FALSE(LoadDatabase(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace subdex
