// Positive control for the negative compile test in
// tests/nodiscard_compile_fail.cc: the same flags (-Werror=unused-result)
// over a correct call site must succeed, proving the negative test fails
// because of the [[nodiscard]] contract and not because the probe flags
// are broken (wrong include path, bad standard, ...).
//
// This file is not a ctest target and is never linked into anything.

#include "util/status.h"

namespace subdex {

Status MakeStatus() { return Status::InvalidArgument("consumed"); }

bool ConsumesStatus() { return MakeStatus().ok(); }

}  // namespace subdex
