// Property-based / metamorphic checks over the core measures (label:
// `property`). Each property runs >= 200 seeded cases through the PCG32
// Rng, so failures reproduce exactly; on failure the case index and seed
// are part of the assertion message.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "core/distance.h"
#include "core/gmm.h"
#include "core/interestingness.h"
#include "core/rating_distribution.h"
#include "core/rating_map.h"
#include "core/seen_maps.h"
#include "util/random.h"

namespace subdex {
namespace {

constexpr int kCases = 250;
constexpr uint64_t kSeed = 0x5eedcafef00dULL;

RatingDistribution RandomDist(Rng& rng, int scale) {
  RatingDistribution dist(scale);
  // Empty distributions are legal inputs (treated as uniform by the
  // distances), so sometimes return one untouched.
  if (rng.Bernoulli(0.1)) return dist;
  int entries = rng.UniformInt(1, 8);
  for (int i = 0; i < entries; ++i) {
    dist.AddCount(rng.UniformInt(1, scale),
                  static_cast<uint64_t>(rng.UniformInt(1, 50)));
  }
  return dist;
}

// A structurally valid rating map without a database behind it: random
// subgroups with random distributions, overall = merge of the subgroups.
RatingMap RandomMap(Rng& rng, size_t num_dimensions, int scale) {
  RatingMapKey key;
  key.side = rng.Bernoulli(0.5) ? Side::kReviewer : Side::kItem;
  key.attribute = static_cast<size_t>(rng.UniformInt(0, 3));
  key.dimension =
      static_cast<size_t>(rng.UniformInt(0, static_cast<int>(num_dimensions) - 1));
  int num_subgroups = rng.UniformInt(1, 5);
  std::vector<Subgroup> subgroups;
  RatingDistribution overall(scale);
  for (int s = 0; s < num_subgroups; ++s) {
    Subgroup sub;
    sub.value = static_cast<ValueCode>(s);
    sub.dist = RandomDist(rng, scale);
    overall.Merge(sub.dist);
    subgroups.push_back(std::move(sub));
  }
  return RatingMap(key, std::move(subgroups), std::move(overall));
}

// --------------------------------------------- distribution distances ---

// TVD is a metric on the probability simplex: symmetric, zero on
// identical inputs, triangle inequality, bounded by [0, 1].
TEST(DistributionDistanceProperty, TotalVariationIsAMetric) {
  Rng rng(kSeed, 1);
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    int scale = rng.UniformInt(3, 7);
    RatingDistribution p = RandomDist(rng, scale);
    RatingDistribution q = RandomDist(rng, scale);
    RatingDistribution r = RandomDist(rng, scale);
    double pq = p.TotalVariationDistance(q);
    double qp = q.TotalVariationDistance(p);
    double pr = p.TotalVariationDistance(r);
    double qr = q.TotalVariationDistance(r);
    EXPECT_NEAR(pq, qp, 1e-12);
    EXPECT_NEAR(p.TotalVariationDistance(p), 0.0, 1e-12);
    EXPECT_GE(pq, 0.0);
    EXPECT_LE(pq, 1.0 + 1e-12);
    EXPECT_LE(pr, pq + qr + 1e-9);
  }
}

// The 1-D EMD on normalized probabilities is likewise a metric in [0, 1].
TEST(DistributionDistanceProperty, EmdIsAMetric) {
  Rng rng(kSeed, 2);
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    int scale = rng.UniformInt(3, 7);
    RatingDistribution p = RandomDist(rng, scale);
    RatingDistribution q = RandomDist(rng, scale);
    RatingDistribution r = RandomDist(rng, scale);
    double pq = p.Emd(q);
    EXPECT_NEAR(pq, q.Emd(p), 1e-12);
    EXPECT_NEAR(p.Emd(p), 0.0, 1e-12);
    EXPECT_GE(pq, 0.0);
    EXPECT_LE(pq, 1.0 + 1e-12);
    EXPECT_LE(p.Emd(r), pq + q.Emd(r) + 1e-9);
  }
}

TEST(DistributionDistanceProperty, Emd1DOnRawWeightVectors) {
  Rng rng(kSeed, 3);
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    size_t n = static_cast<size_t>(rng.UniformInt(2, 9));
    std::vector<double> p(n), q(n);
    for (size_t i = 0; i < n; ++i) {
      p[i] = rng.UniformDouble() * 10.0;
      q[i] = rng.UniformDouble() * 10.0;
    }
    double pq = Emd1D(p, q);
    EXPECT_NEAR(pq, Emd1D(q, p), 1e-12);
    EXPECT_NEAR(Emd1D(p, p), 0.0, 1e-12);
    EXPECT_GE(pq, 0.0);
    EXPECT_LE(pq, 1.0 + 1e-12);
  }
}

// ------------------------------------------- interestingness / Eq. 1 ---

// Every criterion and the aggregated utility are normalized into [0, 1];
// the DW multiplier of Eq. 1 can only shrink a utility, never inflate it
// or flip its sign, whatever the display history looks like.
TEST(InterestingnessProperty, DwUtilityStaysWithinEq1Bounds) {
  Rng rng(kSeed, 4);
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    size_t num_dimensions = static_cast<size_t>(rng.UniformInt(1, 6));
    int scale = 5;
    SeenMapsTracker tracker(num_dimensions);
    int history = rng.UniformInt(0, 10);
    for (int i = 0; i < history; ++i) {
      tracker.Record(RandomMap(rng, num_dimensions, scale));
    }

    UtilityConfig config;
    config.database_size = rng.Bernoulli(0.5)
                               ? 0
                               : static_cast<uint64_t>(rng.UniformInt(100, 100000));
    RatingMap map = RandomMap(rng, num_dimensions, scale);
    InterestingnessScores scores =
        ComputeScores(map, tracker.seen_distributions(), config);
    for (size_t criterion = 0; criterion < InterestingnessScores::kNumCriteria;
         ++criterion) {
      EXPECT_GE(scores.Get(criterion), 0.0);
      EXPECT_LE(scores.Get(criterion), 1.0 + 1e-12);
    }
    double utility = Utility(scores, config);
    EXPECT_GE(utility, 0.0);
    EXPECT_LE(utility, 1.0 + 1e-12);

    for (size_t d = 0; d < num_dimensions; ++d) {
      double weight = tracker.DimensionWeight(d);
      EXPECT_GE(weight, 0.0);
      EXPECT_LE(weight, 1.0 + 1e-12);
    }
    double dw = tracker.DimensionWeightedUtility(map.key(), utility);
    EXPECT_GE(dw, 0.0);
    EXPECT_LE(dw, utility + 1e-12);
  }
}

// Algorithm 2 (getWeights): the per-dimension display frequencies are a
// probability vector — non-negative and summing to exactly 1 (to all
// zeros before anything was displayed).
TEST(InterestingnessProperty, GetWeightsRenormalizesToOne) {
  Rng rng(kSeed, 5);
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    size_t num_dimensions = static_cast<size_t>(rng.UniformInt(1, 8));
    SeenMapsTracker tracker(num_dimensions);

    std::vector<double> empty = tracker.GetWeights();
    EXPECT_NEAR(std::accumulate(empty.begin(), empty.end(), 0.0), 0.0, 1e-12);

    int history = rng.UniformInt(1, 20);
    for (int i = 0; i < history; ++i) {
      tracker.Record(RandomMap(rng, num_dimensions, 5));
    }
    std::vector<double> weights = tracker.GetWeights();
    ASSERT_EQ(weights.size(), num_dimensions);
    double sum = 0.0;
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 1.0 + 1e-12);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(tracker.total(), static_cast<size_t>(history));
  }
}

// ----------------------------------------------------------------- GMM ---

// GMM returns exactly k distinct valid indices whenever at least k
// candidates exist (and everything when k >= n), for arbitrary symmetric
// distance oracles.
TEST(GmmProperty, OutputSizeIsExactlyKWhenEnoughCandidates) {
  Rng rng(kSeed, 6);
  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
    size_t k = static_cast<size_t>(rng.UniformInt(1, 45));
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        d[i][j] = d[j][i] = rng.UniformDouble();
      }
    }
    auto dist = [&d](size_t a, size_t b) { return d[a][b]; };
    size_t start = rng.UniformU32(static_cast<uint32_t>(n));
    std::vector<size_t> chosen = GmmSelect(n, k, dist, start);
    EXPECT_EQ(chosen.size(), std::min(n, k));
    std::vector<bool> used(n, false);
    for (size_t idx : chosen) {
      ASSERT_LT(idx, n);
      EXPECT_FALSE(used[idx]);
      used[idx] = true;
    }
  }
}

}  // namespace
}  // namespace subdex
