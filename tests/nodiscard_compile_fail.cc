// Negative compile test: this TU discards a Status and a Result<T>, which
// the SUBDEX_NODISCARD / SUBDEX_MUST_USE_RESULT contract must reject under
// -Werror=unused-result. tests/CMakeLists.txt compiles it with exactly
// that flag and asserts the compilation FAILS; if this file ever builds,
// the contract has silently stopped being enforced and the configure step
// aborts. (A sibling positive probe compiles a correct call site with the
// same flags, proving a failure here comes from the attribute and not
// from broken flags.)
//
// This file is not a ctest target and is never linked into anything.

#include "util/status.h"

namespace subdex {

Status MakeStatus() { return Status::InvalidArgument("discarded"); }
Result<int> MakeResult() { return Status::NotFound("discarded"); }

void DiscardsStatus() {
  MakeStatus();  // must not compile: Status is [[nodiscard]]
  MakeResult();  // must not compile: Result<T> is [[nodiscard]]
}

}  // namespace subdex
