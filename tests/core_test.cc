#include <gtest/gtest.h>

#include <cmath>

#include "core/distance.h"
#include "core/gmm.h"
#include "core/interestingness.h"
#include "core/rating_distribution.h"
#include "core/rating_map.h"
#include "core/seen_maps.h"
#include "tests/test_support.h"
#include "util/random.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

RatingDistribution FromCounts(const std::vector<uint64_t>& counts) {
  RatingDistribution d(static_cast<int>(counts.size()));
  for (size_t i = 0; i < counts.size(); ++i) {
    d.AddCount(static_cast<int>(i + 1), counts[i]);
  }
  return d;
}

// -------------------------------------------------- RatingDistribution ---

TEST(RatingDistributionTest, CountsAndProbabilities) {
  RatingDistribution d = FromCounts({1, 2, 1, 5, 7});  // Figure 3's rm row 1
  EXPECT_EQ(d.total(), 16u);
  EXPECT_EQ(d.count(4), 5u);
  EXPECT_DOUBLE_EQ(d.Probability(5), 7.0 / 16.0);
  EXPECT_NEAR(d.Mean(), 3.9, 0.05);  // paper reports avg 3.9
  EXPECT_EQ(d.ToString(), "{1:1,2:2,3:1,4:5,5:7}");
}

TEST(RatingDistributionTest, EmptyDistribution) {
  RatingDistribution d(5);
  EXPECT_EQ(d.total(), 0u);
  EXPECT_EQ(d.Mean(), 0.0);
  EXPECT_EQ(d.StdDev(), 0.0);
  EXPECT_EQ(d.Probability(3), 0.0);
}

TEST(RatingDistributionTest, MergeAddsCounts) {
  RatingDistribution a = FromCounts({1, 0, 0, 0, 1});
  RatingDistribution b = FromCounts({0, 2, 0, 0, 0});
  a.Merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(2), 2u);
}

TEST(RatingDistributionTest, StdDevMatchesManual) {
  RatingDistribution d = FromCounts({2, 0, 0, 0, 2});  // scores 1,1,5,5
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.StdDev(), 2.0);
}

TEST(RatingDistributionTest, ModeIsMostFrequentScore) {
  EXPECT_EQ(RatingDistribution(5).Mode(), 0);  // empty
  EXPECT_EQ(FromCounts({1, 2, 1, 5, 7}).Mode(), 5);
  EXPECT_EQ(FromCounts({9, 2, 1, 0, 0}).Mode(), 1);
  // Ties resolve to the smaller score.
  EXPECT_EQ(FromCounts({3, 0, 3, 0, 0}).Mode(), 1);
}

TEST(RatingDistributionTest, TotalVariationBasics) {
  RatingDistribution a = FromCounts({10, 0, 0, 0, 0});
  RatingDistribution b = FromCounts({0, 0, 0, 0, 10});
  EXPECT_DOUBLE_EQ(a.TotalVariationDistance(b), 1.0);
  EXPECT_DOUBLE_EQ(a.TotalVariationDistance(a), 0.0);
}

TEST(RatingDistributionTest, EmdIsMaximalForOppositeExtremes) {
  RatingDistribution a = FromCounts({10, 0, 0, 0, 0});
  RatingDistribution b = FromCounts({0, 0, 0, 0, 10});
  EXPECT_DOUBLE_EQ(a.Emd(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Emd(a), 0.0);
}

TEST(RatingDistributionTest, EmdSeesDistanceTvDoesNot) {
  // TV treats "mass at 2" and "mass at 5" as equally far from "mass at 1";
  // EMD knows 5 is farther.
  RatingDistribution at1 = FromCounts({10, 0, 0, 0, 0});
  RatingDistribution at2 = FromCounts({0, 10, 0, 0, 0});
  RatingDistribution at5 = FromCounts({0, 0, 0, 0, 10});
  EXPECT_DOUBLE_EQ(at1.TotalVariationDistance(at2),
                   at1.TotalVariationDistance(at5));
  EXPECT_LT(at1.Emd(at2), at1.Emd(at5));
}

TEST(RatingDistributionTest, KlDivergenceProperties) {
  RatingDistribution a = FromCounts({5, 5, 5, 5, 5});
  RatingDistribution b = FromCounts({20, 1, 1, 1, 2});
  EXPECT_NEAR(a.KlDivergence(a), 0.0, 1e-12);
  EXPECT_GT(a.KlDivergence(b), 0.0);
  EXPECT_GT(b.KlDivergence(a), 0.0);
}

// Property sweep: metric axioms of TV and EMD over random distributions.
class DistributionMetricTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributionMetricTest, MetricAxiomsHold) {
  Rng rng(1000 + GetParam());
  auto random_dist = [&rng]() {
    std::vector<uint64_t> counts(5);
    for (auto& c : counts) c = rng.UniformU32(20);
    return FromCounts(counts);
  };
  RatingDistribution x = random_dist();
  RatingDistribution y = random_dist();
  RatingDistribution z = random_dist();
  for (auto metric : {&RatingDistribution::TotalVariationDistance,
                      &RatingDistribution::Emd}) {
    double xy = (x.*metric)(y);
    double yx = (y.*metric)(x);
    double xz = (x.*metric)(z);
    double zy = (z.*metric)(y);
    EXPECT_NEAR(xy, yx, 1e-12);                 // symmetry
    EXPECT_GE(xy, 0.0);                         // non-negativity
    EXPECT_LE(xy, 1.0);                         // normalization
    EXPECT_NEAR((x.*metric)(x), 0.0, 1e-12);    // identity
    EXPECT_LE(xy, xz + zy + 1e-9);              // triangle inequality
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDistributions, DistributionMetricTest,
                         ::testing::Range(0, 25));

// ----------------------------------------------------------- RatingMap ---

TEST(RatingMapTest, BuildPartitionsByCategoricalAttribute) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  size_t city_attr =
      static_cast<size_t>(db->items().schema().IndexOf("city"));
  RatingMap map = RatingMap::Build(all, {Side::kItem, city_attr, 0});
  EXPECT_EQ(map.group_size(), db->num_records());
  // Subgroup counts sum to group size (categorical grouping is a partition).
  uint64_t sum = 0;
  for (const Subgroup& sg : map.subgroups()) sum += sg.count();
  EXPECT_EQ(sum, map.group_size());
  // Subgroups sorted by descending average.
  for (size_t i = 1; i < map.subgroups().size(); ++i) {
    EXPECT_GE(map.subgroups()[i - 1].average(), map.subgroups()[i].average());
  }
}

TEST(RatingMapTest, MultiValuedGroupingCountsRecordPerValue) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  size_t cuisine =
      static_cast<size_t>(db->items().schema().IndexOf("cuisine"));
  RatingMap map = RatingMap::Build(all, {Side::kItem, cuisine, 0});
  uint64_t sum = 0;
  for (const Subgroup& sg : map.subgroups()) sum += sg.count();
  EXPECT_GT(sum, map.group_size());  // items carry 1-2 cuisines each
  EXPECT_EQ(map.overall().total(), db->num_records());
}

TEST(RatingMapTest, AccumulatorSlicesEqualOneShot) {
  auto db = MakeRandomDb(30, 10, 400, 2, 7);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMapKey key{Side::kReviewer, 0, 1};
  RatingMap oneshot = RatingMap::Build(all, key);
  RatingMapAccumulator acc(&all, key);
  acc.Update(0, 100);
  acc.Update(100, 250);
  acc.Update(250, all.size());
  RatingMap sliced = acc.Snapshot();
  EXPECT_EQ(sliced.group_size(), oneshot.group_size());
  ASSERT_EQ(sliced.num_subgroups(), oneshot.num_subgroups());
  for (size_t i = 0; i < sliced.num_subgroups(); ++i) {
    EXPECT_EQ(sliced.subgroups()[i].value, oneshot.subgroups()[i].value);
    EXPECT_EQ(sliced.subgroups()[i].count(), oneshot.subgroups()[i].count());
  }
}

TEST(RatingMapTest, AllKeysSkipConstrainedAndNumericAttributes) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection sel;
  sel.reviewer_pred = Predicate(
      {{static_cast<size_t>(db->reviewers().schema().IndexOf("gender")),
        db->reviewers().LookupValue(0, "F")}});
  std::vector<RatingMapKey> keys = AllRatingMapKeys(*db, sel);
  // (3 reviewer attrs - 1 constrained + 3 item attrs) x 4 dimensions.
  EXPECT_EQ(keys.size(), (2 + 3) * 4u);
  for (const RatingMapKey& k : keys) {
    if (k.side == Side::kReviewer) {
      EXPECT_FALSE(sel.reviewer_pred.ConstrainsAttribute(k.attribute));
    }
  }
}

TEST(RatingMapTest, ToStringMentionsGroupingAndDimension) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap map = RatingMap::Build(all, {Side::kReviewer, 0, 1});
  std::string s = map.ToString(*db);
  EXPECT_NE(s.find("gender"), std::string::npos);
  EXPECT_NE(s.find("food"), std::string::npos);
}

// ----------------------------------------------------- Interestingness ---

TEST(InterestingnessTest, ConcisenessFavorsFewerSubgroups) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  UtilityConfig config;
  // gender: 2 subgroups; occupation: 6 subgroups.
  RatingMap by_gender = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  RatingMap by_occupation = RatingMap::Build(all, {Side::kReviewer, 2, 0});
  EXPECT_GT(RawConciseness(by_gender), RawConciseness(by_occupation));
  EXPECT_GT(Conciseness(by_gender, config),
            Conciseness(by_occupation, config));
}

TEST(InterestingnessTest, AgreementIsHighForUnanimousSubgroups) {
  auto db = MakeRandomDb(10, 5, 100, 1, 3);
  UtilityConfig config;
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap noisy = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  double noisy_agreement = Agreement(noisy, config);
  // Force every score to 4: zero dispersion everywhere.
  for (RecordId r = 0; r < db->num_records(); ++r) db->SetScore(0, r, 4);
  all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap map = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  EXPECT_GT(Agreement(map, config), 0.75);  // near 1, damped by the prior
  EXPECT_GT(Agreement(map, config), noisy_agreement);
  EXPECT_LT(SelfPeculiarity(map, config), 0.1);  // subgroups ~ overall
}

TEST(InterestingnessTest, AgreementPriorDampsTinyGroups) {
  // Two unanimous records are weak evidence; two hundred are strong.
  auto make_map = [](uint64_t n) {
    RatingDistribution sub(5);
    sub.AddCount(4, n);
    RatingDistribution overall = sub;
    return RatingMap({Side::kReviewer, 0, 0}, {{0, sub}}, overall);
  };
  UtilityConfig config;
  EXPECT_LT(Agreement(make_map(2), config), 0.6);
  EXPECT_GT(Agreement(make_map(200), config), 0.8);
}

TEST(InterestingnessTest, SmoothedTvDampsLowCounts) {
  RatingDistribution tiny_at5(5);
  tiny_at5.AddCount(5, 2);
  RatingDistribution big_at5(5);
  big_at5.AddCount(5, 500);
  RatingDistribution big_at1(5);
  big_at1.AddCount(1, 500);
  // Both are "all fives", but 2 records are weak evidence of deviation.
  EXPECT_LT(SmoothedTotalVariation(tiny_at5, big_at1, 4.0),
            SmoothedTotalVariation(big_at5, big_at1, 4.0));
  EXPECT_GT(SmoothedTotalVariation(big_at5, big_at1, 4.0), 0.9);
  EXPECT_DOUBLE_EQ(SmoothedTotalVariation(big_at5, big_at5, 4.0), 0.0);
}

TEST(InterestingnessTest, SelfPeculiarityDetectsDeviantSubgroup) {
  auto db = MakeRandomDb(40, 10, 600, 1, 5);
  // Make one gender's ratings all 1 while others stay random.
  ValueCode f = db->reviewers().LookupValue(0, "F");
  for (RecordId r = 0; r < db->num_records(); ++r) {
    if (db->reviewers().CodeAt(0, db->reviewer_of(r)) == f) {
      db->SetScore(0, r, 1);
    }
  }
  UtilityConfig config;
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap by_gender = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  RatingMap by_city = RatingMap::Build(all, {Side::kItem, 0, 0});
  EXPECT_GT(SelfPeculiarity(by_gender, config),
            SelfPeculiarity(by_city, config));
}

TEST(InterestingnessTest, GlobalPeculiarityZeroWithEmptyHistory) {
  auto db = MakeTinyRestaurantDb();
  UtilityConfig config;
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap map = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  EXPECT_DOUBLE_EQ(GlobalPeculiarity(map, {}, config), 0.0);
  // Against itself: zero; against a floored distribution: positive.
  EXPECT_DOUBLE_EQ(GlobalPeculiarity(map, {map.overall()}, config), 0.0);
  EXPECT_GT(GlobalPeculiarity(map, {FromCounts({50, 0, 0, 0, 0})}, config),
            0.0);
}

TEST(InterestingnessTest, ScoresAreNormalized) {
  auto db = MakeRandomDb(30, 10, 500, 2, 11);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  UtilityConfig config;
  for (const RatingMapKey& key : AllRatingMapKeys(*db, GroupSelection{})) {
    RatingMap map = RatingMap::Build(all, key);
    InterestingnessScores s =
        ComputeScores(map, {FromCounts({9, 1, 1, 1, 1})}, config);
    for (size_t c = 0; c < InterestingnessScores::kNumCriteria; ++c) {
      EXPECT_GE(s.Get(c), 0.0);
      EXPECT_LE(s.Get(c), 1.0);
    }
    double u = Utility(s, config);
    EXPECT_GE(u, s.Get(0));
    EXPECT_GE(u, s.Get(3));
  }
}

TEST(InterestingnessTest, KlPeculiarityAlternative) {
  auto db = MakeRandomDb(40, 10, 600, 1, 15);
  // Polarize one gender so its subgroup distribution deviates strongly.
  ValueCode f = db->reviewers().LookupValue(0, "F");
  for (RecordId r = 0; r < db->num_records(); ++r) {
    if (db->reviewers().CodeAt(0, db->reviewer_of(r)) == f) {
      db->SetScore(0, r, 5);
    }
  }
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap by_gender = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  RatingMap by_city = RatingMap::Build(all, {Side::kItem, 0, 0});

  UtilityConfig kl;
  kl.peculiarity_measure = PeculiarityMeasure::kKlDivergence;
  // Bounded, and ranks the deviant grouping above the bland one, like TV.
  double deviant = SelfPeculiarity(by_gender, kl);
  double bland = SelfPeculiarity(by_city, kl);
  EXPECT_GE(deviant, 0.0);
  EXPECT_LE(deviant, 1.0);
  EXPECT_GT(deviant, bland);

  UtilityConfig tv;  // default measure agrees on the ordering
  EXPECT_GT(SelfPeculiarity(by_gender, tv), SelfPeculiarity(by_city, tv));
}

TEST(InterestingnessTest, AggregationVariants) {
  InterestingnessScores s;
  s.conciseness = 0.2;
  s.agreement = 0.6;
  s.self_peculiarity = 0.4;
  s.global_peculiarity = 0.8;
  UtilityConfig config;
  config.aggregation = UtilityAggregation::kMax;
  EXPECT_DOUBLE_EQ(Utility(s, config), 0.8);
  config.aggregation = UtilityAggregation::kAverage;
  EXPECT_DOUBLE_EQ(Utility(s, config), 0.5);
  config.aggregation = UtilityAggregation::kSingleCriterion;
  config.single = UtilityCriterion::kAgreement;
  EXPECT_DOUBLE_EQ(Utility(s, config), 0.6);
}

// ------------------------------------------------------------ SeenMaps ---

TEST(SeenMapsTest, GetWeightsMatchesAlgorithm2) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());
  EXPECT_EQ(seen.GetWeights(), std::vector<double>(4, 0.0));
  EXPECT_DOUBLE_EQ(seen.DimensionWeight(0), 1.0);

  // Record maps on dimensions 0,0,0,1 -> weights {0.75, 0.25, 0, 0}.
  for (size_t d : {0u, 0u, 0u, 1u}) {
    seen.Record(RatingMap::Build(all, {Side::kReviewer, 0, d}));
  }
  std::vector<double> w = seen.GetWeights();
  EXPECT_DOUBLE_EQ(w[0], 0.75);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  // DW multiplier is 1 - w (Eq. 1).
  EXPECT_DOUBLE_EQ(seen.DimensionWeight(0), 0.25);
  EXPECT_DOUBLE_EQ(seen.DimensionWeight(2), 1.0);
  EXPECT_EQ(seen.total(), 4u);
  EXPECT_EQ(seen.seen_distributions().size(), 4u);
}

TEST(SeenMapsTest, DwUtilityReproducesPaperExample) {
  // Paper, Section 3.2.3: m=10 maps seen, m_r2=3, m_r4=1;
  // u(rm_r2)=0.6 -> 0.42; u(rm_r4)=0.8 -> 0.72.
  SeenMapsTracker seen(4);
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  // Dimensions here are 0-indexed: r1->0, r2->1, r3->2, r4->3.
  for (size_t d : {0u, 0u, 0u, 1u, 1u, 1u, 2u, 2u, 2u, 3u}) {
    seen.Record(RatingMap::Build(all, {Side::kReviewer, 0, d}));
  }
  EXPECT_NEAR(seen.DimensionWeightedUtility({Side::kReviewer, 0, 1}, 0.6),
              0.42, 1e-12);
  EXPECT_NEAR(seen.DimensionWeightedUtility({Side::kReviewer, 0, 3}, 0.8),
              0.72, 1e-12);
}

// ------------------------------------------------------------ Distance ---

TEST(DistanceTest, Emd1DBasics) {
  EXPECT_DOUBLE_EQ(Emd1D({1, 0, 0}, {0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Emd1D({1, 0, 0}, {0, 1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(Emd1D({2, 2}, {1, 1}), 0.0);  // same after normalization
}

TEST(DistanceTest, SignatureDistinguishesGroupings) {
  auto db = MakeRandomDb(60, 20, 800, 1, 13);
  // Polarize by gender: F low, M high.
  ValueCode f = db->reviewers().LookupValue(0, "F");
  for (RecordId r = 0; r < db->num_records(); ++r) {
    bool is_f = db->reviewers().CodeAt(0, db->reviewer_of(r)) == f;
    db->SetScore(0, r, is_f ? 1 : 5);
  }
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap by_gender = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  RatingMap by_age = RatingMap::Build(all, {Side::kReviewer, 1, 0});
  // Same records, same dimension: overall EMD cannot tell them apart...
  EXPECT_DOUBLE_EQ(
      RatingMapDistance(by_gender, by_age, MapDistanceKind::kOverallEmd), 0.0);
  // ...but the subgroup-signature EMD can.
  EXPECT_GT(
      RatingMapDistance(by_gender, by_age, MapDistanceKind::kSignatureEmd),
      0.1);
}

TEST(DistanceTest, SetDiversityIsMinPairwise) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  std::vector<RatingMap> maps;
  for (size_t a = 0; a < 3; ++a) {
    maps.push_back(RatingMap::Build(all, {Side::kReviewer, a, 0}));
  }
  double div = SetDiversity(maps);
  for (size_t i = 0; i < maps.size(); ++i) {
    for (size_t j = i + 1; j < maps.size(); ++j) {
      EXPECT_LE(div, RatingMapDistance(maps[i], maps[j]) + 1e-12);
    }
  }
  EXPECT_EQ(SetDiversity({maps[0]}), 0.0);
}

// ----------------------------------------------------------------- GMM ---

TEST(GmmTest, SelectsRequestedCount) {
  auto dist = [](size_t a, size_t b) {
    return std::fabs(static_cast<double>(a) - static_cast<double>(b));
  };
  std::vector<size_t> chosen = GmmSelect(10, 3, dist, 0);
  EXPECT_EQ(chosen.size(), 3u);
  std::set<size_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(GmmTest, OnALinePicksExtremes) {
  auto dist = [](size_t a, size_t b) {
    return std::fabs(static_cast<double>(a) - static_cast<double>(b));
  };
  std::vector<size_t> chosen = GmmSelect(11, 2, dist, 0);
  // Starting at 0, the farthest point is 10.
  EXPECT_EQ(chosen[0], 0u);
  EXPECT_EQ(chosen[1], 10u);
}

TEST(GmmTest, KAtLeastNReturnsAll) {
  auto dist = [](size_t, size_t) { return 1.0; };
  EXPECT_EQ(GmmSelect(4, 10, dist).size(), 4u);
  EXPECT_EQ(GmmSelect(0, 3, dist).size(), 0u);
  EXPECT_EQ(GmmSelect(5, 0, dist).size(), 0u);
}

// Property sweep: GMM achieves at least half the optimal max-min diversity
// (Gonzalez's 2-approximation) on random metric instances.
class GmmApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(GmmApproximationTest, WithinFactorTwoOfBruteForce) {
  Rng rng(5000 + GetParam());
  const size_t n = 9;
  const size_t k = 3 + GetParam() % 3;  // 3..5
  // Random points on a line => a true metric.
  std::vector<double> pos(n);
  for (double& p : pos) p = rng.UniformDouble() * 100.0;
  auto dist = [&pos](size_t a, size_t b) { return std::fabs(pos[a] - pos[b]); };

  std::vector<size_t> greedy = GmmSelect(n, k, dist, 0);
  std::vector<size_t> optimal = BruteForceMaxMinSelect(n, k, dist);
  double greedy_score = MinPairwiseDistance(greedy, dist);
  double optimal_score = MinPairwiseDistance(optimal, dist);
  EXPECT_GE(greedy_score * 2.0 + 1e-9, optimal_score);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GmmApproximationTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace subdex
